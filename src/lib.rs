//! # adsm — umbrella crate
//!
//! Re-exports the whole GMAC/ADSM stack (ASPLOS'10 reproduction) so examples
//! and integration tests can use a single dependency.
//!
//! * [`hetsim`] — simulated heterogeneous platform (CPU + accelerators + PCIe
//!   + disk + virtual clock).
//! * [`softmmu`] — software MMU: page tables, protection, faults.
//! * [`cudart`] — CUDA-runtime-like shim (the baseline programming model).
//! * [`gmac`] — the ADSM runtime itself (the paper's contribution).
//! * [`workloads`] — Parboil-like applications and micro-benchmarks.
//!
//! ## Quickstart
//!
//! ```rust
//! use adsm::gmac::{Gmac, GmacConfig, Protocol};
//! use adsm::hetsim::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::desktop_g280();
//! let gmac = Gmac::new(platform, GmacConfig::default().protocol(Protocol::Rolling));
//! let session = gmac.session(); // one cheap handle per host thread
//! let v = session.alloc_typed::<f32>(256 * 1024)?; // one pointer, CPU *and* accelerator
//! v.write(0, 42.0)?;
//! assert_eq!(v.read(0)?, 42.0);
//! # Ok(())
//! # }
//! ```

pub use cudart;
pub use gmac;
pub use hetsim;
pub use softmmu;
pub use workloads;
