//! `mri-q` — Magnetic Resonance Imaging Q (paper Table 2).
//!
//! "Computation of a matrix Q, representing the scanner configuration, used
//! in a 3D magnetic resonance image reconstruction algorithm in non-Cartesian
//! space."
//!
//! Phase structure: large inputs (k-space trajectory and voxel coordinates)
//! are **read from disk**, the accelerator accumulates the Q matrix, the CPU
//! writes the result out. The paper's Figure 10 shows mri-q with high IORead
//! share — it "would benefit from hardware that supports peer DMA".

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use std::sync::Arc;

/// Accumulates `Q(x) = Σ_k |phi_k|² · exp(i·2π·k·x)` over all samples.
#[derive(Debug)]
pub struct MriQKernel;

impl MriQKernel {
    /// Reference computation shared by tests: returns interleaved (Qr, Qi).
    pub fn reference(traj: &[f32], phi: &[f32], voxels: &[f32]) -> Vec<f32> {
        let k = traj.len() / 3;
        let x = voxels.len() / 3;
        let mut q = vec![0.0f32; 2 * x];
        for xi in 0..x {
            let (vx, vy, vz) = (voxels[3 * xi], voxels[3 * xi + 1], voxels[3 * xi + 2]);
            let (mut qr, mut qi) = (0.0f32, 0.0f32);
            for ki in 0..k {
                let mag = phi[2 * ki] * phi[2 * ki] + phi[2 * ki + 1] * phi[2 * ki + 1];
                let angle = 2.0
                    * std::f32::consts::PI
                    * (traj[3 * ki] * vx + traj[3 * ki + 1] * vy + traj[3 * ki + 2] * vz);
                qr += mag * angle.cos();
                qi += mag * angle.sin();
            }
            q[2 * xi] = qr;
            q[2 * xi + 1] = qi;
        }
        q
    }
}

impl Kernel for MriQKernel {
    fn name(&self) -> &str {
        "mriq_computeQ"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let k = args.u64(4)?;
        let x = args.u64(5)?;
        let traj = read_f32_slice(mem, args.ptr(0)?, k * 3)?;
        let phi = read_f32_slice(mem, args.ptr(1)?, k * 2)?;
        let voxels = read_f32_slice(mem, args.ptr(2)?, x * 3)?;
        let q = Self::reference(&traj, &phi, &voxels);
        write_f32_slice(mem, args.ptr(3)?, &q)?;
        // ~14 flops (incl. sincos) per sample-voxel pair.
        Ok(KernelProfile::new(
            (k * x) as f64 * 14.0,
            (x * 8 + k * 20) as f64,
        ))
    }
}

/// The mri-q workload.
#[derive(Debug, Clone)]
pub struct MriQ {
    /// K-space samples.
    pub k: usize,
    /// Voxels.
    pub x: usize,
}

impl Default for MriQ {
    fn default() -> Self {
        MriQ { k: 1024, x: 16384 }
    }
}

impl MriQ {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        MriQ { k: 32, x: 256 }
    }

    fn traj_bytes(&self) -> u64 {
        self.k as u64 * 12
    }

    fn phi_bytes(&self) -> u64 {
        self.k as u64 * 8
    }

    fn voxel_bytes(&self) -> u64 {
        self.x as u64 * 12
    }

    fn q_bytes(&self) -> u64 {
        self.x as u64 * 8
    }
}

impl Workload for MriQ {
    fn name(&self) -> &'static str {
        "mri-q"
    }

    fn description(&self) -> &'static str {
        "Q-matrix computation for non-Cartesian 3D MRI reconstruction (disk-fed inputs)"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(MriQKernel));
    }

    fn prepare(&self, platform: &mut Platform) -> WorkloadResult<()> {
        let mut rng = Prng::new(0x3333);
        let traj: Vec<f32> = (0..self.k * 3).map(|_| rng.range_f32(-0.5, 0.5)).collect();
        let phi: Vec<f32> = (0..self.k * 2).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let voxels: Vec<f32> = (0..self.x * 3)
            .map(|_| rng.range_f32(-16.0, 16.0))
            .collect();
        platform
            .fs_mut()
            .create("mriq-traj.bin", softmmu::to_bytes(&traj));
        platform
            .fs_mut()
            .create("mriq-phi.bin", softmmu::to_bytes(&phi));
        platform
            .fs_mut()
            .create("mriq-voxels.bin", softmmu::to_bytes(&voxels));
        Ok(())
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        // Read inputs from disk into host buffers, then copy them over.
        let mut traj = vec![0u8; self.traj_bytes() as usize];
        let mut phi = vec![0u8; self.phi_bytes() as usize];
        let mut voxels = vec![0u8; self.voxel_bytes() as usize];
        p.file_read("mriq-traj.bin", 0, &mut traj)?;
        p.file_read("mriq-phi.bin", 0, &mut phi)?;
        p.file_read("mriq-voxels.bin", 0, &mut voxels)?;
        let d_traj = cuda.malloc(p, self.traj_bytes())?;
        let d_phi = cuda.malloc(p, self.phi_bytes())?;
        let d_vox = cuda.malloc(p, self.voxel_bytes())?;
        let d_q = cuda.malloc(p, self.q_bytes())?;
        cuda.memcpy_h2d(p, d_traj, &traj)?;
        cuda.memcpy_h2d(p, d_phi, &phi)?;
        cuda.memcpy_h2d(p, d_vox, &voxels)?;
        let args = [
            hetsim::KernelArg::Ptr(d_traj),
            hetsim::KernelArg::Ptr(d_phi),
            hetsim::KernelArg::Ptr(d_vox),
            hetsim::KernelArg::Ptr(d_q),
            hetsim::KernelArg::U64(self.k as u64),
            hetsim::KernelArg::U64(self.x as u64),
        ];
        cuda.launch(
            p,
            StreamId(0),
            "mriq_computeQ",
            LaunchDims::for_elements(self.x as u64, 256),
            &args,
        )?;
        cuda.thread_synchronize(p)?;
        let mut q = vec![0u8; self.q_bytes() as usize];
        cuda.memcpy_d2h(p, &mut q, d_q)?;
        p.cpu_touch(self.q_bytes());
        p.file_write("mriq-out.bin", 0, &q)?;
        for d in [d_traj, d_phi, d_vox, d_q] {
            cuda.free(p, d)?;
        }
        let mut digest = Digest::new();
        digest.update(&q);
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        // Shared pointers are passed straight to read(): the paper's
        // peer-DMA illusion (§3.1 benefit 3, §4.4).
        let s_traj = ctx.alloc(self.traj_bytes())?;
        let s_phi = ctx.alloc(self.phi_bytes())?;
        let s_vox = ctx.alloc(self.voxel_bytes())?;
        let s_q = ctx.alloc(self.q_bytes())?;
        ctx.read_file_to_shared("mriq-traj.bin", 0, s_traj, self.traj_bytes())?;
        ctx.read_file_to_shared("mriq-phi.bin", 0, s_phi, self.phi_bytes())?;
        ctx.read_file_to_shared("mriq-voxels.bin", 0, s_vox, self.voxel_bytes())?;
        let params = [
            Param::Shared(s_traj),
            Param::Shared(s_phi),
            Param::Shared(s_vox),
            Param::Shared(s_q),
            Param::U64(self.k as u64),
            Param::U64(self.x as u64),
        ];
        ctx.call(
            "mriq_computeQ",
            LaunchDims::for_elements(self.x as u64, 256),
            &params,
        )?;
        ctx.sync()?;
        ctx.write_shared_to_file("mriq-out.bin", 0, s_q, self.q_bytes())?;
        let q = ctx.load_slice::<u8>(s_q, self.q_bytes() as usize)?;
        for s in [s_traj, s_phi, s_vox, s_q] {
            ctx.free(s)?;
        }
        let mut digest = Digest::new();
        digest.update(&q);
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn reference_q_of_zero_trajectory_is_mag_sum() {
        // With k = 0 trajectory, every angle is zero: Qr = Σ|phi|², Qi = 0.
        let traj = vec![0.0f32; 6]; // two samples
        let phi = vec![1.0f32, 0.0, 0.5, 0.5]; // mags 1.0 and 0.5
        let voxels = vec![1.0f32, 2.0, 3.0];
        let q = MriQKernel::reference(&traj, &phi, &voxels);
        assert!((q[0] - 1.5).abs() < 1e-6);
        assert!(q[1].abs() < 1e-6);
    }

    #[test]
    fn variants_agree() {
        let w = MriQ::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn io_read_is_a_visible_fraction() {
        // Figure 10: mri benchmarks have high IORead activity.
        let w = MriQ::default();
        let r = run_variant(&w, Variant::Gmac(gmac::Protocol::Rolling)).unwrap();
        let io = r.ledger.get(hetsim::Category::IoRead).as_nanos() as f64;
        assert!(
            io / r.elapsed.as_nanos() as f64 > 0.05,
            "io fraction too small"
        );
    }
}
