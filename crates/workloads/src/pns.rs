//! `pns` — Petri Net Simulation (paper Table 2).
//!
//! "Implements a generic algorithm for Petri net simulation. Petri nets are
//! commonly used to model distributed systems."
//!
//! Phase structure: a large marking vector lives on the accelerator; the
//! simulation runs **many short kernel iterations**, and between iterations
//! the CPU only polls a tiny status word. This is the workload where
//! batch-update collapses (65.18× in Figure 7): it re-transfers the whole
//! marking in both directions on every iteration, while lazy/rolling move
//! only the status block.

use crate::common::{Digest, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use std::sync::Arc;

/// One simulation step: fires the transitions of a ring-structured net on a
/// sparse subset of places and updates the status word.
#[derive(Debug)]
pub struct PnsStepKernel;

impl PnsStepKernel {
    /// Reference step shared by tests. `places` is the marking; returns the
    /// new status value (tokens in the probe window).
    pub fn reference(places: &mut [u32], step: u64) -> u32 {
        let n = places.len();
        // Sparse firing: every 16th place, offset rotating with the step,
        // moves a token to its successor if it has any.
        let offset = (step as usize * 7) % 16;
        let mut i = offset;
        while i < n {
            if places[i] > 0 {
                places[i] -= 1;
                places[(i + 1) % n] += 2;
            }
            i += 16;
        }
        places.iter().take(256).sum()
    }
}

impl Kernel for PnsStepKernel {
    fn name(&self) -> &str {
        "pns_step"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(2)? as usize;
        let step = args.u64(3)?;
        let places_ptr = args.ptr(0)?;
        let status_ptr = args.ptr(1)?;
        // Sparse in-place update: touch only the firing subset, like the
        // real kernel would.
        let buf = mem.slice_mut(places_ptr, n as u64 * 4)?;
        let rd = |buf: &[u8], i: usize| {
            u32::from_le_bytes([buf[4 * i], buf[4 * i + 1], buf[4 * i + 2], buf[4 * i + 3]])
        };
        let wr = |buf: &mut [u8], i: usize, v: u32| {
            buf[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        };
        let offset = (step as usize * 7) % 16;
        let mut i = offset;
        while i < n {
            let tokens = rd(buf, i);
            if tokens > 0 {
                wr(buf, i, tokens - 1);
                let succ = (i + 1) % n;
                let s = rd(buf, succ);
                wr(buf, succ, s + 2);
            }
            i += 16;
        }
        let status: u32 = (0..256.min(n)).map(|i| rd(buf, i)).sum();
        mem.write(status_ptr, &status.to_le_bytes())?;
        // Sparse kernel: touches n/16 places, trivial arithmetic.
        Ok(KernelProfile::new(
            (n / 16) as f64 * 4.0,
            (n / 16) as f64 * 8.0,
        ))
    }
}

/// How often the CPU polls the status word (every `POLL_EVERY` steps —
/// convergence checks are periodic, not per-iteration).
pub const POLL_EVERY: usize = 3;

/// The Petri-net-simulation workload.
#[derive(Debug, Clone)]
pub struct Pns {
    /// Number of places in the net.
    pub places: usize,
    /// Simulation steps (kernel iterations).
    pub steps: usize,
}

impl Default for Pns {
    fn default() -> Self {
        // 5 MB of marking, 256 iterations: calibrated so batch-update's
        // per-iteration full re-transfer lands near the paper's 65×.
        Pns {
            places: 1_280_000,
            steps: 512,
        }
    }
}

impl Pns {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Pns {
            places: 4096,
            steps: 8,
        }
    }

    fn places_bytes(&self) -> u64 {
        self.places as u64 * 4
    }

    fn initial_marking(&self) -> Vec<u32> {
        (0..self.places)
            .map(|i| if i % 5 == 0 { 3 } else { 0 })
            .collect()
    }
}

impl Workload for Pns {
    fn name(&self) -> &'static str {
        "pns"
    }

    fn description(&self) -> &'static str {
        "iterative Petri net simulation: many short kernels, tiny CPU status polls"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(PnsStepKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let marking = self.initial_marking();
        p.cpu_touch(self.places_bytes());
        let d_places = cuda.malloc(p, self.places_bytes())?;
        let d_status = cuda.malloc(p, 4)?;
        // One explicit upload; the marking then *stays* on the device — the
        // hand-tuned pattern GMAC has to match.
        let bytes: Vec<u8> = marking.iter().flat_map(|v| v.to_le_bytes()).collect();
        cuda.memcpy_h2d(p, d_places, &bytes)?;
        let mut digest = Digest::new();
        for step in 0..self.steps {
            let args = [
                hetsim::KernelArg::Ptr(d_places),
                hetsim::KernelArg::Ptr(d_status),
                hetsim::KernelArg::U64(self.places as u64),
                hetsim::KernelArg::U64(step as u64),
            ];
            cuda.launch(
                p,
                StreamId(0),
                "pns_step",
                LaunchDims::for_elements((self.places / 16) as u64, 256),
                &args,
            )?;
            cuda.thread_synchronize(p)?;
            // Periodic convergence check: CPU polls the status word only.
            if (step + 1) % POLL_EVERY == 0 {
                let mut status = [0u8; 4];
                cuda.memcpy_d2h(p, &mut status, d_status)?;
                digest.update(&status);
            }
        }
        let mut final_marking = vec![0u8; self.places_bytes() as usize];
        cuda.memcpy_d2h(p, &mut final_marking, d_places)?;
        digest.update(&final_marking);
        cuda.free(p, d_places)?;
        cuda.free(p, d_status)?;
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let marking = self.initial_marking();
        let s_places = ctx.alloc(self.places_bytes())?;
        let s_status = ctx.alloc(4)?;
        ctx.store_slice(s_places, &marking)?;
        let mut digest = Digest::new();
        for step in 0..self.steps {
            let params = [
                Param::Shared(s_places),
                Param::Shared(s_status),
                Param::U64(self.places as u64),
                Param::U64(step as u64),
            ];
            ctx.call(
                "pns_step",
                LaunchDims::for_elements((self.places / 16) as u64, 256),
                &params,
            )?;
            ctx.sync()?;
            // Transparent periodic status poll: under lazy/rolling this
            // fetches one small object/block; under batch everything
            // already moved.
            if (step + 1) % POLL_EVERY == 0 {
                let status: u32 = ctx.load(s_status)?;
                digest.update(&status.to_le_bytes());
            }
        }
        let final_marking: Vec<u32> = ctx.load_slice(s_places, self.places)?;
        let bytes: Vec<u8> = final_marking.iter().flat_map(|v| v.to_le_bytes()).collect();
        digest.update(&bytes);
        ctx.free(s_places)?;
        ctx.free(s_status)?;
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};
    use gmac::Protocol;

    #[test]
    fn reference_step_conserves_and_grows_tokens() {
        // Each firing consumes 1 and produces 2, so total tokens never
        // shrink.
        let mut places = vec![1u32; 64];
        let before: u32 = places.iter().sum();
        PnsStepKernel::reference(&mut places, 0);
        let after: u32 = places.iter().sum();
        assert!(after >= before);
    }

    #[test]
    fn variants_agree() {
        let w = Pns::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn batch_update_collapses_on_pns() {
        // The Figure 7 headline: batch-update re-transfers the marking on
        // every iteration and slows down by an order of magnitude or more.
        let w = Pns {
            places: 1024 * 1024,
            steps: 96,
        };
        let cuda = run_variant(&w, Variant::Cuda)
            .unwrap()
            .elapsed
            .as_secs_f64();
        let batch = run_variant(&w, Variant::Gmac(Protocol::Batch))
            .unwrap()
            .elapsed
            .as_secs_f64();
        let rolling = run_variant(&w, Variant::Gmac(Protocol::Rolling))
            .unwrap()
            .elapsed
            .as_secs_f64();
        assert!(batch / cuda > 25.0, "batch slowdown only {}", batch / cuda);
        assert!(rolling / cuda < 1.5, "rolling slowdown {}", rolling / cuda);
    }
}
