//! `cp` — Coulombic Potential (paper Table 2).
//!
//! "Computes the coulombic potential at each grid point over one plane in a
//! 3D grid in which point charges have been randomly distributed. Adapted
//! from 'cionize' benchmark in VMD."
//!
//! Phase structure: the CPU generates the atom set, the accelerator computes
//! the potential plane (compute-bound), the CPU consumes the plane and
//! writes it to disk.

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use softmmu::to_bytes;
use std::sync::Arc;

/// Computes the potential plane: `grid[j,i] = Σ_a q_a / dist(a, (i,j,z0))`.
#[derive(Debug)]
pub struct CpKernel;

impl CpKernel {
    /// Reference computation shared by tests.
    pub fn reference(atoms: &[f32], n: usize, z0: f32) -> Vec<f32> {
        let natoms = atoms.len() / 4;
        let mut grid = vec![0.0f32; n * n];
        let spacing = 0.1f32;
        for j in 0..n {
            for i in 0..n {
                let (gx, gy) = (i as f32 * spacing, j as f32 * spacing);
                let mut e = 0.0f32;
                for a in 0..natoms {
                    let dx = gx - atoms[4 * a];
                    let dy = gy - atoms[4 * a + 1];
                    let dz = z0 - atoms[4 * a + 2];
                    let q = atoms[4 * a + 3];
                    e += q / (dx * dx + dy * dy + dz * dz).sqrt().max(1e-6);
                }
                grid[j * n + i] = e;
            }
        }
        grid
    }
}

impl Kernel for CpKernel {
    fn name(&self) -> &str {
        "cp_energy"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let natoms = args.u64(2)? as usize;
        let n = args.u64(3)? as usize;
        let z0 = args.f64(4)? as f32;
        let atoms = read_f32_slice(mem, args.ptr(0)?, natoms as u64 * 4)?;
        let grid = Self::reference(&atoms, n, z0);
        write_f32_slice(mem, args.ptr(1)?, &grid)?;
        // ~9 flops per atom-cell interaction; atoms stay in shared memory so
        // traffic is one grid write stream.
        Ok(KernelProfile::new(
            (natoms * n * n) as f64 * 9.0,
            (n * n) as f64 * 4.0,
        ))
    }
}

/// The Coulombic-potential workload.
#[derive(Debug, Clone)]
pub struct Cp {
    /// Number of point charges.
    pub natoms: usize,
    /// Grid edge length (plane is `n × n`).
    pub n: usize,
}

impl Default for Cp {
    fn default() -> Self {
        Cp {
            natoms: 16384,
            n: 64,
        }
    }
}

impl Cp {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Cp { natoms: 64, n: 24 }
    }

    fn atoms(&self) -> Vec<f32> {
        let mut rng = Prng::new(0xC0);
        let extent = self.n as f32 * 0.1;
        (0..self.natoms)
            .flat_map(|_| {
                [
                    rng.range_f32(0.0, extent),
                    rng.range_f32(0.0, extent),
                    rng.range_f32(-2.0, 2.0),
                    rng.range_f32(-1.0, 1.0),
                ]
            })
            .collect()
    }

    fn atoms_bytes(&self) -> u64 {
        self.natoms as u64 * 16
    }

    fn grid_bytes(&self) -> u64 {
        (self.n * self.n) as u64 * 4
    }

    /// CPU cost of generating the atom set.
    fn charge_atom_generation(&self, p: &Platform) {
        p.cpu_compute(self.natoms as f64 * 24.0, self.atoms_bytes() as f64);
    }

    /// Packages this instance as a service job (atom set + potential grid
    /// is the byte hint).
    pub fn job(self) -> crate::common::JobSpec {
        let hint = self.atoms_bytes() + self.grid_bytes();
        crate::common::service_job(self, hint)
    }
}

const Z0: f64 = 0.55;

impl Workload for Cp {
    fn name(&self) -> &'static str {
        "cp"
    }

    fn description(&self) -> &'static str {
        "coulombic potential over one plane of a 3D grid with random point charges"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(CpKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let atoms = self.atoms();
        self.charge_atom_generation(p);
        let d_atoms = cuda.malloc(p, self.atoms_bytes())?;
        let d_grid = cuda.malloc(p, self.grid_bytes())?;
        cuda.memcpy_h2d(p, d_atoms, &to_bytes(&atoms))?;
        let args = [
            hetsim::KernelArg::Ptr(d_atoms),
            hetsim::KernelArg::Ptr(d_grid),
            hetsim::KernelArg::U64(self.natoms as u64),
            hetsim::KernelArg::U64(self.n as u64),
            hetsim::KernelArg::F64(Z0),
        ];
        cuda.launch(
            p,
            StreamId(0),
            "cp_energy",
            LaunchDims::for_elements((self.n * self.n) as u64, 128),
            &args,
        )?;
        cuda.thread_synchronize(p)?;
        let mut out = vec![0u8; self.grid_bytes() as usize];
        cuda.memcpy_d2h(p, &mut out, d_grid)?;
        p.cpu_touch(self.grid_bytes());
        p.file_write("cp-out.bin", 0, &out)?;
        cuda.free(p, d_atoms)?;
        cuda.free(p, d_grid)?;
        let mut d = Digest::new();
        d.update(&out);
        Ok(d.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let atoms = self.atoms();
        ctx.with_platform(|p| self.charge_atom_generation(p));
        let s_atoms = ctx.alloc(self.atoms_bytes())?;
        let s_grid = ctx.alloc(self.grid_bytes())?;
        ctx.store_slice(s_atoms, &atoms)?;
        let params = [
            Param::Shared(s_atoms),
            Param::Shared(s_grid),
            Param::U64(self.natoms as u64),
            Param::U64(self.n as u64),
            Param::F64(Z0),
        ];
        ctx.call(
            "cp_energy",
            LaunchDims::for_elements((self.n * self.n) as u64, 128),
            &params,
        )?;
        ctx.sync()?;
        // The shared pointer goes straight to the write() call — no explicit
        // transfer in sight.
        ctx.write_shared_to_file("cp-out.bin", 0, s_grid, self.grid_bytes())?;
        let out = ctx.load_slice::<u8>(s_grid, self.grid_bytes() as usize)?;
        ctx.free(s_atoms)?;
        ctx.free(s_grid)?;
        let mut d = Digest::new();
        d.update(&out);
        Ok(d.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn reference_potential_is_symmetric_for_symmetric_atoms() {
        // One positive charge at the grid centre: potential falls off with
        // distance and is symmetric around the centre.
        let n = 16;
        let c = n as f32 * 0.1 / 2.0;
        let atoms = vec![c, c, 0.0, 1.0];
        let grid = CpKernel::reference(&atoms, n, 0.0);
        let centre = grid[n / 2 * n + n / 2];
        assert!(centre > grid[0], "potential peaks near the charge");
        // Symmetry: mirrored points match.
        let a = grid[2 * n + 3];
        let b = grid[(n - 1 - 2) * n + (n - 1 - 3)];
        let rel = (a - b).abs() / a.abs().max(1e-9);
        assert!(rel < 0.35, "rough mirror symmetry: {a} vs {b}");
    }

    #[test]
    fn variants_agree() {
        let w = Cp::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn compute_dominates_the_breakdown() {
        // cp is compute-bound: GPU time should dominate the Figure 10
        // break-down.
        let w = Cp::default();
        let r = run_variant(&w, Variant::Gmac(gmac::Protocol::Rolling)).unwrap();
        let gpu = r.ledger.get(hetsim::Category::Gpu);
        for (cat, t) in r.ledger.iter() {
            if cat != hetsim::Category::Gpu {
                assert!(gpu >= t, "{cat} ({t}) exceeds GPU time ({gpu})");
            }
        }
    }
}
