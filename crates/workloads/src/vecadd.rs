//! Vector addition micro-benchmark (paper §5.2, Figure 11): "a micro-
//! benchmark that adds up two 8 million element vectors".
//!
//! The CPU initialises the two inputs sequentially, the kernel adds them,
//! and the CPU reads the full result back — the canonical produce/compute/
//! consume cycle whose transfer behaviour Figure 11 sweeps over block sizes.

use crate::common::{Digest, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session, SharedPtr};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use softmmu::{from_bytes, to_bytes};
use std::sync::Arc;

/// `c[i] = a[i] + b[i]`.
#[derive(Debug)]
pub struct VecAddKernel;

impl Kernel for VecAddKernel {
    fn name(&self) -> &str {
        "vecadd"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(3)?;
        let a = read_f32_slice(mem, args.ptr(0)?, n)?;
        let b = read_f32_slice(mem, args.ptr(1)?, n)?;
        let c: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        write_f32_slice(mem, args.ptr(2)?, &c)?;
        // One add per element; 3 words of traffic per element.
        Ok(KernelProfile::new(n as f64, n as f64 * 12.0))
    }
}

/// The vector-addition workload.
#[derive(Debug, Clone)]
pub struct VecAdd {
    /// Elements per vector (paper: 8 million).
    pub n: usize,
}

impl Default for VecAdd {
    fn default() -> Self {
        VecAdd { n: 8 * 1024 * 1024 }
    }
}

impl VecAdd {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        VecAdd { n: 64 * 1024 }
    }

    fn bytes(&self) -> u64 {
        self.n as u64 * 4
    }

    /// Packages this instance as a service job (three `n`-element vectors
    /// is the byte hint).
    pub fn job(self) -> crate::common::JobSpec {
        let hint = self.bytes() * 3;
        crate::common::service_job(self, hint)
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..self.n).map(|i| (i % 9973) as f32 * 0.25).collect();
        let b: Vec<f32> = (0..self.n).map(|i| (i % 7919) as f32 * 0.5).collect();
        (a, b)
    }
}

impl Workload for VecAdd {
    fn name(&self) -> &'static str {
        "vecadd"
    }

    fn description(&self) -> &'static str {
        "adds two 8M-element vectors; CPU produces inputs and consumes the full output"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(VecAddKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let (av, bv) = self.inputs();
        // Host init cost (the CPU really streams these bytes).
        p.cpu_touch(2 * self.bytes());
        // Explicit device management, as in the paper's Figure 3.
        let da = cuda.malloc(p, self.bytes())?;
        let db = cuda.malloc(p, self.bytes())?;
        let dc = cuda.malloc(p, self.bytes())?;
        cuda.memcpy_h2d(p, da, &to_bytes(&av))?;
        cuda.memcpy_h2d(p, db, &to_bytes(&bv))?;
        let args = [
            hetsim::KernelArg::Ptr(da),
            hetsim::KernelArg::Ptr(db),
            hetsim::KernelArg::Ptr(dc),
            hetsim::KernelArg::U64(self.n as u64),
        ];
        cuda.launch(
            p,
            StreamId(0),
            "vecadd",
            LaunchDims::for_elements(self.n as u64, 256),
            &args,
        )?;
        cuda.thread_synchronize(p)?;
        let mut out = vec![0u8; self.bytes() as usize];
        cuda.memcpy_d2h(p, &mut out, dc)?;
        // CPU consumes the result.
        p.cpu_touch(self.bytes());
        let cv: Vec<f32> = from_bytes(&out);
        cuda.free(p, da)?;
        cuda.free(p, db)?;
        cuda.free(p, dc)?;
        let mut d = Digest::new();
        d.update_f32(&cv);
        Ok(d.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let (av, bv) = self.inputs();
        // Single typed allocation, single pointer — Figure 4. The element
        // count lives on the buffer; no byte math at the call site.
        let a = ctx.alloc_typed::<f32>(self.n)?;
        let b = ctx.alloc_typed::<f32>(self.n)?;
        let c = ctx.alloc_typed::<f32>(self.n)?;
        a.write_slice(&av)?;
        b.write_slice(&bv)?;
        let params = [
            Param::from(&a),
            Param::from(&b),
            Param::from(&c),
            Param::U64(self.n as u64),
        ];
        ctx.call(
            "vecadd",
            LaunchDims::for_elements(self.n as u64, 256),
            &params,
        )?;
        ctx.sync()?;
        let cv = c.read_slice()?;
        a.free()?;
        b.free()?;
        c.free()?;
        let mut d = Digest::new();
        d.update_f32(&cv);
        Ok(d.finish())
    }
}

/// Shared pointer triple used by the Figure 11 harness to drive a vecadd
/// round with externally-controlled block sizes.
#[derive(Debug, Clone, Copy)]
pub struct VecAddBuffers {
    /// Input a.
    pub a: SharedPtr,
    /// Input b.
    pub b: SharedPtr,
    /// Output c.
    pub c: SharedPtr,
}

/// Allocates the vecadd buffers in a context (Figure 11 helper).
///
/// # Errors
/// Propagates allocation failures.
pub fn alloc_buffers(ctx: &Session, n: usize) -> Result<VecAddBuffers, gmac::GmacError> {
    let bytes = n as u64 * 4;
    Ok(VecAddBuffers {
        a: ctx.alloc(bytes)?,
        b: ctx.alloc(bytes)?,
        c: ctx.alloc(bytes)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn all_variants_agree_on_output() {
        let w = VecAdd::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn gmac_lazy_time_is_close_to_cuda() {
        // Figure 7: lazy/rolling perform on par with hand-tuned CUDA.
        let w = VecAdd::small();
        let cuda = run_variant(&w, Variant::Cuda)
            .unwrap()
            .elapsed
            .as_secs_f64();
        let lazy = run_variant(&w, Variant::Gmac(gmac::Protocol::Lazy))
            .unwrap()
            .elapsed
            .as_secs_f64();
        let ratio = lazy / cuda;
        assert!(ratio < 1.5, "lazy/cuda = {ratio}");
    }

    #[test]
    fn transfers_match_expectation() {
        let w = VecAdd::small();
        let r = run_variant(&w, Variant::Gmac(gmac::Protocol::Lazy)).unwrap();
        // Two inputs up, one output down (page-rounded).
        assert_eq!(r.transfers.h2d_bytes, 2 * w.bytes());
        assert_eq!(r.transfers.d2h_bytes, w.bytes());
    }
}
