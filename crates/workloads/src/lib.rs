//! # workloads — the paper's applications, twice each
//!
//! Functional re-implementations of the benchmarks the GMAC paper evaluates:
//! the seven Parboil applications of Table 2 (`cp`, `mri-fhd`, `mri-q`,
//! `pns`, `rpes`, `sad`, `tpacf`), the §5.2 vector-addition and §5.1
//! 3D-stencil micro-benchmarks, the §2.2 double-buffered streaming pipeline
//! ([`stream`]), and the analytic NPB bandwidth model behind Figure 2.
//!
//! Every application is implemented **twice over the same kernels**:
//!
//! * a CUDA-style baseline (explicit `cudaMalloc`/`cudaMemcpy`, double
//!   pointers — the paper's Figure 3 pattern), and
//! * a GMAC/ADSM version (single shared pointer, no explicit transfers —
//!   the Figure 4 pattern).
//!
//! The test suite asserts the two variants produce bit-identical outputs, so
//! any performance difference is attributable to the programming model — the
//! comparison Figures 7, 8 and 10 make.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod cp;
pub mod mrifhd;
pub mod mriq;
pub mod npb;
pub mod pns;
pub mod rpes;
pub mod sad;
pub mod stencil3d;
pub mod stream;
pub mod tpacf;
pub mod vecadd;

pub use common::{
    run_variant, run_variant_with, service_job, Digest, JobSpec, Prng, RunResult, Variant,
    Workload, WorkloadError, WorkloadResult,
};

/// The seven Parboil workloads at their default (figure) scales, in the
/// paper's presentation order.
pub fn parboil_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(cp::Cp::default()),
        Box::new(mrifhd::MriFhd::default()),
        Box::new(mriq::MriQ::default()),
        Box::new(pns::Pns::default()),
        Box::new(rpes::Rpes::default()),
        Box::new(sad::Sad::default()),
        Box::new(tpacf::Tpacf::default()),
    ]
}

/// Scaled-down instances of the full suite for fast test runs.
pub fn parboil_suite_small() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(cp::Cp::small()),
        Box::new(mrifhd::MriFhd::small()),
        Box::new(mriq::MriQ::small()),
        Box::new(pns::Pns::small()),
        Box::new(rpes::Rpes::small()),
        Box::new(sad::Sad::small()),
        Box::new(tpacf::Tpacf::small()),
    ]
}
