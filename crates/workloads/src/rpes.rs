//! `rpes` — Rys Polynomial Equation Solver (paper Table 2).
//!
//! "Calculates 2-electron repulsion integrals which represent the Coulomb
//! interaction between electrons in molecules."
//!
//! Phase structure: iterative like pns — the shell-pair table and the
//! integral buffer stay resident on the accelerator across many batches —
//! but with a heavier kernel, so batch-update's full re-transfer hurts less
//! than on pns (18.61× vs 65.18× in Figure 7). Between batches the CPU
//! updates a small control block (quadrature weights) and polls a status
//! word.

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use softmmu::to_bytes;
use std::sync::Arc;

/// Control block length (f32 words).
pub const CTRL_WORDS: usize = 16;

/// How often the CPU polls the status word (periodic convergence check).
pub const POLL_EVERY: usize = 4;

/// Computes one batch of two-electron repulsion integrals using a Rys-like
/// quadrature over shell-pair parameters, modulated by the control block.
#[derive(Debug)]
pub struct RpesKernel;

impl RpesKernel {
    /// Reference computation shared by tests: integral batch `batch_idx`
    /// over `params` with control weights `ctrl`, writing `out` and
    /// returning the status value (sum of the first 16 integrals).
    pub fn reference(
        params: &[f32],
        ctrl: &[f32],
        out: &mut [f32],
        batch_idx: u64,
        per_batch: usize,
    ) -> f32 {
        let npairs = params.len() / 4;
        let nslots = out.len();
        let w_even = 0.651 + ctrl[(batch_idx as usize) % CTRL_WORDS] * 1e-3;
        let w_odd = 1.0 - w_even;
        for i in 0..per_batch {
            let slot = &mut out[i % nslots];
            let pair = (batch_idx as usize * 31 + i * 7) % npairs;
            let (a, b, c, d) = (
                params[4 * pair],
                params[4 * pair + 1],
                params[4 * pair + 2],
                params[4 * pair + 3],
            );
            // Two-point Rys-like quadrature of an exp-damped Coulomb kernel.
            let rho = (a * b) / (a + b + 1e-6);
            let t = rho * (c - d) * (c - d);
            let w0 = (-t).exp();
            let w1 = (-0.5 * t).exp();
            *slot = (w_even * w0 + w_odd * w1) / (rho + 1.0).sqrt();
        }
        out.iter().take(16).sum()
    }
}

impl Kernel for RpesKernel {
    fn name(&self) -> &str {
        "rpes_batch"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let npairs = args.u64(4)?;
        let per_batch = args.u64(5)? as usize;
        let batch_idx = args.u64(6)?;
        let nslots = args.u64(7)? as usize;
        let params = read_f32_slice(mem, args.ptr(0)?, npairs * 4)?;
        let ctrl = read_f32_slice(mem, args.ptr(1)?, CTRL_WORDS as u64)?;
        let mut out = read_f32_slice(mem, args.ptr(2)?, nslots as u64)?;
        let status = RpesKernel::reference(&params, &ctrl, &mut out, batch_idx, per_batch);
        write_f32_slice(mem, args.ptr(2)?, &out)?;
        write_f32_slice(mem, args.ptr(3)?, &[status])?;
        // ~30 flops per integral (exp + sqrt dominated).
        Ok(KernelProfile::new(
            per_batch as f64 * 30.0,
            per_batch as f64 * 8.0,
        ))
    }
}

/// The Rys-polynomial workload.
#[derive(Debug, Clone)]
pub struct Rpes {
    /// Shell pairs (4 parameters each).
    pub npairs: usize,
    /// Integrals computed per kernel batch.
    pub per_batch: usize,
    /// Integral accumulation slots (the resident output buffer).
    pub nslots: usize,
    /// Kernel iterations.
    pub steps: usize,
}

impl Default for Rpes {
    fn default() -> Self {
        // ~4 MB of shell parameters + ~4 MB of integral slots resident on
        // the accelerator, ~100 us kernels; calibrated so batch-update lands
        // near the paper's 18.6× slow-down with <2% signal overhead.
        Rpes {
            npairs: 262_144,
            per_batch: 3_300_000,
            nslots: 1_048_576,
            steps: 48,
        }
    }
}

impl Rpes {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Rpes {
            npairs: 1024,
            per_batch: 2048,
            nslots: 2048,
            steps: 4,
        }
    }

    fn params_bytes(&self) -> u64 {
        self.npairs as u64 * 16
    }

    fn out_bytes(&self) -> u64 {
        self.nslots as u64 * 4
    }

    fn ctrl_bytes(&self) -> u64 {
        (CTRL_WORDS * 4) as u64
    }

    fn initial_params(&self) -> Vec<f32> {
        let mut rng = Prng::new(0x6E5);
        (0..self.npairs * 4)
            .map(|_| rng.range_f32(0.1, 4.0))
            .collect()
    }

    fn ctrl_for_step(step: u64) -> Vec<f32> {
        (0..CTRL_WORDS)
            .map(|i| (step as f32) * 0.125 + i as f32 * 0.01)
            .collect()
    }
}

impl Workload for Rpes {
    fn name(&self) -> &'static str {
        "rpes"
    }

    fn description(&self) -> &'static str {
        "iterative 2-electron repulsion integral batches with small CPU control updates"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(RpesKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let params = self.initial_params();
        p.cpu_touch(self.params_bytes());
        let d_params = cuda.malloc(p, self.params_bytes())?;
        let d_ctrl = cuda.malloc(p, self.ctrl_bytes())?;
        let d_out = cuda.malloc(p, self.out_bytes())?;
        let d_status = cuda.malloc(p, 4)?;
        cuda.memcpy_h2d(p, d_params, &to_bytes(&params))?;
        let mut digest = Digest::new();
        for step in 0..self.steps as u64 {
            // CPU refreshes the quadrature control block by hand.
            let ctrl = Self::ctrl_for_step(step);
            p.cpu_touch(self.ctrl_bytes());
            cuda.memcpy_h2d(p, d_ctrl, &to_bytes(&ctrl))?;
            let args = [
                hetsim::KernelArg::Ptr(d_params),
                hetsim::KernelArg::Ptr(d_ctrl),
                hetsim::KernelArg::Ptr(d_out),
                hetsim::KernelArg::Ptr(d_status),
                hetsim::KernelArg::U64(self.npairs as u64),
                hetsim::KernelArg::U64(self.per_batch as u64),
                hetsim::KernelArg::U64(step),
                hetsim::KernelArg::U64(self.nslots as u64),
            ];
            cuda.launch(
                p,
                StreamId(0),
                "rpes_batch",
                LaunchDims::for_elements(self.per_batch as u64, 128),
                &args,
            )?;
            cuda.thread_synchronize(p)?;
            if (step + 1) % POLL_EVERY as u64 == 0 {
                let mut probe = [0u8; 4];
                cuda.memcpy_d2h(p, &mut probe, d_status)?;
                digest.update(&probe);
            }
        }
        let mut out = vec![0u8; self.out_bytes() as usize];
        cuda.memcpy_d2h(p, &mut out, d_out)?;
        digest.update(&out);
        for d in [d_params, d_ctrl, d_out, d_status] {
            cuda.free(p, d)?;
        }
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let params_v = self.initial_params();
        let s_params = ctx.alloc(self.params_bytes())?;
        let s_ctrl = ctx.alloc(self.ctrl_bytes())?;
        let s_out = ctx.alloc(self.out_bytes())?;
        let s_status = ctx.alloc(4)?;
        ctx.store_slice(s_params, &params_v)?;
        let mut digest = Digest::new();
        for step in 0..self.steps as u64 {
            // The same control refresh, as plain stores through the shared
            // pointer.
            let ctrl = Self::ctrl_for_step(step);
            ctx.store_slice(s_ctrl, &ctrl)?;
            let kparams = [
                Param::Shared(s_params),
                Param::Shared(s_ctrl),
                Param::Shared(s_out),
                Param::Shared(s_status),
                Param::U64(self.npairs as u64),
                Param::U64(self.per_batch as u64),
                Param::U64(step),
                Param::U64(self.nslots as u64),
            ];
            ctx.call(
                "rpes_batch",
                LaunchDims::for_elements(self.per_batch as u64, 128),
                &kparams,
            )?;
            ctx.sync()?;
            if (step + 1) % POLL_EVERY as u64 == 0 {
                let probe: f32 = ctx.load(s_status)?;
                digest.update(&probe.to_le_bytes());
            }
        }
        let out = ctx.load_slice::<u8>(s_out, self.out_bytes() as usize)?;
        digest.update(&out);
        for s in [s_params, s_ctrl, s_out, s_status] {
            ctx.free(s)?;
        }
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};
    use gmac::Protocol;

    #[test]
    fn reference_integrals_are_positive_and_damped() {
        let params = vec![1.0f32, 2.0, 0.5, 0.25, 3.0, 1.0, 2.0, 2.0];
        let ctrl = vec![0.0f32; CTRL_WORDS];
        let mut out = vec![0.0f32; 4];
        let status = RpesKernel::reference(&params, &ctrl, &mut out, 0, 4);
        for &v in &out {
            assert!(v > 0.0 && v < 1.0, "integral {v} out of expected range");
        }
        let expected: f32 = out.iter().take(16).sum();
        assert_eq!(status, expected);
    }

    #[test]
    fn variants_agree() {
        let w = Rpes::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn batch_is_slow_but_less_than_pns() {
        let w = Rpes {
            npairs: 65_536,
            per_batch: 65_536,
            nslots: 65_536,
            steps: 16,
        };
        let cuda = run_variant(&w, Variant::Cuda)
            .unwrap()
            .elapsed
            .as_secs_f64();
        let batch = run_variant(&w, Variant::Gmac(Protocol::Batch))
            .unwrap()
            .elapsed
            .as_secs_f64();
        let lazy = run_variant(&w, Variant::Gmac(Protocol::Lazy))
            .unwrap()
            .elapsed
            .as_secs_f64();
        assert!(batch / cuda > 3.0, "batch slowdown only {}", batch / cuda);
        assert!(lazy / cuda < 1.5, "lazy slowdown {}", lazy / cuda);
    }
}
