//! Workload framework: every benchmark is implemented twice — a CUDA-style
//! baseline with explicit `cudaMemcpy` management (the paper's Figure 3
//! pattern) and a GMAC/ADSM version (the Figure 4 pattern) — over the *same*
//! kernels, so outputs are bit-identical and performance differences are
//! purely the programming model's.

use gmac::{Gmac, GmacConfig, GmacError, Protocol, Session};
use hetsim::{Nanos, Platform, SimError, TimeLedger, TransferLedger};
use std::error::Error;
use std::fmt;

/// Which implementation of a workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Explicit-transfer baseline over the `cudart` shim.
    Cuda,
    /// ADSM version under the given coherence protocol.
    Gmac(Protocol),
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Cuda => f.write_str("CUDA"),
            Variant::Gmac(p) => write!(f, "{p}"),
        }
    }
}

impl Variant {
    /// All variants in the paper's Figure 7 order.
    pub const ALL: [Variant; 4] = [
        Variant::Gmac(Protocol::Batch),
        Variant::Gmac(Protocol::Lazy),
        Variant::Gmac(Protocol::Rolling),
        Variant::Cuda,
    ];
}

/// Errors from workload execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// GMAC runtime failure.
    Gmac(GmacError),
    /// CUDA-shim failure.
    Cuda(cudart::CudaError),
    /// Platform failure.
    Sim(SimError),
    /// Workload-level validation failure (outputs disagree, bad dataset...).
    Validation(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Gmac(e) => write!(f, "gmac: {e}"),
            WorkloadError::Cuda(e) => write!(f, "cuda: {e}"),
            WorkloadError::Sim(e) => write!(f, "sim: {e}"),
            WorkloadError::Validation(msg) => write!(f, "validation: {msg}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Gmac(e) => Some(e),
            WorkloadError::Cuda(e) => Some(e),
            WorkloadError::Sim(e) => Some(e),
            WorkloadError::Validation(_) => None,
        }
    }
}

impl From<GmacError> for WorkloadError {
    fn from(e: GmacError) -> Self {
        WorkloadError::Gmac(e)
    }
}

impl From<cudart::CudaError> for WorkloadError {
    fn from(e: cudart::CudaError) -> Self {
        WorkloadError::Cuda(e)
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

/// Result alias for workload code.
pub type WorkloadResult<T> = Result<T, WorkloadError>;

/// Measurements from one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub name: &'static str,
    /// Variant executed.
    pub variant: Variant,
    /// Total virtual execution time.
    pub elapsed: Nanos,
    /// Execution-time break-down (Figure 10).
    pub ledger: TimeLedger,
    /// Bytes moved per direction (Figure 8).
    pub transfers: TransferLedger,
    /// GMAC event counters (`None` for the CUDA baseline).
    pub counters: Option<gmac::Counters>,
    /// FNV-1a digest of the workload output (equality across variants is
    /// asserted by the test suite).
    pub digest: u64,
}

/// A benchmark implemented in both programming models.
pub trait Workload {
    /// Benchmark name (Parboil name where applicable).
    fn name(&self) -> &'static str;

    /// One-line description (paper Table 2).
    fn description(&self) -> &'static str;

    /// Registers the workload's kernels with the platform.
    fn register_kernels(&self, platform: &mut Platform);

    /// Creates input files etc. (charged no simulated time).
    fn prepare(&self, platform: &mut Platform) -> WorkloadResult<()> {
        let _ = platform;
        Ok(())
    }

    /// Runs the explicit-transfer baseline; returns the output digest.
    ///
    /// # Errors
    /// Propagates platform/shim failures.
    fn run_cuda(&self, platform: &mut Platform) -> WorkloadResult<u64>;

    /// Runs the ADSM version through a session handle; returns the output
    /// digest.
    ///
    /// # Errors
    /// Propagates runtime failures.
    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64>;
}

/// Runs one variant of a workload on a fresh default platform.
///
/// # Errors
/// Propagates workload failures.
pub fn run_variant(w: &dyn Workload, variant: Variant) -> WorkloadResult<RunResult> {
    run_variant_with(w, variant, GmacConfig::default())
}

/// Runs one variant with explicit GMAC configuration (protocol field is
/// overridden by the variant).
///
/// # Errors
/// Propagates workload failures.
pub fn run_variant_with(
    w: &dyn Workload,
    variant: Variant,
    gmac_config: GmacConfig,
) -> WorkloadResult<RunResult> {
    let mut platform = Platform::desktop_g280();
    w.register_kernels(&mut platform);
    w.prepare(&mut platform)?;
    match variant {
        Variant::Cuda => {
            let digest = w.run_cuda(&mut platform)?;
            let ledger = platform.ledger();
            let transfers = *platform.transfers();
            Ok(RunResult {
                name: w.name(),
                variant,
                elapsed: platform.elapsed(),
                ledger,
                transfers,
                counters: None,
                digest,
            })
        }
        Variant::Gmac(protocol) => {
            let gmac = Gmac::new(platform, gmac_config.protocol(protocol));
            let session = gmac.session();
            let digest = w.run_gmac(&session)?;
            let counters = gmac.counters();
            drop(session);
            let platform = gmac.into_platform();
            let ledger = platform.ledger();
            let transfers = *platform.transfers();
            Ok(RunResult {
                name: w.name(),
                variant,
                elapsed: platform.elapsed(),
                ledger,
                transfers,
                counters: Some(counters),
                digest,
            })
        }
    }
}

/// A workload packaged for submission to the [`gmac::Service`] front-end:
/// the byte-footprint hint admission and deficit-weighted fairness account
/// in, plus the boxed job closure the service executes on a placed session.
/// Built by [`service_job`] or the per-workload `job()` constructors.
pub struct JobSpec {
    /// Approximate bytes the job touches (the service's fairness currency).
    pub bytes_hint: u64,
    /// Runs the workload's GMAC variant; returns its output digest.
    pub job: gmac::service::JobFn,
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("bytes_hint", &self.bytes_hint)
            .finish()
    }
}

impl JobSpec {
    /// Submits this job through a service client.
    ///
    /// # Errors
    /// [`GmacError::Admission`] when the service queue is full or closing.
    pub fn submit(self, client: &gmac::ServiceClient) -> gmac::GmacResult<gmac::Ticket> {
        client.submit_boxed(self.bytes_hint, self.job)
    }
}

/// Maps a workload failure to the runtime error a service ticket carries:
/// GMAC errors pass through untouched; shim/validation failures (which
/// cannot occur on the session-only job path short of a bug) surface as
/// unresolved faults.
fn job_error(e: WorkloadError) -> GmacError {
    match e {
        WorkloadError::Gmac(e) => e,
        other => GmacError::UnresolvedFault(format!("workload failure: {other}")),
    }
}

/// Packages a workload's GMAC variant as a service job with the given byte
/// hint. The job runs on whatever device-pinned session the service's
/// placer assigns and returns the workload's output digest, so cross-mode
/// digest comparisons work unchanged through the queue. The workload's
/// kernels must already be registered on the runtime's platform.
pub fn service_job<W>(w: W, bytes_hint: u64) -> JobSpec
where
    W: Workload + Send + 'static,
{
    JobSpec {
        bytes_hint,
        job: Box::new(move |session| w.run_gmac(session).map_err(job_error)),
    }
}

/// FNV-1a streaming digest for cross-variant output comparison.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Creates a fresh digest.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs an `f32` slice (bitwise).
    pub fn update_f32(&mut self, values: &[f32]) {
        for v in values {
            self.update(&v.to_le_bytes());
        }
    }

    /// Absorbs a `u32` slice.
    pub fn update_u32(&mut self, values: &[u32]) {
        for v in values {
            self.update(&v.to_le_bytes());
        }
    }

    /// Final digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Deterministic pseudo-random `f32` in [0, 1) — a tiny xorshift so datasets
/// are identical across variants without threading a rand RNG everywhere.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Creates a generator from a seed (0 is remapped).
    pub fn new(seed: u64) -> Self {
        Prng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform `f32` in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in [lo, hi).
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let mut a = Digest::new();
        a.update(&[1, 2, 3]);
        let mut b = Digest::new();
        b.update(&[3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.update(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn digest_f32_matches_bytes() {
        let mut a = Digest::new();
        a.update_f32(&[1.5, -2.0]);
        let mut b = Digest::new();
        b.update(&1.5f32.to_le_bytes());
        b.update(&(-2.0f32).to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn prng_is_deterministic_and_in_range() {
        let mut p = Prng::new(42);
        let mut q = Prng::new(42);
        for _ in 0..1000 {
            let v = p.next_f32();
            assert_eq!(v, q.next_f32());
            assert!((0.0..1.0).contains(&v));
        }
        let r = Prng::new(42).range_f32(-3.0, 3.0);
        assert!((-3.0..3.0).contains(&r));
    }

    #[test]
    fn prng_zero_seed_is_remapped() {
        let mut p = Prng::new(0);
        assert_ne!(p.next_u64(), 0);
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::Cuda.to_string(), "CUDA");
        assert_eq!(Variant::Gmac(Protocol::Rolling).to_string(), "GMAC Rolling");
        assert_eq!(Variant::ALL.len(), 4);
    }
}
