//! NAS Parallel Benchmark bandwidth-requirement model (paper Figure 2).
//!
//! The paper estimates "the average memory bandwidth requirements for the
//! computationally intensive kernels of some NPB benchmarks, assuming an
//! 800 MHz clock frequency for different values of IPC" and compares them
//! against the bandwidths of PCIe, QPI, HyperTransport and the NVIDIA GTX295
//! on-board memory. The punch line: "if all data accesses are done through a
//! PCIe bus, the maximum achievable value of IPC is 50 for bt and 5 for ua".
//!
//! The model is analytic: each kernel is characterised by its average *bytes
//! accessed per instruction* (calibrated from the paper's two anchor points),
//! and `required_bandwidth = IPC × clock × bytes_per_instruction`.

use hetsim::{BytesPerSec, LinkModel};

/// Accelerator clock frequency assumed by the paper's estimate.
pub const NPB_CLOCK_HZ: f64 = 800e6;

/// An NPB kernel's memory-traffic characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpbKernel {
    /// Benchmark name.
    pub name: &'static str,
    /// Average bytes of memory traffic per executed instruction.
    pub bytes_per_instr: f64,
}

/// The five benchmarks of Figure 2.
///
/// `bt` and `ua` are calibrated exactly to the paper's anchors (IPC 50 and
/// IPC 5 saturate an 8 GB/s PCIe link at 800 MHz); `ep`/`lu`/`mg` are placed
/// by their well-known arithmetic intensities (ep is embarrassingly
/// compute-heavy, mg is memory-bound multigrid).
pub const NPB_KERNELS: [NpbKernel; 5] = [
    NpbKernel {
        name: "bt",
        bytes_per_instr: 0.2,
    },
    NpbKernel {
        name: "ep",
        bytes_per_instr: 0.05,
    },
    NpbKernel {
        name: "lu",
        bytes_per_instr: 0.6,
    },
    NpbKernel {
        name: "mg",
        bytes_per_instr: 1.1,
    },
    NpbKernel {
        name: "ua",
        bytes_per_instr: 2.0,
    },
];

impl NpbKernel {
    /// Kernel by name.
    pub fn by_name(name: &str) -> Option<NpbKernel> {
        NPB_KERNELS.iter().copied().find(|k| k.name == name)
    }

    /// Bandwidth required to sustain `ipc` at the NPB clock.
    pub fn required_bandwidth(&self, ipc: f64) -> BytesPerSec {
        BytesPerSec::new((ipc * NPB_CLOCK_HZ * self.bytes_per_instr).max(f64::MIN_POSITIVE))
    }

    /// Maximum IPC a link of `bw` can sustain for this kernel.
    pub fn max_ipc(&self, bw: BytesPerSec) -> f64 {
        bw.as_bps() / (NPB_CLOCK_HZ * self.bytes_per_instr)
    }
}

/// The four comparison lines of Figure 2, in plot order.
pub fn figure2_links() -> [LinkModel; 4] {
    [
        LinkModel::pcie(),
        LinkModel::qpi(),
        LinkModel::hypertransport(),
        LinkModel::gtx295_memory(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_points_hold() {
        // "the maximum achievable value of IPC is 50 for bt and 5 for ua"
        // over PCIe.
        let pcie = LinkModel::pcie().peak();
        let bt = NpbKernel::by_name("bt").unwrap();
        let ua = NpbKernel::by_name("ua").unwrap();
        assert!(
            (bt.max_ipc(pcie) - 50.0).abs() < 1.0,
            "bt: {}",
            bt.max_ipc(pcie)
        );
        assert!(
            (ua.max_ipc(pcie) - 5.0).abs() < 0.2,
            "ua: {}",
            ua.max_ipc(pcie)
        );
    }

    #[test]
    fn required_bandwidth_is_linear_in_ipc() {
        let mg = NpbKernel::by_name("mg").unwrap();
        let b10 = mg.required_bandwidth(10.0).as_bps();
        let b20 = mg.required_bandwidth(20.0).as_bps();
        assert!((b20 / b10 - 2.0).abs() < 1e-9);
        // IPC 10 at 1.1 B/instr and 800 MHz = 8.8 GB/s.
        assert!((b10 - 8.8e9).abs() < 1e3);
    }

    #[test]
    fn gpu_memory_supports_much_higher_ipc_than_pcie() {
        // The motivating claim: on-board memory sustains far higher IPC than
        // any host interconnect, for every benchmark.
        let pcie = LinkModel::pcie().peak();
        let gddr = LinkModel::gtx295_memory().peak();
        for k in NPB_KERNELS {
            assert!(k.max_ipc(gddr) > 10.0 * k.max_ipc(pcie), "{}", k.name);
        }
    }

    #[test]
    fn kernels_ordered_by_intensity() {
        // ep is the most compute-dense; ua the most memory-hungry.
        let by_bpi: Vec<f64> = NPB_KERNELS.iter().map(|k| k.bytes_per_instr).collect();
        assert!(by_bpi.iter().cloned().fold(f64::INFINITY, f64::min) == 0.05);
        assert!(by_bpi.iter().cloned().fold(0.0, f64::max) == 2.0);
        assert!(NpbKernel::by_name("nope").is_none());
    }

    #[test]
    fn figure2_has_four_lines() {
        let links = figure2_links();
        assert_eq!(links.len(), 4);
        assert_eq!(links[0].name(), "PCIe");
        assert_eq!(links[3].name(), "NVIDIA GTX295 Memory");
    }
}
