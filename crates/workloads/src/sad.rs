//! `sad` — Sum of Absolute Differences (paper Table 2).
//!
//! "Sum of absolute differences kernel, used in MPEG video encoders. Based on
//! the full-pixel motion estimation algorithm found in the JM reference
//! H.264 video encoder."
//!
//! Phase structure: frame pairs are read from disk, the accelerator computes
//! per-macroblock motion vectors, and the CPU consumes the vectors in a
//! scattered pattern (rolling-update fetches only the touched blocks).

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use std::sync::Arc;

/// Macroblock edge in pixels.
pub const MB: usize = 16;
/// Motion search radius in pixels.
pub const SEARCH: i32 = 8;

/// Full-search motion estimation for every 16×16 macroblock.
#[derive(Debug)]
pub struct SadKernel;

impl SadKernel {
    /// Reference motion search shared by tests. Returns (dx, dy, sad) per
    /// macroblock, row-major, packed as u32 triples.
    pub fn reference(reference: &[u8], current: &[u8], w: usize, h: usize) -> Vec<u32> {
        let (mbx, mby) = (w / MB, h / MB);
        let mut out = Vec::with_capacity(mbx * mby * 3);
        for by in 0..mby {
            for bx in 0..mbx {
                let (mut best_dx, mut best_dy, mut best) = (0i32, 0i32, u32::MAX);
                for dy in -SEARCH..=SEARCH {
                    for dx in -SEARCH..=SEARCH {
                        let mut sad = 0u32;
                        for py in 0..MB {
                            for px in 0..MB {
                                let cx = bx * MB + px;
                                let cy = by * MB + py;
                                let rx = cx as i32 + dx;
                                let ry = cy as i32 + dy;
                                let r = if rx < 0 || ry < 0 || rx >= w as i32 || ry >= h as i32 {
                                    128
                                } else {
                                    reference[ry as usize * w + rx as usize]
                                };
                                sad += (current[cy * w + cx] as i32 - r as i32).unsigned_abs();
                            }
                        }
                        if sad < best {
                            best = sad;
                            best_dx = dx;
                            best_dy = dy;
                        }
                    }
                }
                out.push(best_dx as u32);
                out.push(best_dy as u32);
                out.push(best);
            }
        }
        out
    }
}

impl Kernel for SadKernel {
    fn name(&self) -> &str {
        "sad_motion"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let w = args.u64(3)? as usize;
        let h = args.u64(4)? as usize;
        let reference = mem.slice(args.ptr(0)?, (w * h) as u64)?.to_vec();
        let current = mem.slice(args.ptr(1)?, (w * h) as u64)?.to_vec();
        let mvs = SadKernel::reference(&reference, &current, w, h);
        let bytes: Vec<u8> = mvs.iter().flat_map(|v| v.to_le_bytes()).collect();
        mem.write(args.ptr(2)?, &bytes)?;
        let candidates = (2 * SEARCH + 1) as f64 * (2 * SEARCH + 1) as f64;
        let ops = (w * h) as f64 * candidates * 3.0;
        Ok(KernelProfile::new(ops, (w * h) as f64 * 2.0))
    }
}

/// The SAD workload.
#[derive(Debug, Clone)]
pub struct Sad {
    /// Frame width (multiple of 16).
    pub width: usize,
    /// Frame height (multiple of 16).
    pub height: usize,
    /// Number of frame pairs processed.
    pub frames: usize,
}

impl Default for Sad {
    fn default() -> Self {
        Sad {
            width: 640,
            height: 480,
            frames: 3,
        }
    }
}

impl Sad {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Sad {
            width: 64,
            height: 48,
            frames: 2,
        }
    }

    fn frame_bytes(&self) -> u64 {
        (self.width * self.height) as u64
    }

    fn mv_count(&self) -> usize {
        (self.width / MB) * (self.height / MB) * 3
    }

    fn mv_bytes(&self) -> u64 {
        self.mv_count() as u64 * 4
    }
}

impl Workload for Sad {
    fn name(&self) -> &'static str {
        "sad"
    }

    fn description(&self) -> &'static str {
        "H.264-style full-pixel motion estimation over disk-fed frame pairs"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(SadKernel));
    }

    fn prepare(&self, platform: &mut Platform) -> WorkloadResult<()> {
        let mut rng = Prng::new(0x5AD);
        // Synthetic video: smooth gradient plus moving blob per frame.
        for f in 0..=self.frames {
            let mut frame = vec![0u8; self.frame_bytes() as usize];
            let cx = 40 + f * 6;
            let cy = 30 + f * 4;
            for y in 0..self.height {
                for x in 0..self.width {
                    let base = ((x / 2 + y / 3) % 200) as i32;
                    let dx = x as i32 - cx as i32;
                    let dy = y as i32 - cy as i32;
                    let blob = if dx * dx + dy * dy < 220 { 50 } else { 0 };
                    let noise = (rng.next_u64() % 7) as i32;
                    frame[y * self.width + x] = (base + blob + noise).clamp(0, 255) as u8;
                }
            }
            platform.fs_mut().create(&format!("frame-{f}.raw"), frame);
        }
        Ok(())
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let d_ref = cuda.malloc(p, self.frame_bytes())?;
        let d_cur = cuda.malloc(p, self.frame_bytes())?;
        let d_mv = cuda.malloc(p, self.mv_bytes())?;
        let mut digest = Digest::new();
        for f in 0..self.frames {
            let mut reference = vec![0u8; self.frame_bytes() as usize];
            let mut current = vec![0u8; self.frame_bytes() as usize];
            p.file_read(&format!("frame-{f}.raw"), 0, &mut reference)?;
            p.file_read(&format!("frame-{}.raw", f + 1), 0, &mut current)?;
            cuda.memcpy_h2d(p, d_ref, &reference)?;
            cuda.memcpy_h2d(p, d_cur, &current)?;
            let args = [
                hetsim::KernelArg::Ptr(d_ref),
                hetsim::KernelArg::Ptr(d_cur),
                hetsim::KernelArg::Ptr(d_mv),
                hetsim::KernelArg::U64(self.width as u64),
                hetsim::KernelArg::U64(self.height as u64),
            ];
            cuda.launch(
                p,
                StreamId(0),
                "sad_motion",
                LaunchDims::for_elements((self.mv_count() / 3) as u64, 64),
                &args,
            )?;
            cuda.thread_synchronize(p)?;
            let mut mvs = vec![0u8; self.mv_bytes() as usize];
            cuda.memcpy_d2h(p, &mut mvs, d_mv)?;
            // CPU samples every 7th macroblock's vector...
            let mut i = 0;
            while i < self.mv_count() {
                p.cpu_touch(12);
                digest.update(&mvs[i * 4..i * 4 + 12]);
                i += 7 * 3;
            }
            // ...then runs the encoder's motion-compensation pass.
            p.cpu_compute(
                (self.width * self.height) as f64 * 8.0,
                self.frame_bytes() as f64,
            );
        }
        cuda.free(p, d_ref)?;
        cuda.free(p, d_cur)?;
        cuda.free(p, d_mv)?;
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let s_ref = ctx.alloc(self.frame_bytes())?;
        let s_cur = ctx.alloc(self.frame_bytes())?;
        let s_mv = ctx.alloc(self.mv_bytes())?;
        let mut digest = Digest::new();
        for f in 0..self.frames {
            // Frames flow from disk straight into shared memory.
            ctx.read_file_to_shared(&format!("frame-{f}.raw"), 0, s_ref, self.frame_bytes())?;
            ctx.read_file_to_shared(
                &format!("frame-{}.raw", f + 1),
                0,
                s_cur,
                self.frame_bytes(),
            )?;
            let params = [
                Param::Shared(s_ref),
                Param::Shared(s_cur),
                Param::Shared(s_mv),
                Param::U64(self.width as u64),
                Param::U64(self.height as u64),
            ];
            ctx.call(
                "sad_motion",
                LaunchDims::for_elements((self.mv_count() / 3) as u64, 64),
                &params,
            )?;
            ctx.sync()?;
            // Scattered consumption of the motion vectors.
            let mut i = 0;
            while i < self.mv_count() {
                let dx: u32 = ctx.load(s_mv.byte_add(i as u64 * 4))?;
                let dy: u32 = ctx.load(s_mv.byte_add(i as u64 * 4 + 4))?;
                let sad: u32 = ctx.load(s_mv.byte_add(i as u64 * 4 + 8))?;
                digest.update(&dx.to_le_bytes());
                digest.update(&dy.to_le_bytes());
                digest.update(&sad.to_le_bytes());
                i += 7 * 3;
            }
            // The encoder's motion-compensation pass on the CPU.
            ctx.with_platform(|p| {
                p.cpu_compute(
                    (self.width * self.height) as f64 * 8.0,
                    self.frame_bytes() as f64,
                )
            });
        }
        ctx.free(s_ref)?;
        ctx.free(s_cur)?;
        ctx.free(s_mv)?;
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn reference_finds_exact_shift() {
        // current = reference shifted by (2, 1): the motion search must
        // recover (-2, -1)-ish vectors with zero SAD away from borders.
        let (w, h) = (64, 48);
        let mut reference = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                reference[y * w + x] = ((x * 7 + y * 13) % 251) as u8;
            }
        }
        let mut current = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                let sx = (x as i32 - 2).rem_euclid(w as i32) as usize;
                let sy = (y as i32 - 1).rem_euclid(h as i32) as usize;
                current[y * w + x] = reference[sy * w + sx];
            }
        }
        let mvs = SadKernel::reference(&reference, &current, w, h);
        // Interior macroblock (1,1): vector (-2,-1), SAD 0.
        let mbx = w / MB;
        let idx = (mbx + 1) * 3;
        assert_eq!(mvs[idx] as i32, -2);
        assert_eq!(mvs[idx + 1] as i32, -1);
        assert_eq!(mvs[idx + 2], 0);
    }

    #[test]
    fn variants_agree() {
        let w = Sad::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }
}
