//! `mri-fhd` — Magnetic Resonance Imaging FHd (paper Table 2).
//!
//! "Computation of an image-specific matrix FHd, used in a 3D magnetic
//! resonance image reconstruction algorithm in non-Cartesian space."
//!
//! Like mri-q but the accumulation is weighted by the measured k-space data
//! (rho), so the inputs are larger — the most I/O-intensive benchmark in the
//! paper's Figure 10.

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use std::sync::Arc;

/// Accumulates `FHd(x) = Σ_k rho_k* · exp(i·2π·k·x)`.
#[derive(Debug)]
pub struct MriFhdKernel;

impl MriFhdKernel {
    /// Reference computation shared by tests: returns interleaved (rFH, iFH).
    pub fn reference(traj: &[f32], rho: &[f32], voxels: &[f32]) -> Vec<f32> {
        let k = traj.len() / 3;
        let x = voxels.len() / 3;
        let mut fhd = vec![0.0f32; 2 * x];
        for xi in 0..x {
            let (vx, vy, vz) = (voxels[3 * xi], voxels[3 * xi + 1], voxels[3 * xi + 2]);
            let (mut re, mut im) = (0.0f32, 0.0f32);
            for ki in 0..k {
                let (rr, ri) = (rho[2 * ki], rho[2 * ki + 1]);
                let angle = 2.0
                    * std::f32::consts::PI
                    * (traj[3 * ki] * vx + traj[3 * ki + 1] * vy + traj[3 * ki + 2] * vz);
                let (s, c) = angle.sin_cos();
                re += rr * c + ri * s;
                im += ri * c - rr * s;
            }
            fhd[2 * xi] = re;
            fhd[2 * xi + 1] = im;
        }
        fhd
    }
}

impl Kernel for MriFhdKernel {
    fn name(&self) -> &str {
        "mrifhd_computeFH"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let k = args.u64(4)?;
        let x = args.u64(5)?;
        let traj = read_f32_slice(mem, args.ptr(0)?, k * 3)?;
        let rho = read_f32_slice(mem, args.ptr(1)?, k * 2)?;
        let voxels = read_f32_slice(mem, args.ptr(2)?, x * 3)?;
        let fhd = Self::reference(&traj, &rho, &voxels);
        write_f32_slice(mem, args.ptr(3)?, &fhd)?;
        Ok(KernelProfile::new(
            (k * x) as f64 * 16.0,
            (x * 8 + k * 20) as f64,
        ))
    }
}

/// The mri-fhd workload.
#[derive(Debug, Clone)]
pub struct MriFhd {
    /// K-space samples.
    pub k: usize,
    /// Voxels.
    pub x: usize,
}

impl Default for MriFhd {
    fn default() -> Self {
        MriFhd { k: 1024, x: 16384 }
    }
}

impl MriFhd {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        MriFhd { k: 32, x: 256 }
    }

    fn traj_bytes(&self) -> u64 {
        self.k as u64 * 12
    }

    fn rho_bytes(&self) -> u64 {
        self.k as u64 * 8
    }

    fn voxel_bytes(&self) -> u64 {
        self.x as u64 * 12
    }

    fn out_bytes(&self) -> u64 {
        self.x as u64 * 8
    }
}

impl Workload for MriFhd {
    fn name(&self) -> &'static str {
        "mri-fhd"
    }

    fn description(&self) -> &'static str {
        "FHd-matrix computation for non-Cartesian 3D MRI reconstruction (disk-fed inputs)"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(MriFhdKernel));
    }

    fn prepare(&self, platform: &mut Platform) -> WorkloadResult<()> {
        let mut rng = Prng::new(0xFD);
        let traj: Vec<f32> = (0..self.k * 3).map(|_| rng.range_f32(-0.5, 0.5)).collect();
        let rho: Vec<f32> = (0..self.k * 2).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let voxels: Vec<f32> = (0..self.x * 3)
            .map(|_| rng.range_f32(-16.0, 16.0))
            .collect();
        platform
            .fs_mut()
            .create("mrifhd-traj.bin", softmmu::to_bytes(&traj));
        platform
            .fs_mut()
            .create("mrifhd-rho.bin", softmmu::to_bytes(&rho));
        platform
            .fs_mut()
            .create("mrifhd-voxels.bin", softmmu::to_bytes(&voxels));
        Ok(())
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let mut traj = vec![0u8; self.traj_bytes() as usize];
        let mut rho = vec![0u8; self.rho_bytes() as usize];
        let mut voxels = vec![0u8; self.voxel_bytes() as usize];
        p.file_read("mrifhd-traj.bin", 0, &mut traj)?;
        p.file_read("mrifhd-rho.bin", 0, &mut rho)?;
        p.file_read("mrifhd-voxels.bin", 0, &mut voxels)?;
        let d_traj = cuda.malloc(p, self.traj_bytes())?;
        let d_rho = cuda.malloc(p, self.rho_bytes())?;
        let d_vox = cuda.malloc(p, self.voxel_bytes())?;
        let d_out = cuda.malloc(p, self.out_bytes())?;
        cuda.memcpy_h2d(p, d_traj, &traj)?;
        cuda.memcpy_h2d(p, d_rho, &rho)?;
        cuda.memcpy_h2d(p, d_vox, &voxels)?;
        let args = [
            hetsim::KernelArg::Ptr(d_traj),
            hetsim::KernelArg::Ptr(d_rho),
            hetsim::KernelArg::Ptr(d_vox),
            hetsim::KernelArg::Ptr(d_out),
            hetsim::KernelArg::U64(self.k as u64),
            hetsim::KernelArg::U64(self.x as u64),
        ];
        cuda.launch(
            p,
            StreamId(0),
            "mrifhd_computeFH",
            LaunchDims::for_elements(self.x as u64, 256),
            &args,
        )?;
        cuda.thread_synchronize(p)?;
        let mut out = vec![0u8; self.out_bytes() as usize];
        cuda.memcpy_d2h(p, &mut out, d_out)?;
        p.cpu_touch(self.out_bytes());
        p.file_write("mrifhd-out.bin", 0, &out)?;
        for d in [d_traj, d_rho, d_vox, d_out] {
            cuda.free(p, d)?;
        }
        let mut digest = Digest::new();
        digest.update(&out);
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let s_traj = ctx.alloc(self.traj_bytes())?;
        let s_rho = ctx.alloc(self.rho_bytes())?;
        let s_vox = ctx.alloc(self.voxel_bytes())?;
        let s_out = ctx.alloc(self.out_bytes())?;
        ctx.read_file_to_shared("mrifhd-traj.bin", 0, s_traj, self.traj_bytes())?;
        ctx.read_file_to_shared("mrifhd-rho.bin", 0, s_rho, self.rho_bytes())?;
        ctx.read_file_to_shared("mrifhd-voxels.bin", 0, s_vox, self.voxel_bytes())?;
        let params = [
            Param::Shared(s_traj),
            Param::Shared(s_rho),
            Param::Shared(s_vox),
            Param::Shared(s_out),
            Param::U64(self.k as u64),
            Param::U64(self.x as u64),
        ];
        ctx.call(
            "mrifhd_computeFH",
            LaunchDims::for_elements(self.x as u64, 256),
            &params,
        )?;
        ctx.sync()?;
        ctx.write_shared_to_file("mrifhd-out.bin", 0, s_out, self.out_bytes())?;
        let out = ctx.load_slice::<u8>(s_out, self.out_bytes() as usize)?;
        for s in [s_traj, s_rho, s_vox, s_out] {
            ctx.free(s)?;
        }
        let mut digest = Digest::new();
        digest.update(&out);
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn reference_fhd_zero_trajectory_sums_rho() {
        // Zero trajectory => angle 0 => re = Σ rr, im = Σ ri.
        let traj = vec![0.0f32; 6];
        let rho = vec![0.25f32, 0.5, 0.75, -0.5];
        let voxels = vec![1.0f32, 1.0, 1.0];
        let fhd = MriFhdKernel::reference(&traj, &rho, &voxels);
        assert!((fhd[0] - 1.0).abs() < 1e-6);
        assert!((fhd[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn variants_agree() {
        let w = MriFhd::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }
}
