//! `tpacf` — Two-Point Angular Correlation Function (paper Table 2).
//!
//! "TPACF is an equation used here as a way to measure the probability of
//! finding an astronomical body at a given angular distance from another
//! astronomical body."
//!
//! The interesting behaviour is on the *input side*: "the tpacf code
//! initializes shared data structures in several passes" (§5.3). With a
//! small rolling size, a block is evicted between passes and must be
//! re-transferred (and partially re-fetched) when a later pass touches it
//! again — the pathological continuous-transfer regime of Figure 12. Once
//! the pass working-set fits in the rolling size, the thrashing stops
//! abruptly.

use crate::common::{Digest, Prng, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session, SharedPtr};
use hetsim::kernel::read_f32_slice;
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use softmmu::to_bytes;
use std::sync::Arc;

/// Number of histogram bins.
pub const BINS: usize = 64;

/// Histograms angular separations between data points and a strided sample
/// of random points.
#[derive(Debug)]
pub struct TpacfKernel;

impl TpacfKernel {
    /// Reference histogram shared by tests. Points are (ra, dec) pairs in
    /// radians; `samples` random points (offset by the random-set index
    /// `set`) are compared against every data point.
    pub fn reference(data: &[f32], random: &[f32], samples: usize, set: usize) -> Vec<u32> {
        let nd = data.len() / 2;
        let nr = random.len() / 2;
        let stride = (nr / samples.max(1)).max(1);
        let mut bins = vec![0u32; BINS];
        for d in 0..nd {
            let (ra1, dec1) = (data[2 * d], data[2 * d + 1]);
            let mut r = set % stride.max(1);
            while r < nr {
                let (ra2, dec2) = (random[2 * r], random[2 * r + 1]);
                // cos(theta) via the spherical law of cosines.
                let cosang = dec1.sin() * dec2.sin() + dec1.cos() * dec2.cos() * (ra1 - ra2).cos();
                let bin = (((cosang.clamp(-1.0, 1.0) + 1.0) / 2.0) * (BINS as f32 - 1.0)) as usize;
                bins[bin.min(BINS - 1)] += 1;
                r += stride;
            }
        }
        bins
    }
}

impl Kernel for TpacfKernel {
    fn name(&self) -> &str {
        "tpacf_hist"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let nd = args.u64(3)?;
        let nr = args.u64(4)?;
        let samples = args.u64(5)? as usize;
        let set = args.u64(6)? as usize;
        let data = read_f32_slice(mem, args.ptr(0)?, nd * 2)?;
        let random = read_f32_slice(mem, args.ptr(1)?, nr * 2)?;
        let bins = Self::reference(&data, &random, samples, set);
        let bytes: Vec<u8> = bins.iter().flat_map(|v| v.to_le_bytes()).collect();
        mem.write(args.ptr(2)?, &bytes)?;
        let pairs = nd as f64 * samples as f64;
        Ok(KernelProfile::new(pairs * 12.0, (nd + nr) as f64 * 8.0))
    }
}

/// The TPACF workload.
#[derive(Debug, Clone)]
pub struct Tpacf {
    /// Data points.
    pub ndata: usize,
    /// Random points (the multi-pass-initialised structure).
    pub nrandom: usize,
    /// Random points sampled per data point in the kernel.
    pub samples: usize,
    /// Number of random sets correlated against (one kernel call each —
    /// the paper uses 100 random datasets; we scale down).
    pub sets: usize,
    /// Sliding-window lags (bytes) of the second and third initialisation
    /// passes — the §5.3 access pattern.
    pub pass_lags: [u64; 2],
    /// Chunk in which the initialisation streams advance.
    pub init_chunk: usize,
}

impl Default for Tpacf {
    fn default() -> Self {
        Tpacf {
            ndata: 64 * 1024,
            nrandom: 2 * 1024 * 1024,
            samples: 32,
            sets: 4,
            pass_lags: [512 << 10, 1 << 20],
            init_chunk: 32 * 1024,
        }
    }
}

impl Tpacf {
    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Tpacf {
            ndata: 512,
            nrandom: 8192,
            samples: 8,
            sets: 2,
            pass_lags: [8 * 1024, 16 * 1024],
            init_chunk: 4 * 1024,
        }
    }

    fn data_bytes(&self) -> u64 {
        self.ndata as u64 * 8
    }

    fn random_bytes(&self) -> u64 {
        self.nrandom as u64 * 8
    }

    fn bins_bytes(&self) -> u64 {
        (BINS * 4) as u64
    }

    fn data_points(&self) -> Vec<f32> {
        let mut rng = Prng::new(0x7ACF);
        (0..self.ndata * 2)
            .map(|_| rng.range_f32(-1.5, 1.5))
            .collect()
    }

    /// Raw pass-1 values for the random-point structure.
    fn pass1_value(i: usize) -> f32 {
        ((i % 9973) as f32) * 1e-4 - 0.5
    }

    /// Pass-2 transform (applied at lag `pass_lags[0]` behind pass 1).
    fn pass2(v: f32) -> f32 {
        v * 1.5 + 0.125
    }

    /// Pass-3 transform (applied at lag `pass_lags[1]` behind pass 1).
    fn pass3(v: f32) -> f32 {
        (v - 0.25) * 0.8
    }

    /// Reference result of the multi-pass initialisation (test oracle).
    #[cfg(test)]
    fn expected_random(&self) -> Vec<f32> {
        let n = self.nrandom * 2;
        let mut buf = vec![0.0f32; n];
        for (i, v) in buf.iter_mut().enumerate() {
            *v = Self::pass1_value(i);
        }
        for v in buf.iter_mut() {
            *v = Self::pass2(*v);
        }
        for v in buf.iter_mut() {
            *v = Self::pass3(*v);
        }
        buf
    }
}

impl Workload for Tpacf {
    fn name(&self) -> &'static str {
        "tpacf"
    }

    fn description(&self) -> &'static str {
        "two-point angular correlation histogram with multi-pass CPU initialisation"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(TpacfKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let data = self.data_points();
        p.cpu_touch(self.data_bytes());
        // Multi-pass init over a private host buffer: each pass streams the
        // array once; the single explicit upload happens afterwards.
        let elems = self.nrandom * 2;
        let mut random = vec![0.0f32; elems];
        let chunk_elems = self.init_chunk / 4;
        let lag1 = (self.pass_lags[0] / 4) as usize;
        let lag2 = (self.pass_lags[1] / 4) as usize;
        let mut pos = 0usize;
        while pos < elems + lag2 {
            if pos < elems {
                let hi = (pos + chunk_elems).min(elems);
                for (i, v) in random.iter_mut().enumerate().take(hi).skip(pos) {
                    *v = Self::pass1_value(i);
                }
                p.cpu_touch(((hi - pos) * 4) as u64);
            }
            if pos >= lag1 && pos - lag1 < elems {
                let lo = pos - lag1;
                let hi = (lo + chunk_elems).min(elems);
                for v in &mut random[lo..hi] {
                    *v = Self::pass2(*v);
                }
                // Read-modify-write: the chunk streams through twice.
                p.cpu_touch(((hi - lo) * 8) as u64);
            }
            if pos >= lag2 && pos - lag2 < elems {
                let lo = pos - lag2;
                let hi = (lo + chunk_elems).min(elems);
                for v in &mut random[lo..hi] {
                    *v = Self::pass3(*v);
                }
                p.cpu_touch(((hi - lo) * 8) as u64);
            }
            pos += chunk_elems;
        }
        let d_data = cuda.malloc(p, self.data_bytes())?;
        let d_random = cuda.malloc(p, self.random_bytes())?;
        let d_bins = cuda.malloc(p, self.bins_bytes())?;
        cuda.memcpy_h2d(p, d_data, &to_bytes(&data))?;
        cuda.memcpy_h2d(p, d_random, &to_bytes(&random))?;
        let mut digest = Digest::new();
        // One kernel call per random set, accumulating histograms on the CPU.
        let mut accum = vec![0u64; BINS];
        for set in 0..self.sets as u64 {
            let args = [
                hetsim::KernelArg::Ptr(d_data),
                hetsim::KernelArg::Ptr(d_random),
                hetsim::KernelArg::Ptr(d_bins),
                hetsim::KernelArg::U64(self.ndata as u64),
                hetsim::KernelArg::U64(self.nrandom as u64),
                hetsim::KernelArg::U64(self.samples as u64),
                hetsim::KernelArg::U64(set),
            ];
            cuda.launch(
                p,
                StreamId(0),
                "tpacf_hist",
                LaunchDims::for_elements(self.ndata as u64, 128),
                &args,
            )?;
            cuda.thread_synchronize(p)?;
            let mut bins = vec![0u8; self.bins_bytes() as usize];
            cuda.memcpy_d2h(p, &mut bins, d_bins)?;
            p.cpu_touch(self.bins_bytes());
            for (slot, chunk) in accum.iter_mut().zip(bins.chunks_exact(4)) {
                *slot += u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as u64;
            }
        }
        for d in [d_data, d_random, d_bins] {
            cuda.free(p, d)?;
        }
        for v in &accum {
            digest.update(&v.to_le_bytes());
        }
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let data = self.data_points();
        let s_data = ctx.alloc(self.data_bytes())?;
        let s_random = ctx.alloc(self.random_bytes())?;
        let s_bins = ctx.alloc(self.bins_bytes())?;
        ctx.store_slice(s_data, &data)?;
        self.multi_pass_init(ctx, s_random)?;
        let mut digest = Digest::new();
        let mut accum = vec![0u64; BINS];
        for set in 0..self.sets as u64 {
            let params = [
                Param::Shared(s_data),
                Param::Shared(s_random),
                Param::Shared(s_bins),
                Param::U64(self.ndata as u64),
                Param::U64(self.nrandom as u64),
                Param::U64(self.samples as u64),
                Param::U64(set),
            ];
            ctx.call(
                "tpacf_hist",
                LaunchDims::for_elements(self.ndata as u64, 128),
                &params,
            )?;
            ctx.sync()?;
            let bins: Vec<u32> = ctx.load_slice(s_bins, BINS)?;
            for (slot, v) in accum.iter_mut().zip(&bins) {
                *slot += *v as u64;
            }
        }
        for s in [s_data, s_random, s_bins] {
            ctx.free(s)?;
        }
        for v in &accum {
            digest.update(&v.to_le_bytes());
        }
        Ok(digest.finish())
    }
}

impl Tpacf {
    /// The §5.3 initialisation pattern against shared memory: three write
    /// streams — pass 1 at the head, passes 2 and 3 trailing at fixed lags —
    /// so up to three distant blocks are dirtied in close succession. With a
    /// rolling size below the stream count the oldest block is evicted and
    /// immediately re-dirtied: continuous transfers (Figure 12).
    pub fn multi_pass_init(&self, ctx: &Session, s_random: SharedPtr) -> WorkloadResult<()> {
        let elems = self.nrandom * 2;
        let chunk_elems = self.init_chunk / 4;
        let lag1 = (self.pass_lags[0] / 4) as usize;
        let lag2 = (self.pass_lags[1] / 4) as usize;
        let mut pos = 0usize;
        while pos < elems + lag2 {
            if pos < elems {
                let hi = (pos + chunk_elems).min(elems);
                let vals: Vec<f32> = (pos..hi).map(Self::pass1_value).collect();
                ctx.store_slice(s_random.byte_add(pos as u64 * 4), &vals)?;
            }
            if pos >= lag1 && pos - lag1 < elems {
                let lo = pos - lag1;
                let hi = (lo + chunk_elems).min(elems);
                let mut vals: Vec<f32> =
                    ctx.load_slice(s_random.byte_add(lo as u64 * 4), hi - lo)?;
                for v in vals.iter_mut() {
                    *v = Self::pass2(*v);
                }
                ctx.store_slice(s_random.byte_add(lo as u64 * 4), &vals)?;
            }
            if pos >= lag2 && pos - lag2 < elems {
                let lo = pos - lag2;
                let hi = (lo + chunk_elems).min(elems);
                let mut vals: Vec<f32> =
                    ctx.load_slice(s_random.byte_add(lo as u64 * 4), hi - lo)?;
                for v in vals.iter_mut() {
                    *v = Self::pass3(*v);
                }
                ctx.store_slice(s_random.byte_add(lo as u64 * 4), &vals)?;
            }
            pos += chunk_elems;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, run_variant_with, Variant};
    use gmac::{GmacConfig, Protocol};

    #[test]
    fn reference_histogram_counts_all_pairs() {
        let data = vec![0.1f32, 0.2, -0.3, 0.4];
        let random: Vec<f32> = (0..64).map(|i| (i as f32) * 0.01).collect();
        let bins = TpacfKernel::reference(&data, &random, 8, 0);
        let total: u32 = bins.iter().sum();
        // 2 data points × 8 sampled random points.
        assert_eq!(total, 16);
    }

    #[test]
    fn multi_pass_init_matches_reference_buffer() {
        let w = Tpacf::small();
        let platform = Platform::desktop_g280();
        let ctx = gmac::Gmac::new(
            platform,
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(8 * 1024),
        )
        .session();
        let s = ctx.alloc(w.random_bytes()).unwrap();
        w.multi_pass_init(&ctx, s).unwrap();
        let got: Vec<f32> = ctx.load_slice(s, w.nrandom * 2).unwrap();
        assert_eq!(got, w.expected_random());
    }

    #[test]
    fn variants_agree() {
        let w = Tpacf::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn small_rolling_size_thrashes() {
        // The Figure 12 pathology: rolling size 1 re-transfers continuously;
        // rolling size 4 holds all three write streams.
        let w = Tpacf {
            ndata: 1024,
            nrandom: 128 * 1024,
            samples: 4,
            sets: 1,
            pass_lags: [256 * 1024, 512 * 1024],
            init_chunk: 16 * 1024,
        };
        let base = GmacConfig::default().block_size(64 * 1024);
        let r1 = run_variant_with(
            &w,
            Variant::Gmac(Protocol::Rolling),
            base.clone().rolling_size(1),
        )
        .unwrap();
        let r4 =
            run_variant_with(&w, Variant::Gmac(Protocol::Rolling), base.rolling_size(4)).unwrap();
        assert!(
            r1.transfers.h2d_bytes > 3 * r4.transfers.h2d_bytes,
            "rolling-1 {} vs rolling-4 {}",
            r1.transfers.h2d_bytes,
            r4.transfers.h2d_bytes
        );
        assert!(r1.elapsed > r4.elapsed);
    }
}
