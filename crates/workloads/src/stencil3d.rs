//! 3D-Stencil computation (paper §5.1, Figure 9).
//!
//! Iterative 7-point stencil over an `n×n×n` volume. Each time-step the CPU
//! *introduces a source* — writes a handful of cells at the emitter location,
//! touching a single memory block — then the accelerator computes the next
//! volume. Every few iterations the current volume is written to disk, which
//! requires transferring the complete volume back from accelerator memory.
//!
//! This is the workload where rolling-update beats lazy-update: source
//! introduction dirties one *block* instead of one *object*, so only that
//! block moves before the next kernel call.

use crate::common::{Digest, Workload, WorkloadResult};
use cudart::Cuda;
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use std::sync::Arc;

/// 7-point stencil step: `next = 0.6*cur + 0.4*avg6(cur)` on interior cells.
#[derive(Debug)]
pub struct StencilKernel;

impl StencilKernel {
    fn reference(cur: &[f32], next: &mut [f32], n: usize) {
        let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
        next.copy_from_slice(cur);
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let sum = cur[idx(x - 1, y, z)]
                        + cur[idx(x + 1, y, z)]
                        + cur[idx(x, y - 1, z)]
                        + cur[idx(x, y + 1, z)]
                        + cur[idx(x, y, z - 1)]
                        + cur[idx(x, y, z + 1)];
                    next[idx(x, y, z)] = 0.6 * cur[idx(x, y, z)] + 0.4 * (sum / 6.0);
                }
            }
        }
    }
}

impl Kernel for StencilKernel {
    fn name(&self) -> &str {
        "stencil3d"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(2)? as usize;
        let cells = (n * n * n) as u64;
        let cur = read_f32_slice(mem, args.ptr(0)?, cells)?;
        let mut next = vec![0.0f32; cells as usize];
        Self::reference(&cur, &mut next, n);
        write_f32_slice(mem, args.ptr(1)?, &next)?;
        // ~9 flops per cell, one read + one write stream.
        Ok(KernelProfile::new(cells as f64 * 9.0, cells as f64 * 8.0))
    }
}

/// The 3D-stencil workload.
#[derive(Debug, Clone)]
pub struct Stencil3d {
    /// Volume edge length (paper sweeps 64..384).
    pub n: usize,
    /// Time steps.
    pub steps: usize,
    /// Dump the volume to disk every this many steps.
    pub dump_every: usize,
}

impl Default for Stencil3d {
    fn default() -> Self {
        Stencil3d {
            n: 128,
            steps: 16,
            dump_every: 16,
        }
    }
}

impl Stencil3d {
    /// Instance with a specific volume size (Figure 9 sweep).
    pub fn with_volume(n: usize) -> Self {
        Stencil3d {
            n,
            ..Self::default()
        }
    }

    /// Scaled-down instance for unit tests.
    pub fn small() -> Self {
        Stencil3d {
            n: 24,
            steps: 3,
            dump_every: 2,
        }
    }

    fn cells(&self) -> usize {
        self.n * self.n * self.n
    }

    fn bytes(&self) -> u64 {
        self.cells() as u64 * 4
    }

    /// Packages this instance as a service job (the two ping-pong volumes
    /// is the byte hint). The volume-dump files must already exist on the
    /// platform ([`crate::Workload::prepare`]).
    pub fn job(self) -> crate::common::JobSpec {
        let hint = self.bytes() * 2;
        crate::common::service_job(self, hint)
    }

    /// The source emitter: a small run of cells at the volume centre
    /// (values depend on the time-step so dumps differ per step).
    fn source_cells(&self, step: usize) -> Vec<(usize, f32)> {
        let n = self.n;
        let centre = (n / 2 * n + n / 2) * n + n / 2;
        (0..4).map(|k| (centre + k, 100.0 + step as f32)).collect()
    }
}

impl Workload for Stencil3d {
    fn name(&self) -> &'static str {
        "stencil3d"
    }

    fn description(&self) -> &'static str {
        "iterative 7-point 3D stencil with CPU source introduction and periodic volume dumps"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(StencilKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let bytes = self.bytes();
        let mut digest = Digest::new();
        let d_a = cuda.malloc(p, bytes)?;
        let d_b = cuda.malloc(p, bytes)?;
        // Zero-initialise on device.
        cuda.memset(p, d_a, 0, bytes)?;
        let (mut cur, mut next) = (d_a, d_b);
        for step in 0..self.steps {
            // Source introduction: the programmer hand-copies the emitter
            // cells to the device, batching the contiguous run into one
            // gathered upload instead of one cudaMemcpy per cell.
            let cells = self.source_cells(step);
            let staged: Vec<(hetsim::DevAddr, [u8; 4])> = cells
                .iter()
                .map(|&(idx, v)| (cur.add(idx as u64 * 4), v.to_le_bytes()))
                .collect();
            let segments: Vec<(hetsim::DevAddr, &[u8])> = staged
                .iter()
                .map(|(dst, bytes)| (*dst, bytes.as_slice()))
                .collect();
            p.cpu_touch(4 * cells.len() as u64);
            cuda.memcpy_h2d_gather(p, &segments)?;
            let args = [
                hetsim::KernelArg::Ptr(cur),
                hetsim::KernelArg::Ptr(next),
                hetsim::KernelArg::U64(self.n as u64),
            ];
            cuda.launch(
                p,
                StreamId(0),
                "stencil3d",
                LaunchDims::for_elements(self.cells() as u64, 256),
                &args,
            )?;
            cuda.thread_synchronize(p)?;
            std::mem::swap(&mut cur, &mut next);
            if (step + 1) % self.dump_every == 0 {
                // Explicit transfer back, then write to disk.
                let mut host = vec![0u8; bytes as usize];
                cuda.memcpy_d2h(p, &mut host, cur)?;
                p.file_write("stencil-out.bin", 0, &host)?;
                digest.update(&host);
            }
        }
        cuda.free(p, d_a)?;
        cuda.free(p, d_b)?;
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        let bytes = self.bytes();
        let mut digest = Digest::new();
        let a = ctx.alloc(bytes)?;
        let b = ctx.alloc(bytes)?;
        ctx.memset(a, 0, bytes)?;
        ctx.memset(b, 0, bytes)?;
        let (mut cur, mut next) = (a, b);
        for step in 0..self.steps {
            // Source introduction through the shared pointer: dirties one
            // block (rolling) or the whole object (lazy).
            for (idx, v) in self.source_cells(step) {
                ctx.store::<f32>(cur.byte_add(idx as u64 * 4), v)?;
            }
            let params = [
                Param::Shared(cur),
                Param::Shared(next),
                Param::U64(self.n as u64),
            ];
            ctx.call(
                "stencil3d",
                LaunchDims::for_elements(self.cells() as u64, 256),
                &params,
            )?;
            ctx.sync()?;
            std::mem::swap(&mut cur, &mut next);
            if (step + 1) % self.dump_every == 0 {
                // Shared pointer goes straight to the I/O call (§4.4).
                ctx.write_shared_to_file("stencil-out.bin", 0, cur, bytes)?;
                let dump = ctx.load_slice::<u8>(cur, bytes as usize)?;
                digest.update(&dump);
            }
        }
        ctx.free(a)?;
        ctx.free(b)?;
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};
    use gmac::Protocol;

    #[test]
    fn reference_stencil_diffuses_source() {
        let n = 8;
        let mut cur = vec![0.0f32; n * n * n];
        let mut next = vec![0.0f32; n * n * n];
        let centre = (n / 2 * n + n / 2) * n + n / 2;
        cur[centre] = 100.0;
        StencilKernel::reference(&cur, &mut next, n);
        assert!(next[centre] < 100.0, "centre decays");
        assert!(next[centre - 1] > 0.0, "neighbours heat up");
        // Boundary cells copy through.
        assert_eq!(next[0], 0.0);
    }

    #[test]
    fn variants_agree_on_output() {
        let w = Stencil3d::small();
        let digests: Vec<u64> = [
            Variant::Cuda,
            Variant::Gmac(Protocol::Lazy),
            Variant::Gmac(Protocol::Rolling),
            Variant::Gmac(Protocol::Batch),
        ]
        .iter()
        .map(|&v| run_variant(&w, v).unwrap().digest)
        .collect();
        assert!(
            digests.windows(2).all(|d| d[0] == d[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn rolling_moves_less_data_than_lazy() {
        // The Figure 9 effect: source introduction dirties one block under
        // rolling-update but the whole volume under lazy-update.
        let w = Stencil3d {
            n: 48,
            steps: 8,
            dump_every: 8,
        };
        let cfg = gmac::GmacConfig::default().block_size(64 * 1024);
        let lazy = crate::common::run_variant_with(&w, Variant::Gmac(Protocol::Lazy), cfg.clone())
            .unwrap();
        let rolling =
            crate::common::run_variant_with(&w, Variant::Gmac(Protocol::Rolling), cfg).unwrap();
        assert!(
            rolling.transfers.h2d_bytes < lazy.transfers.h2d_bytes / 3,
            "rolling {} vs lazy {}",
            rolling.transfers.h2d_bytes,
            lazy.transfers.h2d_bytes
        );
        assert!(rolling.elapsed < lazy.elapsed);
    }
}
