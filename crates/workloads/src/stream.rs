//! Chunked streaming pipeline: process an input stream **larger than device
//! memory** through two chunk-sized device buffers (the paper's §2.2 second
//! motivation, turned into a full workload).
//!
//! The CUDA baseline is the hand-written double-buffering dance: async
//! uploads, per-slot events, explicit retire-before-reuse synchronisation.
//! The GMAC version is the same pipeline written naively — write a chunk,
//! call, sync, read — and relies on the runtime (rolling-update eager
//! flushes + the background DMA engine) to recover the overlap the CUDA
//! version codes by hand.
//!
//! The default instance streams 1.25 GiB of `f32` data through a platform
//! whose accelerator window is 1 GiB: the input provably never fits
//! resident, only the two in-flight chunks do. Inputs are generated
//! chunk-by-chunk from the element index (never materialised whole), so
//! host memory stays `O(chunk)` as well.

use crate::common::{Digest, Workload, WorkloadResult};
use cudart::{Cuda, Event};
use gmac::{Param, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult, StreamId,
};
use softmmu::{from_bytes, to_bytes};
use std::sync::Arc;

/// Scale factor of the in-place kernel (exact in `f32`).
const SCALE: f32 = 1.25;
/// Offset of the in-place kernel (exact in `f32`).
const OFFSET: f32 = 0.5;

/// `x[i] = x[i] * SCALE + OFFSET`, in place.
#[derive(Debug)]
pub struct StreamScaleKernel;

impl Kernel for StreamScaleKernel {
    fn name(&self) -> &str {
        "stream_scale"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let ptr = args.ptr(0)?;
        let n = args.u64(1)?;
        let x = read_f32_slice(mem, ptr, n)?;
        let y: Vec<f32> = x.iter().map(|v| v.mul_add(SCALE, OFFSET)).collect();
        write_f32_slice(mem, ptr, &y)?;
        // One FMA per element; read + write one word each.
        Ok(KernelProfile::new(n as f64, n as f64 * 8.0))
    }
}

/// The streaming-pipeline workload.
#[derive(Debug, Clone)]
pub struct StreamPipeline {
    /// Elements per chunk (one chunk = one device buffer's worth).
    pub chunk: usize,
    /// Number of chunks in the stream.
    pub chunks: usize,
}

impl Default for StreamPipeline {
    fn default() -> Self {
        // 8 MiB chunks x 160 = 1.25 GiB streamed through a 1 GiB device.
        StreamPipeline {
            chunk: 2 * 1024 * 1024,
            chunks: 160,
        }
    }
}

impl StreamPipeline {
    /// Scaled-down instance for unit tests (1.5 MiB total, 256 KiB chunks).
    pub fn small() -> Self {
        StreamPipeline {
            chunk: 64 * 1024,
            chunks: 6,
        }
    }

    /// Bytes per chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk as u64 * 4
    }

    /// Total bytes streamed through the device.
    pub fn total_bytes(&self) -> u64 {
        self.chunk_bytes() * self.chunks as u64
    }

    /// Generates chunk `c` of the input from the global element index, so
    /// the full stream never exists in host memory at once.
    fn chunk_input(&self, c: usize) -> Vec<f32> {
        let base = c * self.chunk;
        (0..self.chunk)
            .map(|j| ((base + j) % 8191) as f32 * 0.125)
            .collect()
    }
}

impl Workload for StreamPipeline {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn description(&self) -> &'static str {
        "streams an input larger than device memory through two chunk buffers, double-buffered"
    }

    fn register_kernels(&self, platform: &mut Platform) {
        platform.register_kernel(Arc::new(StreamScaleKernel));
    }

    fn run_cuda(&self, p: &mut Platform) -> WorkloadResult<u64> {
        let cuda = Cuda::new(DeviceId(0));
        let bytes = self.chunk_bytes();
        let bufs = [cuda.malloc(p, bytes)?, cuda.malloc(p, bytes)?];
        let mut digest = Digest::new();
        let mut out = vec![0u8; bytes as usize];
        // Per-slot (chunk index, kernel-completion event) of the chunk
        // currently occupying that device buffer.
        let mut resident: [Option<(usize, Event)>; 2] = [None, None];
        let mut retire = |p: &mut Platform, slot: usize, ev: Event| -> WorkloadResult<()> {
            cuda.event_synchronize(p, ev);
            cuda.memcpy_d2h(p, &mut out, bufs[slot])?;
            p.cpu_touch(bytes);
            digest.update_f32(&from_bytes::<f32>(&out));
            Ok(())
        };
        for c in 0..self.chunks {
            let input = self.chunk_input(c);
            p.cpu_touch(bytes);
            let slot = c % 2;
            // The fiddly part the paper complains about: before reusing a
            // buffer, wait for its kernel and drain its output.
            if let Some((_, ev)) = resident[slot].take() {
                retire(p, slot, ev)?;
            }
            let up = cuda.memcpy_h2d_async(p, bufs[slot], &to_bytes(&input))?;
            // The kernel must consume landed data; the *other* slot's kernel
            // keeps running under this wait.
            cuda.event_synchronize(p, up);
            let args = [
                hetsim::KernelArg::Ptr(bufs[slot]),
                hetsim::KernelArg::U64(self.chunk as u64),
            ];
            let ev = cuda.launch(
                p,
                StreamId(0),
                "stream_scale",
                LaunchDims::for_elements(self.chunk as u64, 256),
                &args,
            )?;
            resident[slot] = Some((c, ev));
        }
        // Drain the tail in chunk order so the digest stays sequential.
        let mut tail: Vec<(usize, usize, Event)> = resident
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| r.map(|(c, ev)| (c, slot, ev)))
            .collect();
        tail.sort_by_key(|&(c, _, _)| c);
        for (_, slot, ev) in tail {
            retire(p, slot, ev)?;
        }
        cuda.free(p, bufs[0])?;
        cuda.free(p, bufs[1])?;
        Ok(digest.finish())
    }

    fn run_gmac(&self, ctx: &Session) -> WorkloadResult<u64> {
        // The same pipeline with none of the event bookkeeping: the runtime
        // flushes written blocks in the background and the implicit
        // release/acquire at call/sync provides the per-buffer ordering.
        let bufs = [
            ctx.alloc_typed::<f32>(self.chunk)?,
            ctx.alloc_typed::<f32>(self.chunk)?,
        ];
        let dims = LaunchDims::for_elements(self.chunk as u64, 256);
        let mut digest = Digest::new();
        for c in 0..self.chunks {
            let slot = c % 2;
            // Produce chunk c while chunk c-1's kernel is still in flight on
            // the other buffer.
            bufs[slot].write_slice(&self.chunk_input(c))?;
            if c >= 1 {
                ctx.sync()?;
                digest.update_f32(&bufs[1 - slot].read_slice()?);
            }
            let params = [Param::from(&bufs[slot]), Param::U64(self.chunk as u64)];
            // The write-set annotation matters here: without it, batch-update's
            // acquire at the next sync would fetch *both* buffers back and
            // clobber the chunk the CPU produced while the kernel ran.
            ctx.call_annotated("stream_scale", dims, &params, Some(&[bufs[slot].ptr()]))?;
        }
        ctx.sync()?;
        digest.update_f32(&bufs[(self.chunks - 1) % 2].read_slice()?);
        let [a, b] = bufs;
        a.free()?;
        b.free()?;
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_variant, Variant};

    #[test]
    fn all_variants_agree_on_output() {
        let w = StreamPipeline::small();
        let digests: Vec<u64> = Variant::ALL
            .iter()
            .map(|&v| run_variant(&w, v).unwrap().digest)
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests: {digests:?}"
        );
    }

    #[test]
    fn device_footprint_is_two_chunks() {
        let w = StreamPipeline::small();
        let r = run_variant(&w, Variant::Gmac(gmac::Protocol::Rolling)).unwrap();
        // Every chunk goes up and comes back exactly once despite the
        // stream being arbitrarily longer than the two resident buffers.
        assert_eq!(r.transfers.h2d_bytes, w.total_bytes());
        assert_eq!(r.transfers.d2h_bytes, w.total_bytes());
    }

    #[test]
    fn default_instance_exceeds_device_memory() {
        let w = StreamPipeline::default();
        assert!(w.total_bytes() > 1 << 30, "stream must not fit resident");
    }
}
