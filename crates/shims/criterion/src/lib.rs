//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of the criterion API the workspace's benches use and
//! measures with plain [`std::time::Instant`]. Each benchmark routine is
//! warmed once and then timed over a small fixed number of iterations —
//! enough for a ballpark figure and for `cargo test`/CI to prove the bench
//! code still compiles and runs, without criterion's statistics machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (kept small: benches double as
/// smoke tests under `cargo test`).
const TIMED_ITERS: u32 = 10;

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new<P: fmt::Display>(name: &str, param: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// Creates an id from just a parameter.
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly, accumulating elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = TIMED_ITERS;
    }

    fn report(&self, label: &str) {
        if self.iters > 0 {
            let per = self.elapsed.as_secs_f64() / f64::from(self.iters);
            println!("bench {label:<40} {:>12.3} us/iter", per * 1e6);
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_and_counts() {
        let mut b = Bencher::default();
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, TIMED_ITERS + 1, "warm-up plus timed iterations");
        assert_eq!(b.iters, TIMED_ITERS);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.sample_size(5)
            .bench_function("f", |b| b.iter(|| ran = true));
        g.bench_with_input(BenchmarkId::new("p", 42), &42, |b, &v| {
            b.iter(|| assert_eq!(v, 42));
        });
        g.finish();
        assert!(ran);
        assert_eq!(BenchmarkId::new("x", 7).to_string(), "x/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
