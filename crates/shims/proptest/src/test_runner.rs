//! Test-runner types: configuration, the deterministic RNG and the error a
//! failing property returns.

use std::fmt;

/// Per-test configuration (`cases` = generated inputs per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure reported by `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xorshift64* generator, seeded from the test name so every
/// run of a given property sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a of the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)` (u64).
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    /// Uniform value in `[lo, hi)` (usize).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = r.u64_in(5..17);
            assert!((5..17).contains(&v));
            let u = r.usize_in(1..2);
            assert_eq!(u, 1);
        }
    }
}
