//! Value-generation strategies: ranges, tuples, `Just`, `any`, `prop_map`
//! and unions (the building blocks `prop_oneof!` and the tests compose).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy marker.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.u64_in(self.start as u64..self.end as u64) as $t
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    // 53 uniform mantissa bits scaled into [start, end).
                    let unit = rng.u64_in(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64;
                    let v = self.start + (self.end - self.start) * unit as $t;
                    // Rounding in the narrower type can land exactly on
                    // `end`; keep the Range contract half-open.
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A boxed generator closure — one alternative of a [`Union`].
pub type UnionOption<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<UnionOption<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V> Union<V> {
    /// Creates a union over the given alternatives.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<UnionOption<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0..self.options.len());
        (self.options[idx])(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (0u64..10, 1usize..5).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..14).contains(&v));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = TestRng::for_test("union");
        let strat = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn collection_vec_respects_length() {
        let mut rng = TestRng::for_test("vec");
        let strat = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }
}
