//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! ranges / tuples / `Just` / `any` as strategies, `prop_map`, and
//! [`collection::vec`]. Values are generated from a deterministic xorshift
//! RNG seeded per test, so failures are reproducible. Shrinking is not
//! implemented — a failing case is reported with its RNG seed instead.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` glob import surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Expands to ordinary `#[test]` functions that run the body over `cases`
/// generated inputs (default 256, overridable with
/// `#![proptest_config(ProptestConfig { cases: N, .. })]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @funcs ($config) $($rest)* }
    };
    (@funcs ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property failed at case {case}/{}: {e}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// `prop_assert!`: like `assert!` but returns a [`test_runner::TestCaseError`] so the
/// runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!`: equality assertion returning a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `prop_oneof!`: picks one of the listed strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                {
                    let s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),+
        ])
    };
}
