//! The paper's §2.2 second motivation: overlapping transfers with compute
//! requires double buffering and fiddly synchronisation under CUDA — this
//! test demonstrates that pattern on the shim (and that the simulator's
//! engines really overlap), which is exactly the coding effort GMAC's
//! rolling-update automates.

use cudart::Cuda;
use hetsim::{
    Args, Category, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
    StreamId, TimePoint,
};
use std::sync::Arc;

const CHUNK: usize = 256 * 1024;
const CHUNKS: usize = 8;

/// A kernel whose virtual duration (~1 ms) dwarfs a chunk upload (~tens of
/// µs), so transfer/compute ordering is unambiguous.
#[derive(Debug)]
struct SpinKernel;

impl Kernel for SpinKernel {
    fn name(&self) -> &str {
        "spin"
    }

    fn execute(
        &self,
        _mem: &mut DeviceMemory,
        _dims: LaunchDims,
        _args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        Ok(KernelProfile::new(1e9, 0.0))
    }
}

#[test]
fn double_buffered_upload_overlaps_cpu_work() {
    let mut p = Platform::desktop_g280();
    let cuda = Cuda::new(DeviceId(0));
    let dst = cuda.malloc(&mut p, (CHUNK * CHUNKS) as u64).unwrap();

    // Produce + upload chunk by chunk, asynchronously: while the DMA moves
    // chunk i, the CPU produces chunk i+1.
    let mut pending = None;
    let data = vec![7u8; CHUNK];
    for i in 0..CHUNKS {
        // "Produce" the chunk on the CPU.
        p.cpu_touch(CHUNK as u64);
        // Wait for the previous chunk's DMA before reusing the buffer
        // (the synchronisation code the paper complains about).
        if let Some(ev) = pending.take() {
            cuda.event_synchronize(&mut p, ev);
        }
        let ev = cuda
            .memcpy_h2d_async(&mut p, dst.add((i * CHUNK) as u64), &data)
            .unwrap();
        pending = Some(ev);
    }
    cuda.event_synchronize(&mut p, pending.unwrap());

    // Snapshot the upload-phase stall before the verification download
    // (which is itself a synchronous Copy charge).
    let upload_stall = p.ledger().get(Category::Copy);
    let produce_time = p.cpu().compute_time(0.0, CHUNK as f64) * CHUNKS as u64;
    let dma_busy = p.device(DeviceId(0)).unwrap().h2d_engine().total_busy();
    let upload_elapsed = p.elapsed();

    // All data arrived.
    let mut out = vec![0u8; CHUNK * CHUNKS];
    cuda.memcpy_d2h(&mut p, &mut out, dst).unwrap();
    assert!(out.iter().all(|&b| b == 7));

    // Overlap really happened: the CPU barely stalled on DMA, and the total
    // upload time is far below the serial sum of produce + transfer.
    assert!(
        upload_stall < dma_busy / 2,
        "most DMA time should hide behind CPU work (stall {upload_stall}, busy {dma_busy})"
    );
    assert!(
        upload_elapsed < produce_time + dma_busy,
        "no overlap happened at all"
    );
}

#[test]
fn synchronous_uploads_do_not_overlap() {
    // The naive version: every chunk waits for its DMA. Total time ≈ serial
    // sum — the baseline double buffering improves upon.
    let mut p = Platform::desktop_g280();
    let cuda = Cuda::new(DeviceId(0));
    let dst = cuda.malloc(&mut p, (CHUNK * CHUNKS) as u64).unwrap();
    let data = vec![7u8; CHUNK];
    let start = p.now();
    for i in 0..CHUNKS {
        p.cpu_touch(CHUNK as u64);
        cuda.memcpy_h2d(&mut p, dst.add((i * CHUNK) as u64), &data)
            .unwrap();
    }
    let produce_time = p.cpu().compute_time(0.0, CHUNK as f64) * CHUNKS as u64;
    let dma_busy = p.device(DeviceId(0)).unwrap().h2d_engine().total_busy();
    let elapsed = p.now().since(start);
    // Serial: elapsed covers both terms (within the malloc epsilon).
    assert!(elapsed >= produce_time + dma_busy - hetsim::Nanos::from_micros(1));
}

#[test]
fn second_chunk_upload_issues_before_first_kernel_completes() {
    // The heart of double buffering: while chunk 1's kernel runs, chunk 2's
    // H2D must already be in flight — the DMA and exec engines are
    // independent timelines, not serialized behind one another.
    let mut p = Platform::desktop_g280();
    p.register_kernel(Arc::new(SpinKernel));
    let cuda = Cuda::new(DeviceId(0));
    let bufs = [
        cuda.malloc(&mut p, CHUNK as u64).unwrap(),
        cuda.malloc(&mut p, CHUNK as u64).unwrap(),
    ];
    let data = vec![7u8; CHUNK];

    // Chunk 1: upload, then launch its (long) kernel.
    let up1 = cuda.memcpy_h2d_async(&mut p, bufs[0], &data).unwrap();
    cuda.event_synchronize(&mut p, up1);
    let k1 = cuda
        .launch(
            &mut p,
            StreamId(0),
            "spin",
            LaunchDims::for_elements(CHUNK as u64, 256),
            &[],
        )
        .unwrap();

    // Chunk 2's H2D is issued immediately — the launch returned without
    // waiting for the kernel.
    let issue = p.now();
    let up2 = cuda.memcpy_h2d_async(&mut p, bufs[1], &data).unwrap();
    assert!(
        issue < k1.0,
        "chunk 2's H2D must be issued while chunk 1's kernel is still running \
         (issued {issue:?}, kernel completes {:?})",
        k1.0
    );
    // With a kernel this long, the upload even *completes* under it: full
    // transfer/compute overlap, not just pipelined issue.
    assert!(
        up2.0 < k1.0,
        "chunk 2's upload should complete under chunk 1's kernel \
         (upload done {:?}, kernel done {:?})",
        up2.0,
        k1.0
    );
    cuda.event_synchronize(&mut p, k1);
    assert!(p.now() >= k1.0);
}

#[test]
fn events_order_correctly_across_streams() {
    let mut p = Platform::desktop_g280();
    let cuda = Cuda::new(DeviceId(0));
    let dst = cuda.malloc(&mut p, 2 * CHUNK as u64).unwrap();
    let data = vec![1u8; CHUNK];
    let e1 = cuda.memcpy_h2d_async(&mut p, dst, &data).unwrap();
    let e2 = cuda
        .memcpy_h2d_async(&mut p, dst.add(CHUNK as u64), &data)
        .unwrap();
    // One H2D engine: the second transfer completes after the first.
    assert!(e2 > e1);
    assert!(e1.0 > TimePoint::ZERO);
    cuda.event_synchronize(&mut p, e2);
    assert!(p.now() >= e2.0);
}
