//! # cudart — a CUDA-runtime-like shim over the simulated platform
//!
//! The paper's baseline programming model (§2.2, Figure 3) is CUDA 2.2:
//! applications explicitly allocate device memory (`cudaMalloc`), move data
//! (`cudaMemcpy`) and launch kernels. This crate reproduces that API surface
//! over [`hetsim`], with CUDA-style error codes, so that:
//!
//! * the **baseline variants** of every workload are written exactly like the
//!   paper's CUDA versions (double pointers, explicit transfers), and
//! * the GMAC runtime's Accelerator Abstraction Layer (paper §4.1) has a
//!   CUDA-shaped interface to build on.
//!
//! ```
//! use cudart::Cuda;
//! use hetsim::{Platform, DeviceId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Platform::desktop_g280();
//! let cuda = Cuda::new(DeviceId(0));
//! let dev_foo = cuda.malloc(&mut p, 4096)?;          // cudaMalloc
//! cuda.memcpy_h2d(&mut p, dev_foo, &[1u8; 4096])?;   // cudaMemcpy(HtoD)
//! let mut back = [0u8; 4096];
//! cuda.memcpy_d2h(&mut p, &mut back, dev_foo)?;      // cudaMemcpy(DtoH)
//! cuda.free(&mut p, dev_foo)?;                       // cudaFree
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use hetsim::{
    CopyMode, DevAddr, DeviceId, KernelArg, LaunchDims, Platform, SimError, StreamId, TimePoint,
};
use std::error::Error;
use std::fmt;

/// CUDA-style error codes (the subset the paper's software stack can hit).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CudaError {
    /// `cudaErrorMemoryAllocation`: device allocation failed.
    MemoryAllocation {
        /// Bytes requested.
        requested: u64,
        /// Bytes free on the device.
        free: u64,
    },
    /// `cudaErrorInvalidDevicePointer`.
    InvalidDevicePointer(u64),
    /// `cudaErrorInvalidValue`: malformed sizes/ranges/arguments.
    InvalidValue(String),
    /// `cudaErrorInvalidDevice`.
    InvalidDevice(usize),
    /// `cudaErrorInvalidResourceHandle`: bad stream.
    InvalidResourceHandle(u32),
    /// `cudaErrorInvalidDeviceFunction`: unknown kernel.
    InvalidDeviceFunction(String),
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::MemoryAllocation { requested, free } => {
                write!(
                    f,
                    "cudaErrorMemoryAllocation: requested {requested} bytes, {free} free"
                )
            }
            CudaError::InvalidDevicePointer(a) => {
                write!(f, "cudaErrorInvalidDevicePointer: {a:#x}")
            }
            CudaError::InvalidValue(msg) => write!(f, "cudaErrorInvalidValue: {msg}"),
            CudaError::InvalidDevice(id) => write!(f, "cudaErrorInvalidDevice: {id}"),
            CudaError::InvalidResourceHandle(s) => {
                write!(f, "cudaErrorInvalidResourceHandle: stream {s}")
            }
            CudaError::InvalidDeviceFunction(name) => {
                write!(f, "cudaErrorInvalidDeviceFunction: {name}")
            }
        }
    }
}

impl Error for CudaError {}

impl From<SimError> for CudaError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::OutOfDeviceMemory { requested, free } => {
                CudaError::MemoryAllocation { requested, free }
            }
            SimError::InvalidDeviceAddress(a) | SimError::NotAnAllocation(a) => {
                CudaError::InvalidDevicePointer(a)
            }
            SimError::OutOfBounds { addr, len } => {
                CudaError::InvalidValue(format!("access at {addr:#x} length {len} out of bounds"))
            }
            SimError::NoSuchDevice(id) => CudaError::InvalidDevice(id),
            SimError::NoSuchStream(s) => CudaError::InvalidResourceHandle(s),
            SimError::UnknownKernel(name) => CudaError::InvalidDeviceFunction(name),
            SimError::BadKernelArgs(msg) => CudaError::InvalidValue(msg),
            SimError::FileNotFound(name) => CudaError::InvalidValue(format!("file {name}")),
            // `SimError` is non-exhaustive; surface anything new verbatim.
            other => CudaError::InvalidValue(other.to_string()),
        }
    }
}

/// Result alias for CUDA-shim operations.
pub type CudaResult<T> = Result<T, CudaError>;

/// A completion marker for asynchronous operations (`cudaEvent_t`-like):
/// holds the virtual instant at which the operation finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event(pub TimePoint);

/// A CUDA-runtime handle bound to one device (the shim's equivalent of the
/// implicit current-device state of the real runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cuda {
    dev: DeviceId,
}

impl Cuda {
    /// Binds a handle to `dev`.
    pub fn new(dev: DeviceId) -> Self {
        Cuda { dev }
    }

    /// The bound device.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// `cudaMalloc`: allocates device memory.
    ///
    /// # Errors
    /// [`CudaError::MemoryAllocation`] when device memory is exhausted.
    pub fn malloc(&self, p: &mut Platform, size: u64) -> CudaResult<DevAddr> {
        Ok(p.dev_alloc(self.dev, size)?)
    }

    /// `cudaFree`: releases device memory.
    ///
    /// # Errors
    /// [`CudaError::InvalidDevicePointer`] for non-allocation addresses.
    pub fn free(&self, p: &mut Platform, addr: DevAddr) -> CudaResult<()> {
        Ok(p.dev_free(self.dev, addr)?)
    }

    /// `cudaMemcpy(..., cudaMemcpyHostToDevice)`: synchronous upload.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds destination ranges.
    pub fn memcpy_h2d(&self, p: &mut Platform, dst: DevAddr, src: &[u8]) -> CudaResult<()> {
        p.copy_h2d(self.dev, dst, src, CopyMode::Sync)?;
        Ok(())
    }

    /// `cudaMemcpy(..., cudaMemcpyDeviceToHost)`: synchronous download.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds source ranges.
    pub fn memcpy_d2h(&self, p: &mut Platform, dst: &mut [u8], src: DevAddr) -> CudaResult<()> {
        p.copy_d2h(self.dev, src, dst, CopyMode::Sync)?;
        Ok(())
    }

    /// `cudaMemcpyAsync` host-to-device: returns an [`Event`] that completes
    /// when the DMA finishes; the host does not block.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds destination ranges.
    pub fn memcpy_h2d_async(
        &self,
        p: &mut Platform,
        dst: DevAddr,
        src: &[u8],
    ) -> CudaResult<Event> {
        Ok(Event(p.copy_h2d(self.dev, dst, src, CopyMode::Async)?))
    }

    /// `cudaMemcpyAsync` device-to-host.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds source ranges.
    pub fn memcpy_d2h_async(
        &self,
        p: &mut Platform,
        dst: &mut [u8],
        src: DevAddr,
    ) -> CudaResult<Event> {
        Ok(Event(p.copy_d2h(self.dev, src, dst, CopyMode::Async)?))
    }

    /// Gathered upload: copies every `(dst, bytes)` segment host-to-device,
    /// merging runs of *contiguous* segments (each starting exactly where
    /// the previous one ended) into single DMA jobs — the bulk-memory
    /// counterpart of the GMAC transfer planner's dirty-range coalescing.
    /// Segments are processed in list order, so the result is byte-for-byte
    /// identical to issuing one `cudaMemcpy` per segment. Returns the number
    /// of DMA jobs issued.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds destination ranges.
    pub fn memcpy_h2d_gather(
        &self,
        p: &mut Platform,
        segments: &[(DevAddr, &[u8])],
    ) -> CudaResult<u64> {
        let mut jobs = 0u64;
        let mut i = 0;
        while i < segments.len() {
            let (start, first) = segments[i];
            // Stage lazily: an un-mergeable segment DMAs straight from the
            // caller's slice with no allocation or copy.
            let mut staged: Option<Vec<u8>> = None;
            let mut run_len = first.len() as u64;
            while let Some(&(next, bytes)) = segments.get(i + 1) {
                if next.0 != start.0 + run_len {
                    break;
                }
                staged
                    .get_or_insert_with(|| first.to_vec())
                    .extend_from_slice(bytes);
                run_len += bytes.len() as u64;
                i += 1;
            }
            self.memcpy_h2d(p, start, staged.as_deref().unwrap_or(first))?;
            jobs += 1;
            i += 1;
        }
        Ok(jobs)
    }

    /// `cudaMemset`: device-side fill.
    ///
    /// # Errors
    /// [`CudaError::InvalidValue`] for out-of-bounds ranges.
    pub fn memset(&self, p: &mut Platform, addr: DevAddr, value: u8, len: u64) -> CudaResult<()> {
        Ok(p.dev_memset(self.dev, addr, value, len)?)
    }

    /// Kernel launch (`kernel<<<grid, block, 0, stream>>>(args)`): enqueues a
    /// registered kernel; the host pays only the launch cost.
    ///
    /// # Errors
    /// Fails for unknown kernels/streams or kernel argument errors.
    pub fn launch(
        &self,
        p: &mut Platform,
        stream: StreamId,
        kernel: &str,
        dims: LaunchDims,
        args: &[KernelArg],
    ) -> CudaResult<Event> {
        Ok(Event(p.launch(self.dev, stream, kernel, dims, args)?))
    }

    /// `cudaStreamCreate`.
    ///
    /// # Errors
    /// [`CudaError::InvalidDevice`] for unknown devices.
    pub fn stream_create(&self, p: &mut Platform) -> CudaResult<StreamId> {
        Ok(p.device_mut(self.dev)?.create_stream())
    }

    /// `cudaStreamSynchronize`: blocks until all work on `stream` completes.
    ///
    /// # Errors
    /// Fails for unknown devices or streams.
    pub fn stream_synchronize(&self, p: &mut Platform, stream: StreamId) -> CudaResult<()> {
        Ok(p.sync_stream(self.dev, stream)?)
    }

    /// `cudaThreadSynchronize` (CUDA 2.x name): blocks until the device is
    /// fully quiescent.
    ///
    /// # Errors
    /// Fails for unknown devices.
    pub fn thread_synchronize(&self, p: &mut Platform) -> CudaResult<()> {
        Ok(p.sync_device(self.dev)?)
    }

    /// `cudaEventSynchronize`: blocks until `event` completes, charging the
    /// wait to the `Copy` category (events in this stack mark transfers).
    pub fn event_synchronize(&self, p: &mut Platform, event: Event) {
        p.wait_for(event.0, hetsim::Category::Copy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::Category;

    const DEV: DeviceId = DeviceId(0);

    #[test]
    fn handles_and_errors_are_send_sync() {
        // Per-thread GMAC sessions (and baseline workloads running beside
        // them) carry `Cuda` handles and surface `CudaError` across thread
        // boundaries.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cuda>();
        assert_send_sync::<CudaError>();
        assert_send_sync::<Event>();
    }

    #[test]
    fn malloc_memcpy_roundtrip_like_figure3() {
        // The explicit-transfer flow of the paper's Figure 3.
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let foo: Vec<u8> = (0..=255).collect();
        let dev_foo = cuda.malloc(&mut p, foo.len() as u64).unwrap();
        cuda.memcpy_h2d(&mut p, dev_foo, &foo).unwrap();
        let mut back = vec![0u8; foo.len()];
        cuda.memcpy_d2h(&mut p, &mut back, dev_foo).unwrap();
        assert_eq!(back, foo);
        cuda.free(&mut p, dev_foo).unwrap();
    }

    #[test]
    fn oom_maps_to_memory_allocation_error() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let err = cuda.malloc(&mut p, 8 << 30).unwrap_err();
        assert!(matches!(err, CudaError::MemoryAllocation { .. }));
        assert!(err.to_string().starts_with("cudaErrorMemoryAllocation"));
    }

    #[test]
    fn bad_pointer_maps_to_invalid_device_pointer() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let err = cuda.free(&mut p, DevAddr(0x1234)).unwrap_err();
        assert!(matches!(err, CudaError::InvalidDevicePointer(0x1234)));
    }

    #[test]
    fn wrong_device_is_invalid_device() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DeviceId(7));
        assert!(matches!(
            cuda.malloc(&mut p, 64),
            Err(CudaError::InvalidDevice(7))
        ));
    }

    #[test]
    fn async_memcpy_returns_event_and_wait_charges_copy() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let d = cuda.malloc(&mut p, 1 << 20).unwrap();
        let ev = cuda
            .memcpy_h2d_async(&mut p, d, &vec![3u8; 1 << 20])
            .unwrap();
        let before = p.ledger().get(Category::Copy);
        cuda.event_synchronize(&mut p, ev);
        assert!(p.ledger().get(Category::Copy) > before);
        assert!(p.now() >= ev.0);
    }

    #[test]
    fn stream_sync_after_launchless_stream_is_noop_in_time() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let s = cuda.stream_create(&mut p).unwrap();
        let t0 = p.now();
        cuda.stream_synchronize(&mut p, s).unwrap();
        // Only the fixed sync-call cost elapses.
        assert_eq!(p.now().since(t0), p.device(DEV).unwrap().spec().sync_cost);
        assert!(matches!(
            cuda.stream_synchronize(&mut p, StreamId(99)),
            Err(CudaError::InvalidResourceHandle(99))
        ));
    }

    #[test]
    fn unknown_kernel_is_invalid_device_function() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let err = cuda
            .launch(&mut p, StreamId(0), "missing", LaunchDims::default(), &[])
            .unwrap_err();
        assert!(matches!(err, CudaError::InvalidDeviceFunction(_)));
    }

    #[test]
    fn gather_merges_contiguous_segments() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let d = cuda.malloc(&mut p, 4096).unwrap();
        // Four contiguous 4-byte segments then a distant one: 2 jobs.
        let a = [1u8; 4];
        let b = [2u8; 4];
        let c = [3u8; 4];
        let e = [4u8; 4];
        let far = [9u8; 4];
        let segments: Vec<(DevAddr, &[u8])> = vec![
            (d, &a),
            (d.add(4), &b),
            (d.add(8), &c),
            (d.add(12), &e),
            (d.add(1024), &far),
        ];
        let before = p.transfers().h2d_count;
        let jobs = cuda.memcpy_h2d_gather(&mut p, &segments).unwrap();
        assert_eq!(jobs, 2);
        assert_eq!(p.transfers().h2d_count - before, 2);
        let mut out = vec![0u8; 16];
        cuda.memcpy_d2h(&mut p, &mut out, d).unwrap();
        assert_eq!(out, [[1u8; 4], [2; 4], [3; 4], [4; 4]].concat());
        let mut far_out = vec![0u8; 4];
        cuda.memcpy_d2h(&mut p, &mut far_out, d.add(1024)).unwrap();
        assert_eq!(far_out, [9u8; 4]);
    }

    #[test]
    fn gather_preserves_list_order_for_overlaps() {
        // Non-contiguous (here: overlapping) segments are not merged, and
        // later segments win exactly as sequential memcpys would.
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let d = cuda.malloc(&mut p, 64).unwrap();
        let first = [1u8; 8];
        let second = [2u8; 8];
        let segments: Vec<(DevAddr, &[u8])> = vec![(d, &first), (d.add(4), &second)];
        let jobs = cuda.memcpy_h2d_gather(&mut p, &segments).unwrap();
        assert_eq!(jobs, 2);
        let mut out = vec![0u8; 12];
        cuda.memcpy_d2h(&mut p, &mut out, d).unwrap();
        assert_eq!(out, [1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn gather_of_nothing_is_free() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        assert_eq!(cuda.memcpy_h2d_gather(&mut p, &[]).unwrap(), 0);
        assert_eq!(p.transfers().h2d_count, 0);
    }

    #[test]
    fn memset_fills_device_memory() {
        let mut p = Platform::desktop_g280();
        let cuda = Cuda::new(DEV);
        let d = cuda.malloc(&mut p, 4096).unwrap();
        cuda.memset(&mut p, d, 0x5A, 4096).unwrap();
        let mut out = vec![0u8; 4096];
        cuda.memcpy_d2h(&mut p, &mut out, d).unwrap();
        assert!(out.iter().all(|&b| b == 0x5A));
    }
}
