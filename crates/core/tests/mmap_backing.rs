//! The memory-backing ablation contract: `GmacConfig::mmap_backing(false)`
//! swaps the real reserve/commit + `mprotect` byte store for the
//! instrumented table-walk frame arena, running the exact same coherence
//! machinery — so the two backends must be **byte-identical** in everything
//! the simulation observes: output digests, virtual times, per-category
//! ledgers, fault counts and transfer traffic, across the full workload
//! suite. Only wall-clock bookkeeping (`tlb_hits`/`tlb_misses`,
//! `obj_lookups`/`obj_memo_hits`, engine wait counters) may differ — the
//! whole point of the mmap backend is to make the hit path *cheaper on the
//! host*, never *different in the simulation*.
//!
//! Also covered: graceful degradation when the reservation fails, the
//! fast-path re-arm on coherence downgrades, zero-fill of fresh and
//! recycled allocations on both backends, and proof that typed reads on the
//! mmap backend bypass the instrumented lookup path entirely.

use gmac::{Gmac, GmacConfig, Protocol};
use hetsim::{Category, DeviceId, Platform};
use workloads::stencil3d::Stencil3d;
use workloads::stream::StreamPipeline;
use workloads::vecadd::VecAdd;
use workloads::{parboil_suite_small, run_variant_with, RunResult, Variant, Workload};

/// The nine standard workloads plus the streaming pipeline.
fn ten_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = parboil_suite_small();
    all.push(Box::new(VecAdd::small()));
    all.push(Box::new(Stencil3d::small()));
    all.push(Box::new(StreamPipeline::small()));
    all
}

fn run(w: &dyn Workload, mmap: bool) -> RunResult {
    let cfg = GmacConfig::default().mmap_backing(mmap);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("workload run")
}

#[test]
fn backends_are_byte_identical_on_all_workloads() {
    for w in ten_workloads() {
        let mmap = run(w.as_ref(), true);
        let arena = run(w.as_ref(), false);
        let name = w.name();
        assert_eq!(mmap.digest, arena.digest, "{name}: digest");
        assert_eq!(mmap.elapsed, arena.elapsed, "{name}: virtual time");
        for cat in Category::ALL {
            assert_eq!(
                mmap.ledger.get(cat),
                arena.ledger.get(cat),
                "{name}: ledger category {cat}"
            );
        }
        let (mc, ac) = (mmap.counters.unwrap(), arena.counters.unwrap());
        assert_eq!(mc.faults_read, ac.faults_read, "{name}: read faults");
        assert_eq!(mc.faults_write, ac.faults_write, "{name}: write faults");
        assert_eq!(mc.blocks_fetched, ac.blocks_fetched, "{name}");
        assert_eq!(mc.blocks_flushed, ac.blocks_flushed, "{name}");
        assert_eq!(mc.bytes_fetched, ac.bytes_fetched, "{name}");
        assert_eq!(mc.bytes_flushed, ac.bytes_flushed, "{name}");
        assert_eq!(mc.eager_evictions, ac.eager_evictions, "{name}");
        assert_eq!(
            mmap.transfers.h2d_bytes, arena.transfers.h2d_bytes,
            "{name}"
        );
        assert_eq!(
            mmap.transfers.d2h_bytes, arena.transfers.d2h_bytes,
            "{name}"
        );
        assert_eq!(
            mmap.transfers.total_jobs(),
            arena.transfers.total_jobs(),
            "{name}: job shape"
        );
    }
}

#[test]
fn impossible_reservation_degrades_to_table_walk() {
    // u64::MAX cannot be chunk-rounded, let alone reserved: the runtime must
    // fall back to the frame arena, report the downgrade, and still work.
    let g = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().mmap_reserve(u64::MAX),
    );
    let r = g.report();
    assert!(!r.mmap_backing, "reservation cannot have succeeded");
    assert!(r.backing_downgraded, "downgrade must be reported");
    assert!(r.to_string().contains("[downgraded: reservation failed]"));

    let s = g.session();
    let v = s.alloc_typed::<u32>(1024).unwrap();
    v.write_slice(&(0..1024).collect::<Vec<u32>>()).unwrap();
    assert_eq!(v.read(513).unwrap(), 513, "fallback backend works");
    v.free().unwrap();
}

#[test]
fn explicit_table_walk_is_not_a_downgrade() {
    let g = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().mmap_backing(false),
    );
    let r = g.report();
    assert!(!r.mmap_backing);
    assert!(!r.backing_downgraded, "opting out is not a failure");
}

/// Regression: the fast path must *re-arm* when the protocol downgrades a
/// block. A write dirties a block (later writes are raw host stores); the
/// release flushes it to ReadOnly; the next write must take a counted fault
/// again on both backends — a stale Dirty mirror would skip it silently.
#[test]
fn downgraded_blocks_fault_again_on_next_access() {
    for mmap in [true, false] {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .mmap_backing(mmap),
        );
        let s = g.session();
        let v = s.alloc_typed::<u32>(4096).unwrap();
        v.write(0, 1).unwrap(); // faults the first block to Dirty
        let after_first = g.counters().faults_write;
        v.write(1, 2).unwrap(); // same Dirty block: no new fault
        assert_eq!(
            g.counters().faults_write,
            after_first,
            "mmap={mmap}: write on a Dirty block must not fault"
        );
        // Release downgrades the dirty block (flush to device, ReadOnly).
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
            .unwrap();
        v.write(2, 3).unwrap(); // downgraded block: must fault again
        assert_eq!(
            g.counters().faults_write,
            after_first + 1,
            "mmap={mmap}: write on a downgraded block must fault"
        );
        assert_eq!(v.read(0).unwrap(), 1, "mmap={mmap}");
        assert_eq!(v.read(1).unwrap(), 2, "mmap={mmap}");
        assert_eq!(v.read(2).unwrap(), 3, "mmap={mmap}");
    }
}

/// Fresh allocations read zero on both backends — including addresses that
/// recycle a freed object's range, where the mmap backend must not leak the
/// previous tenant's bytes (hole-punch quarantine) and the arena backend
/// hands out zeroed frames.
#[test]
fn fresh_and_recycled_allocations_read_zero() {
    for mmap in [true, false] {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default().mmap_backing(mmap),
        );
        let s = g.session();
        let v = s.alloc_typed::<u64>(8192).unwrap();
        assert!(
            v.read_slice().unwrap().iter().all(|&x| x == 0),
            "mmap={mmap}: fresh allocation must read zero"
        );
        v.write_slice(&vec![0xDEAD_BEEF_DEAD_BEEFu64; 8192])
            .unwrap();
        let addr = v.ptr();
        v.free().unwrap();
        // First-fit: the next allocation reuses the same range.
        let w = s.alloc_typed::<u64>(8192).unwrap();
        assert_eq!(w.ptr().addr(), addr.addr(), "first-fit reuses the window");
        assert!(
            w.read_slice().unwrap().iter().all(|&x| x == 0),
            "mmap={mmap}: recycled range must not leak the old bytes"
        );
        w.free().unwrap();
    }
}

/// The tentpole's observable host-side effect: on the mmap backend, typed
/// scalar reads of an accessible block never enter the instrumented runtime
/// — `obj_lookups`/`obj_memo_hits` stay flat over thousands of accesses —
/// while virtual time still advances exactly like the checked path.
#[cfg(target_os = "linux")]
#[test]
fn typed_reads_bypass_the_instrumented_path_on_mmap() {
    let g = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
    assert!(g.report().mmap_backing, "default backend on Linux");
    let s = g.session();
    let v = s.alloc_typed::<u32>(1024).unwrap();
    v.write(0, 7).unwrap(); // fault once: block becomes Dirty
    let warm = g.counters();
    let elapsed_before = g.elapsed();
    let mut acc = 0u64;
    for _ in 0..4096 {
        acc = acc.wrapping_add(v.read(0).unwrap() as u64);
        v.write(0, (acc & 0xFFFF) as u32).unwrap();
    }
    let cold = g.counters();
    assert_eq!(
        (cold.obj_lookups, cold.obj_memo_hits),
        (warm.obj_lookups, warm.obj_memo_hits),
        "fast-path accesses must never resolve the object"
    );
    assert_eq!(
        (cold.tlb_hits, cold.tlb_misses),
        (warm.tlb_hits, warm.tlb_misses),
        "fast-path accesses must never probe the software TLB"
    );
    assert_eq!(cold.faults_read, warm.faults_read);
    assert_eq!(cold.faults_write, warm.faults_write);
    assert!(
        g.elapsed() > elapsed_before,
        "deferred virtual time must still be charged"
    );

    // The same loop on the table-walk backend translates every access.
    let g2 = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().mmap_backing(false),
    );
    let s2 = g2.session();
    let v2 = s2.alloc_typed::<u32>(1024).unwrap();
    v2.write(0, 7).unwrap();
    let warm2 = g2.counters();
    for _ in 0..16 {
        v2.read(0).unwrap();
    }
    let cold2 = g2.counters();
    assert!(
        cold2.tlb_hits + cold2.tlb_misses > warm2.tlb_hits + warm2.tlb_misses,
        "table-walk baseline translates through the instrumented MMU"
    );
}

/// Virtual time for a pure fast-path access loop matches the table-walk
/// backend exactly (the TLS-deferred accumulator settles to the same sum
/// the checked path charges per access).
#[test]
fn access_loop_virtual_time_is_identical_across_backends() {
    let run = |mmap: bool| {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .mmap_backing(mmap),
        );
        let s = g.session();
        let v = s.alloc_typed::<f32>(4096).unwrap();
        for i in 0..4096 {
            v.write(i, i as f32).unwrap();
        }
        let mut sum = 0.0f64;
        for i in 0..4096 {
            sum += v.read(i).unwrap() as f64;
        }
        v.free().unwrap();
        drop(s);
        (sum, g.elapsed(), g.ledger().get(Category::Cpu))
    };
    assert_eq!(run(true), run(false));
}
