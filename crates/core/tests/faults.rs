//! Fault-injection failpoints ([`hetsim::FaultPlan`]), exercised through the
//! full runtime: an injected device-memory or DMA failure must surface as a
//! precise [`SimError::FaultInjected`] diagnostic — naming the op, device and
//! ordinal — and must leave the runtime fully usable afterwards: no poisoned
//! locks, subsequent allocs/calls/syncs succeed, and Drop still drains the
//! background engine.

use gmac::{Gmac, GmacConfig, GmacError, Param, Protocol};
use hetsim::{FaultOp, FaultPlan, LaunchDims, Platform, SimError};
use std::sync::Arc;
use std::time::Duration;

fn nop_gmac(cfg: GmacConfig) -> Gmac {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(gmac::testutil::NopKernel));
    Gmac::new(platform, cfg)
}

fn assert_injected(err: GmacError, op: FaultOp) -> (usize, u64) {
    match err {
        GmacError::Sim(SimError::FaultInjected {
            op: got,
            device,
            nth,
        }) => {
            assert_eq!(got, op, "diagnostic names the failing op");
            (device, nth)
        }
        other => panic!("expected injected {op} fault, got {other:?}"),
    }
}

#[test]
fn dev_alloc_failpoint_fails_the_alloc_and_nothing_else() {
    let g = nop_gmac(GmacConfig::default());
    let s = g.session();
    // A successful alloc first: the failpoint keys on op ordinal, so this
    // also checks the counter starts before arming, not at process start.
    let warm = s.alloc(4096).unwrap();
    s.with_platform(|p| p.arm_faults(FaultPlan::new().fail_nth(FaultOp::DevAlloc, 0)));
    let (device, nth) = assert_injected(s.alloc(4096).unwrap_err(), FaultOp::DevAlloc);
    assert_eq!(device, 0);
    assert_eq!(nth, 0);
    // The refused alloc left no half-created object behind.
    assert_eq!(g.object_count(), 1);
    s.with_platform(|p| p.disarm_faults());
    // Runtime fully usable: fresh alloc, kernel call, sync, data intact.
    let p = s.alloc(4096).unwrap();
    s.store::<u32>(p, 7).unwrap();
    s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap();
    s.sync().unwrap();
    assert_eq!(s.load::<u32>(p).unwrap(), 7);
    s.free(p).unwrap();
    s.free(warm).unwrap();
}

#[test]
fn reserve_failpoint_fails_the_issuing_op_before_any_worker_traffic() {
    // reserve_h2d runs inline on the issuing thread (the worker only
    // commits), so an injected reservation failure is a clean synchronous
    // error from the op that needed the transfer.
    let g = nop_gmac(
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096)
            .async_dma(true),
    );
    let s = g.session();
    let p = s.alloc(64 * 1024).unwrap();
    s.store::<u32>(p, 41).unwrap();
    s.with_platform(|p| p.arm_faults(FaultPlan::new().fail_nth(FaultOp::ReserveH2d, 0)));
    let err = s
        .call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap_err();
    assert_injected(err, FaultOp::ReserveH2d);
    s.with_platform(|p| p.disarm_faults());
    // The failed call charged its release work but launched nothing; the
    // retry goes through and the data is whole.
    s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap();
    s.sync().unwrap();
    assert_eq!(s.load::<u32>(p).unwrap(), 41);
}

#[test]
fn mid_stream_commit_failure_surfaces_at_the_next_join_and_runtime_survives() {
    // The asynchronous path: the worker thread hits the injected commit
    // failure in the background; the error must be stashed and re-raised at
    // the next join — not lost, not panicking the worker — and after
    // disarming, the runtime (same device, same engine) keeps working.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let g = nop_gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .async_dma(true),
        );
        let s = g.session();
        let p = s.alloc(64 * 1024).unwrap();
        s.store_slice::<u8>(p, &[0xCD; 64 * 1024]).unwrap();
        s.with_platform(|p| p.arm_faults(FaultPlan::new().fail_nth(FaultOp::CommitH2d, 0)));
        // The release submits the flush; the worker fails the commit. The
        // error surfaces at whichever join runs first — the launch's own
        // DMA barrier or the explicit sync — exactly once.
        let err = s
            .call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .err()
            .or_else(|| s.sync().err())
            .expect("injected commit failure was swallowed");
        let (device, nth) = assert_injected(err, FaultOp::CommitH2d);
        assert_eq!(device, 0);
        assert_eq!(nth, 0);
        s.with_platform(|p| p.disarm_faults());
        // First-error-at-next-join consumed the fault: the engine and the
        // shard stay live. Re-drive the same object end to end.
        s.store_slice::<u8>(p, &[0xEE; 64 * 1024]).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        s.sync().unwrap();
        assert_eq!(s.load_slice::<u8>(p, 64 * 1024).unwrap(), [0xEE; 64 * 1024]);
        // A second object proves allocation paths weren't poisoned either.
        let q = s.alloc(8 * 1024).unwrap();
        s.store::<u32>(q, 9).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(q)])
            .unwrap();
        s.sync().unwrap();
        assert_eq!(s.load::<u32>(q).unwrap(), 9);
        drop(s);
        drop(g); // Drop drains the worker — must not deadlock or panic.
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(60))
        .expect("Drop wedged after an injected DMA failure");
}

#[test]
fn seeded_plans_inject_identically_across_runs() {
    // A seeded plan is a deterministic function of (seed, op ordinal): two
    // identical runs must fail the exact same ops, so a failure found by a
    // randomized soak reproduces from its seed alone.
    let run = |seed: u64| {
        let g = nop_gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .async_dma(true),
        );
        let s = g.session();
        let p = s.alloc(32 * 1024).unwrap();
        s.with_platform(|pl| {
            pl.arm_faults(FaultPlan::new().fail_seeded(FaultOp::CommitH2d, seed, 20_000))
        });
        let mut trace = Vec::new();
        for round in 0..10u32 {
            s.store::<u32>(p, round).unwrap();
            let outcome = s
                .call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
                .and_then(|()| s.sync());
            match outcome {
                Ok(()) => trace.push(None),
                Err(e) => {
                    let (device, nth) = assert_injected(e, FaultOp::CommitH2d);
                    trace.push(Some((device, nth)));
                }
            }
        }
        trace
    };
    let a = run(0xDECAF);
    let b = run(0xDECAF);
    assert_eq!(a, b, "same seed, same injected faults");
    assert!(
        a.iter().any(Option::is_some),
        "a ~30% rate over 10 rounds should fire at least once"
    );
    let c = run(0xBEEF);
    assert_ne!(a, c, "different seeds explore different schedules");
}
