//! End-to-end tests of the GMAC session API: the full adsmAlloc → CPU init
//! → adsmCall → adsmSync → CPU read cycle with a real kernel, under every
//! coherence protocol.

use gmac::{Gmac, GmacConfig, GmacError, Param, Protocol, SchedPolicy, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
};
use std::sync::Arc;

/// c[i] = a[i] + b[i] — the paper's §5.2 micro-benchmark kernel.
#[derive(Debug)]
struct VecAdd;

impl Kernel for VecAdd {
    fn name(&self) -> &str {
        "vecadd"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(3)?;
        let a = read_f32_slice(mem, args.ptr(0)?, n)?;
        let b = read_f32_slice(mem, args.ptr(1)?, n)?;
        let c: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        write_f32_slice(mem, args.ptr(2)?, &c)?;
        Ok(KernelProfile::new(n as f64, n as f64 * 12.0))
    }
}

fn session(protocol: Protocol) -> Session {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(VecAdd));
    Gmac::new(
        platform,
        GmacConfig::default()
            .protocol(protocol)
            .block_size(64 * 1024),
    )
    .session()
}

const N: usize = 100_000;

#[test]
fn vecadd_cycle_is_correct_under_every_protocol() {
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let bytes = (N * 4) as u64;
        let a = c.alloc(bytes).unwrap();
        let b = c.alloc(bytes).unwrap();
        let out = c.alloc(bytes).unwrap();

        // CPU initialises inputs through the shared pointers (no memcpy!).
        let av: Vec<f32> = (0..N).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..N).map(|i| (2 * i) as f32).collect();
        c.store_slice(a, &av).unwrap();
        c.store_slice(b, &bv).unwrap();

        // adsmCall + adsmSync.
        let params = [
            Param::Shared(a),
            Param::Shared(b),
            Param::Shared(out),
            Param::U64(N as u64),
        ];
        c.call("vecadd", LaunchDims::for_elements(N as u64, 256), &params)
            .unwrap();
        c.sync().unwrap();

        // CPU reads the result through the same pointer.
        let cv = c.load_slice::<f32>(out, N).unwrap();
        for i in (0..N).step_by(7919) {
            assert_eq!(cv[i], (3 * i) as f32, "{protocol} wrong at {i}");
        }
        c.free(a).unwrap();
        c.free(b).unwrap();
        c.free(out).unwrap();
        assert_eq!(c.object_count(), 0, "{protocol}");
    }
}

#[test]
fn iterative_kernel_reuses_device_data_cheaply() {
    // An iterative pattern (like pns/rpes): the CPU only reads a few bytes
    // between kernel calls. Lazy/rolling should transfer almost nothing
    // after the first call; batch moves everything every time.
    let mut transfer_totals = Vec::new();
    for protocol in [Protocol::Batch, Protocol::Lazy, Protocol::Rolling] {
        let c = session(protocol);
        let bytes = (N * 4) as u64;
        let a = c.alloc(bytes).unwrap();
        let b = c.alloc(bytes).unwrap();
        let out = c.alloc(bytes).unwrap();
        c.store_slice(a, &vec![1.0f32; N]).unwrap();
        c.store_slice(b, &vec![2.0f32; N]).unwrap();
        let params = [
            Param::Shared(a),
            Param::Shared(b),
            Param::Shared(out),
            Param::U64(N as u64),
        ];
        for _ in 0..10 {
            c.call("vecadd", LaunchDims::for_elements(N as u64, 256), &params)
                .unwrap();
            c.sync().unwrap();
            // CPU peeks at one element only.
            let v: f32 = c.load(out).unwrap();
            assert_eq!(v, 3.0);
        }
        transfer_totals.push((protocol, c.transfers().total_bytes()));
    }
    let batch = transfer_totals[0].1;
    let lazy = transfer_totals[1].1;
    let rolling = transfer_totals[2].1;
    assert!(
        batch > lazy * 3,
        "batch must move far more data (batch={batch}, lazy={lazy})"
    );
    assert!(
        rolling < lazy,
        "rolling fetches single blocks where lazy fetches objects (rolling={rolling}, lazy={lazy})"
    );
}

#[test]
fn write_annotation_avoids_transfer_back() {
    // Paper §4.3: annotating the kernel's write set lets read-only inputs
    // stay valid on the CPU across calls.
    let c = session(Protocol::Rolling);
    let bytes = (N * 4) as u64;
    let a = c.alloc(bytes).unwrap();
    let b = c.alloc(bytes).unwrap();
    let out = c.alloc(bytes).unwrap();
    c.store_slice(a, &vec![1.0f32; N]).unwrap();
    c.store_slice(b, &vec![2.0f32; N]).unwrap();
    let params = [
        Param::Shared(a),
        Param::Shared(b),
        Param::Shared(out),
        Param::U64(N as u64),
    ];
    c.call_annotated(
        "vecadd",
        LaunchDims::for_elements(N as u64, 256),
        &params,
        Some(&[out]),
    )
    .unwrap();
    c.sync().unwrap();
    let before = c.transfers().d2h_bytes;
    // Reading the *input* costs nothing: it was never invalidated.
    let _: Vec<f32> = c.load_slice(a, N).unwrap();
    assert_eq!(c.transfers().d2h_bytes, before);
    // Reading the output fetches it.
    let _: Vec<f32> = c.load_slice(out, N).unwrap();
    assert!(c.transfers().d2h_bytes > before);
}

#[test]
fn safe_alloc_translates_and_computes() {
    // Multi-GPU platforms expose overlapping device ranges; safe_alloc is
    // the paper's fallback. The kernel still works because the runtime
    // translates parameters.
    let platform = Platform::desktop_multi_gpu(2);
    platform.register_kernel(Arc::new(VecAdd));
    let c = Gmac::new(platform, GmacConfig::default()).session();
    let bytes = (N * 4) as u64;
    let a = c.safe_alloc(bytes).unwrap();
    let b = c.safe_alloc(bytes).unwrap();
    let out = c.safe_alloc(bytes).unwrap();
    // Host pointers differ from device addresses.
    assert_ne!(a.addr().0, c.translate(a).unwrap().0);
    c.store_slice(a, &vec![5.0f32; N]).unwrap();
    c.store_slice(b, &vec![7.0f32; N]).unwrap();
    let params = [
        Param::Shared(a),
        Param::Shared(b),
        Param::Shared(out),
        Param::U64(N as u64),
    ];
    c.call("vecadd", LaunchDims::for_elements(N as u64, 256), &params)
        .unwrap();
    c.sync().unwrap();
    assert_eq!(c.load::<f32>(out).unwrap(), 12.0);
}

#[test]
fn unified_alloc_collides_on_second_gpu_then_safe_alloc_recovers() {
    // Two G280s share the same memory window: the first unified allocation
    // takes the host range, an allocation on the *other* device at the same
    // device address must collide.
    let platform = Platform::desktop_multi_gpu(2);
    platform.register_kernel(Arc::new(VecAdd));
    let c = Gmac::new(platform, GmacConfig::default()).session();
    let _a = c.alloc_on(DeviceId(0), 1 << 20).unwrap();
    let err = c.alloc_on(DeviceId(1), 1 << 20).unwrap_err();
    assert!(matches!(err, GmacError::AddressCollision(_)));
    // safe_alloc works on the second device.
    let b = c.safe_alloc_on(DeviceId(1), 1 << 20).unwrap();
    assert_eq!(c.object_at(b).unwrap().device(), DeviceId(1));
}

#[test]
fn round_robin_spreads_objects() {
    let platform = Platform::desktop_multi_gpu(2);
    let gmac = Gmac::new(platform, GmacConfig::default());
    let c = gmac.session();
    gmac.set_sched_policy(SchedPolicy::RoundRobin);
    let a = c.alloc(4096).unwrap(); // dev 0, unified
    let b = c.safe_alloc(4096).unwrap(); // dev 1 via rotation
    assert_eq!(c.object_at(a).unwrap().device(), DeviceId(0));
    assert_eq!(c.object_at(b).unwrap().device(), DeviceId(1));
    // Mixing them in one kernel call is rejected.
    let err = c
        .call(
            "vecadd",
            LaunchDims::default(),
            &[Param::Shared(a), Param::Shared(b)],
        )
        .unwrap_err();
    assert!(matches!(err, GmacError::MixedDevices));
}

#[test]
fn sync_without_call_is_an_error() {
    let c = session(Protocol::Rolling);
    assert!(matches!(c.sync(), Err(GmacError::NothingToSync)));
    assert!(!c.has_pending_call());
}

#[test]
fn load_store_scalar_roundtrip_with_faults() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(4096).unwrap();
    c.store::<f64>(p, 3.25).unwrap();
    assert_eq!(c.load::<f64>(p).unwrap(), 3.25);
    // The first store faulted (read-only -> dirty).
    assert!(c.counters().faults_write >= 1);
    // Freed pointers are rejected.
    c.free(p).unwrap();
    assert!(matches!(c.load::<f64>(p), Err(GmacError::NotShared(_))));
}

#[test]
fn signal_overhead_is_small_fraction_of_runtime() {
    // Paper Figure 10: signal handling stays below 2% of execution time.
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(VecAdd));
    let c = Gmac::new(platform, GmacConfig::default()).session(); // default 256 KiB blocks
    let n = 1_000_000usize;
    let bytes = (n * 4) as u64;
    let a = c.alloc(bytes).unwrap();
    let b = c.alloc(bytes).unwrap();
    let out = c.alloc(bytes).unwrap();
    c.store_slice(a, &vec![1.0f32; n]).unwrap();
    c.store_slice(b, &vec![2.0f32; n]).unwrap();
    let params = [
        Param::Shared(a),
        Param::Shared(b),
        Param::Shared(out),
        Param::U64(n as u64),
    ];
    c.call("vecadd", LaunchDims::for_elements(n as u64, 256), &params)
        .unwrap();
    c.sync().unwrap();
    let _ = c.load_slice::<f32>(out, n).unwrap();
    let signal = c.ledger().get(hetsim::Category::Signal).as_nanos() as f64;
    let total = c.ledger().total().as_nanos() as f64;
    assert!(signal / total < 0.02, "signal {signal} / total {total}");
}

#[test]
fn ledger_partitions_total_time() {
    // Fig 10 invariant: category totals account for all elapsed time.
    let c = session(Protocol::Rolling);
    let p = c.alloc(1 << 20).unwrap();
    c.store_slice(p, &vec![1.0f32; 1000]).unwrap();
    c.with_platform(|p| p.cpu_touch(1 << 20));
    let params = [
        Param::Shared(p),
        Param::Shared(p),
        Param::Shared(p),
        Param::U64(1000),
    ];
    c.call("vecadd", LaunchDims::for_elements(1000, 256), &params)
        .unwrap();
    c.sync().unwrap();
    let _ = c.load::<f32>(p).unwrap();
    assert_eq!(c.ledger().total(), c.elapsed());
}
