//! Edge cases of the GMAC API surface: degenerate sizes, repeated calls,
//! object lifetime corner cases, and cross-protocol state checks.

use gmac::{BlockState, Gmac, GmacConfig, GmacError, Param, Protocol, Session};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{Args, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult};
use softmmu::PAGE_SIZE;
use std::sync::Arc;

#[derive(Debug)]
struct Inc;

impl Kernel for Inc {
    fn name(&self) -> &str {
        "inc"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x += 1.0;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

fn session(protocol: Protocol) -> Session {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Inc));
    Gmac::new(platform, GmacConfig::default().protocol(protocol)).session()
}

#[test]
fn one_byte_alloc_rounds_to_a_page() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(1).unwrap();
    let obj = c.object_at(p).unwrap();
    assert_eq!(obj.size(), PAGE_SIZE);
    // The whole page is usable.
    c.store::<u8>(p.byte_add(PAGE_SIZE - 1), 0xFF).unwrap();
    assert_eq!(c.load::<u8>(p.byte_add(PAGE_SIZE - 1)).unwrap(), 0xFF);
    // One past is not.
    assert!(c.store::<u8>(p.byte_add(PAGE_SIZE), 1).is_err());
}

#[test]
fn zero_size_alloc_also_rounds_up() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(0).unwrap();
    assert_eq!(c.object_at(p).unwrap().size(), PAGE_SIZE);
    c.free(p).unwrap();
}

#[test]
fn consecutive_calls_without_sync_pipeline_on_the_stream() {
    // Two calls back-to-back: the stream serialises them; one sync joins
    // both, and the data reflects both kernels.
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let n = 1024u64;
        let p = c.alloc(n * 4).unwrap();
        c.store_slice(p, &vec![0.0f32; n as usize]).unwrap();
        let params = [Param::Shared(p), Param::U64(n)];
        c.call("inc", LaunchDims::for_elements(n, 256), &params)
            .unwrap();
        c.call("inc", LaunchDims::for_elements(n, 256), &params)
            .unwrap();
        assert!(c.has_pending_call());
        c.sync().unwrap();
        assert!(!c.has_pending_call());
        let v: f32 = c.load(p).unwrap();
        assert_eq!(v, 2.0, "{protocol}: both increments applied");
        // Second sync has nothing to wait on.
        assert!(matches!(c.sync(), Err(GmacError::NothingToSync)));
    }
}

#[test]
fn double_free_is_reported() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(4096).unwrap();
    c.free(p).unwrap();
    assert!(matches!(c.free(p), Err(GmacError::NotShared(_))));
}

#[test]
fn free_discards_dirty_data_without_flushing() {
    // Freeing a dirty object must not crash the rolling bookkeeping.
    let c = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .rolling_size(2)
            .block_size(4096),
    )
    .session();
    let a = c.alloc(8 * 4096).unwrap();
    let b = c.alloc(8 * 4096).unwrap();
    for i in 0..4u64 {
        c.store::<u8>(a.byte_add(i * 4096), 1).unwrap();
        c.store::<u8>(b.byte_add(i * 4096), 2).unwrap();
    }
    c.free(a).unwrap();
    // The other object still works; the dirty bound still holds.
    c.store::<u8>(b.byte_add(5 * 4096), 3).unwrap();
    assert!(c.with_parts(|_, mgr, protocol| protocol.dirty_blocks(mgr)) <= 2);
}

#[test]
fn alloc_after_free_reuses_device_memory() {
    let c = session(Protocol::Lazy);
    let first = c.alloc(1 << 20).unwrap();
    let addr1 = first.addr();
    c.free(first).unwrap();
    let second = c.alloc(1 << 20).unwrap();
    // First-fit allocator hands back the same window; the unified mapping
    // must have been torn down and re-established cleanly.
    assert_eq!(second.addr(), addr1);
    c.store::<u32>(second, 42).unwrap();
    assert_eq!(c.load::<u32>(second).unwrap(), 42);
}

#[test]
fn load_slice_beyond_object_end_is_rejected() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(4096).unwrap();
    assert!(matches!(
        c.load_slice::<f32>(p, 2000),
        Err(GmacError::OutOfObjectBounds { .. })
    ));
    // Interior pointer with a length crossing the end as well.
    assert!(c.store_slice(p.byte_add(4000), &[0u8; 200]).is_err());
}

#[test]
fn device_memory_exhaustion_is_clean() {
    // With eviction off the device is a hard capacity limit: on a 1 GiB
    // G280 two 400 MiB objects fit, the third fails with a typed OOM.
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(Inc));
    let c = Gmac::new(
        platform,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .evict(false),
    )
    .session();
    let a = c.alloc(400 << 20).unwrap();
    let _b = c.alloc(400 << 20).unwrap();
    let err = c.alloc(400 << 20).unwrap_err();
    assert!(matches!(err, GmacError::DeviceOom { .. }));
    // Freeing recovers the space.
    c.free(a).unwrap();
    assert!(c.alloc(400 << 20).is_ok());
}

#[test]
fn device_pressure_evicts_instead_of_failing() {
    // Same pressure with eviction on (the default): the third allocation
    // succeeds by evicting a cold object back to host, and the evicted
    // data stays fully readable and writable through the host mirror.
    let c = session(Protocol::Rolling);
    let a = c.alloc(400 << 20).unwrap();
    c.store::<u32>(a, 0xA11C_E5ED).unwrap();
    let _b = c.alloc(400 << 20).unwrap();
    let d = c.alloc(400 << 20).unwrap();
    assert_eq!(c.counters().evictions, 1);
    assert_eq!(c.load::<u32>(a).unwrap(), 0xA11C_E5ED);
    c.store::<u32>(d, 7).unwrap();
    assert_eq!(c.load::<u32>(d).unwrap(), 7);
}

#[test]
fn states_after_full_cycle_match_protocol_semantics() {
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let n = 4096u64;
        let p = c.alloc(n).unwrap();
        c.store::<u8>(p, 1).unwrap();
        c.call(
            "inc",
            LaunchDims::for_elements(8, 8),
            &[Param::Shared(p), Param::U64(8)],
        )
        .unwrap();
        c.sync().unwrap();
        let obj = c.object_at(p).unwrap();
        match protocol {
            // Batch fetched everything back at sync: dirty.
            Protocol::Batch => assert_eq!(obj.block(0).state, BlockState::Dirty),
            // Lazy/rolling leave data on the accelerator: invalid.
            _ => assert!(obj.blocks().all(|b| b.state == BlockState::Invalid)),
        }
        // A read faults it back in (except batch, which already has it).
        let _: u8 = c.load(p).unwrap();
        let obj = c.object_at(p).unwrap();
        assert_ne!(obj.block(0).state, BlockState::Invalid, "{protocol}");
    }
}

#[test]
fn scalar_type_matrix_through_shared_memory() {
    let c = session(Protocol::Rolling);
    let p = c.alloc(4096).unwrap();
    c.store::<i8>(p, -5).unwrap();
    assert_eq!(c.load::<i8>(p).unwrap(), -5);
    c.store::<u16>(p.byte_add(2), 0xBEEF).unwrap();
    assert_eq!(c.load::<u16>(p.byte_add(2)).unwrap(), 0xBEEF);
    c.store::<i32>(p.byte_add(4), i32::MIN).unwrap();
    assert_eq!(c.load::<i32>(p.byte_add(4)).unwrap(), i32::MIN);
    c.store::<u64>(p.byte_add(8), u64::MAX).unwrap();
    assert_eq!(c.load::<u64>(p.byte_add(8)).unwrap(), u64::MAX);
    c.store::<f64>(p.byte_add(16), std::f64::consts::PI)
        .unwrap();
    assert_eq!(c.load::<f64>(p.byte_add(16)).unwrap(), std::f64::consts::PI);
}

#[test]
fn many_small_objects_stress_the_registry() {
    let c = session(Protocol::Rolling);
    let ptrs: Vec<_> = (0..200).map(|_| c.alloc(PAGE_SIZE).unwrap()).collect();
    assert_eq!(c.object_count(), 200);
    for (i, p) in ptrs.iter().enumerate() {
        c.store::<u32>(*p, i as u32).unwrap();
    }
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(c.load::<u32>(*p).unwrap(), i as u32);
    }
    // Free every other object and verify the rest still resolve.
    for p in ptrs.iter().step_by(2) {
        c.free(*p).unwrap();
    }
    assert_eq!(c.object_count(), 100);
    for (i, p) in ptrs.iter().enumerate().skip(1).step_by(2) {
        assert_eq!(c.load::<u32>(*p).unwrap(), i as u32);
    }
}
