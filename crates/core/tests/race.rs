//! The coherence race detector, end to end:
//!
//! 1. The ablation contract: `GmacConfig::race_check(true)` on race-free
//!    runs is **byte-identical** to `race_check(false)` — digests, virtual
//!    times, per-category ledgers, fault counts and transfer job shapes —
//!    across the full workload suite. The detector observes; it never
//!    perturbs.
//! 2. Each violation kind detected end to end with precise object+offset
//!    diagnostics, under every protocol, in error and sink mode.
//! 3. Composition with eviction (an object evicted and refetched mid-epoch
//!    neither false-positives nor loses a pending race) and async DMA
//!    (worker landings are runtime traffic, not program accesses).
//! 4. A proptest oracle over random session/kernel interleavings: injected
//!    illegal writes are always caught with the right object and offset;
//!    race-free interleavings are never flagged.
//! 5. A watchdogged multi-session stress run with the detector on, across
//!    all three protocols: zero false positives under real concurrency.

use gmac::{Gmac, GmacConfig, GmacError, Param, Protocol, RaceKind};
use hetsim::{Category, DeviceId, GpuSpec, LaunchDims, Platform, DEFAULT_DEVICE_BASE};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use workloads::stencil3d::Stencil3d;
use workloads::stream::StreamPipeline;
use workloads::vecadd::VecAdd;
use workloads::{parboil_suite_small, run_variant_with, RunResult, Variant, Workload};

fn nop_gmac(cfg: GmacConfig) -> Gmac {
    let platform = Platform::desktop_g280();
    platform.register_kernel(Arc::new(gmac::testutil::NopKernel));
    Gmac::new(platform, cfg)
}

/// A G280-class platform with `mem` bytes of device memory (for eviction
/// pressure) and the nop kernel registered.
fn small_gmac(mem: u64, cfg: GmacConfig) -> Gmac {
    let platform = Platform::builder()
        .clear_devices()
        .add_device(GpuSpec::g280(), mem, DEFAULT_DEVICE_BASE)
        .build();
    platform.register_kernel(Arc::new(gmac::testutil::NopKernel));
    Gmac::new(platform, cfg)
}

fn with_watchdog<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let work = std::thread::spawn(f);
    let deadline = std::time::Instant::now() + limit;
    while !work.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "watchdog: race test exceeded {limit:?} — a session wedged"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    work.join().expect("race test thread panicked")
}

// ----- 1. ablation byte-identity ------------------------------------------

fn ten_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = parboil_suite_small();
    all.push(Box::new(VecAdd::small()));
    all.push(Box::new(Stencil3d::small()));
    all.push(Box::new(StreamPipeline::small()));
    all
}

fn run(w: &dyn Workload, race_check: bool) -> RunResult {
    let cfg = GmacConfig::default().race_check(race_check);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("workload run")
}

#[test]
fn race_check_is_byte_identical_on_all_race_free_workloads() {
    for w in ten_workloads() {
        let off = run(w.as_ref(), false);
        let on = run(w.as_ref(), true);
        let name = w.name();
        assert_eq!(on.digest, off.digest, "{name}: digest");
        assert_eq!(on.elapsed, off.elapsed, "{name}: virtual time");
        for cat in Category::ALL {
            assert_eq!(
                on.ledger.get(cat),
                off.ledger.get(cat),
                "{name}: ledger category {cat}"
            );
        }
        let (onc, offc) = (on.counters.unwrap(), off.counters.unwrap());
        assert_eq!(onc.faults_read, offc.faults_read, "{name}: read faults");
        assert_eq!(onc.faults_write, offc.faults_write, "{name}: write faults");
        assert_eq!(onc.blocks_fetched, offc.blocks_fetched, "{name}");
        assert_eq!(onc.blocks_flushed, offc.blocks_flushed, "{name}");
        assert_eq!(onc.bytes_fetched, offc.bytes_fetched, "{name}");
        assert_eq!(onc.bytes_flushed, offc.bytes_flushed, "{name}");
        assert_eq!(onc.evictions, offc.evictions, "{name}: evictions");
        assert_eq!(on.transfers.h2d_bytes, off.transfers.h2d_bytes, "{name}");
        assert_eq!(on.transfers.d2h_bytes, off.transfers.d2h_bytes, "{name}");
        assert_eq!(
            on.transfers.total_jobs(),
            off.transfers.total_jobs(),
            "{name}: job shape"
        );
    }
}

// ----- 2. each violation kind, precisely diagnosed -------------------------

const BS: u64 = 64 * 1024;

fn race_gmac(protocol: Protocol, report: bool) -> Gmac {
    nop_gmac(
        GmacConfig::default()
            .protocol(protocol)
            .block_size(BS)
            .race_check(true)
            .race_report(report),
    )
}

#[test]
fn cpu_write_mid_flight_is_detected_under_every_protocol() {
    for protocol in Protocol::ALL {
        let g = race_gmac(protocol, false);
        let s = g.session();
        let p = s.alloc(16 * BS).unwrap();
        s.store::<u32>(p, 1).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        // The contract violation: a CPU write to an object a kernel in
        // flight may read. The diagnostic names the object, covers the
        // written byte, and identifies the device.
        let write_off = 2 * BS + 16;
        match s.store::<u32>(p.byte_add(write_off), 7) {
            Err(GmacError::RaceDetected {
                object,
                offset,
                len,
                device,
                kinds,
            }) => {
                assert_eq!(object, p.addr(), "{protocol}: object");
                assert!(
                    offset <= write_off && write_off < offset + len,
                    "{protocol}: [{offset}, {}) must cover byte {write_off}",
                    offset + len
                );
                assert_eq!(device, DeviceId(0), "{protocol}");
                assert!(
                    kinds.contains(&RaceKind::CpuWriteWhileKernelMayRead),
                    "{protocol}: kinds {kinds:?}"
                );
                assert!(
                    !kinds.contains(&RaceKind::CrossSessionWrite),
                    "{protocol}: own-session write is not cross-session"
                );
            }
            other => panic!("{protocol}: expected RaceDetected, got {other:?}"),
        }
        // After the sync boundary the same store is legal again.
        s.sync().unwrap();
        s.store::<u32>(p.byte_add(write_off), 7).unwrap();
        assert_eq!(g.race_stats().violations, 1, "{protocol}");
    }
}

#[test]
fn launch_over_foreign_unsynced_writes_is_detected_and_charges_nothing() {
    for protocol in Protocol::ALL {
        let g = race_gmac(protocol, false);
        let a = g.session();
        let b = g.session();
        let p = a.alloc(4 * BS).unwrap();
        a.store::<u32>(p, 42).unwrap();
        let before = g.elapsed();
        // B launches a kernel over A's never-synchronized CPU writes: the
        // kernel may read bytes A is still entitled to be writing.
        match b.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)]) {
            Err(GmacError::RaceDetected { object, kinds, .. }) => {
                assert_eq!(object, p.addr(), "{protocol}");
                assert!(
                    kinds.contains(&RaceKind::LaunchOverUnsyncedWrites),
                    "{protocol}: kinds {kinds:?}"
                );
                assert!(
                    kinds.contains(&RaceKind::CrossSessionWrite),
                    "{protocol}: the unsynced writer is a different session"
                );
            }
            other => panic!("{protocol}: expected RaceDetected, got {other:?}"),
        }
        assert_eq!(
            g.elapsed(),
            before,
            "{protocol}: a refused launch must charge nothing"
        );
        // A's own launch over its own writes stays legal, and the runtime
        // is fully usable after the refusal.
        a.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        a.sync().unwrap();
        b.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        b.sync().unwrap();
    }
}

#[test]
fn cross_session_write_to_call_referenced_object_is_flagged() {
    let g = race_gmac(Protocol::Rolling, false);
    let a = g.session();
    let b = g.session();
    let p = a.alloc(4 * BS).unwrap();
    a.store::<u32>(p, 1).unwrap();
    a.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap();
    match b.store::<u32>(p.byte_add(BS), 9) {
        Err(GmacError::RaceDetected { kinds, .. }) => {
            assert!(kinds.contains(&RaceKind::CpuWriteWhileKernelMayRead));
            assert!(
                kinds.contains(&RaceKind::CrossSessionWrite),
                "B is not the session that launched: {kinds:?}"
            );
        }
        other => panic!("expected RaceDetected, got {other:?}"),
    }
    a.sync().unwrap();
}

#[test]
fn sink_mode_records_diagnostics_without_erroring() {
    let g = race_gmac(Protocol::Rolling, true);
    let s = g.session();
    let p = s.alloc(4 * BS).unwrap();
    s.store::<u32>(p, 1).unwrap();
    s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap();
    // Same violation as the error-mode test — but the run continues.
    s.store::<u32>(p.byte_add(BS + 4), 7)
        .expect("sink mode never errors");
    s.sync().unwrap();
    let stats = g.race_stats();
    assert_eq!(stats.violations, 1);
    assert!(stats.writes_checked >= 2);
    assert!(stats.launches_checked >= 1);
    let violations = g.race_violations();
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    assert_eq!(v.object, p.addr());
    assert!(v.offset <= BS + 4 && BS + 4 < v.offset + v.len);
    assert!(v.kinds.contains(&RaceKind::CpuWriteWhileKernelMayRead));
    assert_eq!(v.session, s.id(), "diagnostic names the offending session");
    // The report renders the sunk violation.
    let text = g.report().to_string();
    assert!(text.contains("races:"), "{text}");
    assert!(text.contains("cpu-write-while-kernel-may-read"), "{text}");
    // The bytes did land (diagnostic, not transactional).
    assert_eq!(s.load::<u32>(p.byte_add(BS + 4)).unwrap(), 7);
}

// ----- 3. composition: eviction and async DMA ------------------------------

#[test]
fn evicted_and_refetched_object_mid_epoch_is_not_a_false_positive() {
    // Device fits ~2 of the 3 objects: allocating c evicts a mid-epoch,
    // and touching a again refetches it. Eviction's state churn and the
    // refetch DMA are runtime traffic — the detector must stay silent.
    let g = small_gmac(
        40 << 20,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(BS)
            .race_check(true),
    );
    let s = g.session();
    let a = s.alloc(16 << 20).unwrap();
    s.store_slice::<u8>(a, &vec![0xAB; 16 << 20]).unwrap();
    let _b = s.alloc(16 << 20).unwrap();
    let _c = s.alloc(16 << 20).unwrap(); // evicts a (or b)
    assert!(s.counters().evictions >= 1, "pressure must evict");
    // Refetch + write + full call/sync cycle on the evicted object.
    s.store::<u32>(a, 5).unwrap();
    s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(a)])
        .unwrap();
    s.sync().unwrap();
    assert_eq!(s.load::<u32>(a).unwrap(), 5);
    assert_eq!(g.race_stats().violations, 0, "refetch is not an access");
}

#[test]
fn eviction_does_not_lose_a_pending_race() {
    // A's unsynced writes survive the object being evicted: when B then
    // launches over them, the stale-write race must still be caught even
    // though the object was evicted and refetched in between.
    let g = small_gmac(
        40 << 20,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(BS)
            .race_check(true),
    );
    let a = g.session();
    let b = g.session();
    let x = a.alloc(16 << 20).unwrap();
    a.store::<u32>(x, 42).unwrap(); // A's unsynced write
    let _fill1 = a.alloc(16 << 20).unwrap();
    let _fill2 = a.alloc(16 << 20).unwrap(); // evicts x
    assert!(a.counters().evictions >= 1, "pressure must evict");
    match b.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(x)]) {
        Err(GmacError::RaceDetected { object, kinds, .. }) => {
            assert_eq!(object, x.addr());
            assert!(
                kinds.contains(&RaceKind::LaunchOverUnsyncedWrites),
                "{kinds:?}"
            );
        }
        other => panic!("eviction swallowed the race: {other:?}"),
    }
}

#[test]
fn async_dma_composes_with_race_check() {
    // Worker-thread landings are runtime traffic: with the engine on, a
    // race-free flow stays silent and virtual-time identical to inline
    // mode, and an injected race is still caught.
    let run = |async_dma: bool| {
        let g = nop_gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .async_dma(async_dma)
                .race_check(true),
        );
        let s = g.session();
        let p = s.alloc(4 << 20).unwrap();
        s.store_slice::<u8>(p, &vec![0x5A; 4 << 20]).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        assert!(
            matches!(s.store::<u32>(p, 1), Err(GmacError::RaceDetected { .. })),
            "async_dma={async_dma}: injected race must be caught"
        );
        s.sync().unwrap();
        let bytes = s.load_slice::<u8>(p, 4 << 20).unwrap();
        (g.elapsed(), g.race_stats().violations, bytes)
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on, off, "engine on/off must agree byte for byte");
    assert_eq!(on.1, 1);
}

// ----- 4. proptest oracle ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..Default::default() })]
    fn injected_races_are_always_caught_and_race_free_runs_never_flagged(
        proto_pick in 0u8..3,
        block_pow in 12u32..15,
        rounds in proptest::collection::vec((0u64..16, any::<bool>(), any::<bool>()), 1..8),
    ) {
        let protocol = match proto_pick {
            0 => Protocol::Batch,
            1 => Protocol::Lazy,
            _ => Protocol::Rolling,
        };
        let bs = 1u64 << block_pow;
        let g = nop_gmac(
            GmacConfig::default()
                .protocol(protocol)
                .block_size(bs)
                .race_check(true),
        );
        let owner = g.session();
        let other = g.session();
        let p = owner.alloc(16 * bs).unwrap();
        let mut expected = 0u64;
        for &(block, inject, foreign) in &rounds {
            let off = block * bs + 4;
            // Race-free prologue: write before the launch, own session.
            owner.store::<u32>(p.byte_add(off), block as u32).expect("race-free write flagged");
            owner
                .call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
                .expect("race-free launch flagged");
            if inject {
                // The seeded illegal write: mid-flight, from the owning or a
                // foreign session. Must error with the right object+offset.
                let writer = if foreign { &other } else { &owner };
                match writer.store::<u32>(p.byte_add(off), 0xDEAD) {
                    Err(GmacError::RaceDetected { object, offset, len, kinds, .. }) => {
                        prop_assert_eq!(object, p.addr());
                        prop_assert!(
                            offset <= off && off < offset + len,
                            "[{}, {}) misses byte {}", offset, offset + len, off
                        );
                        prop_assert!(kinds.contains(&RaceKind::CpuWriteWhileKernelMayRead));
                        prop_assert_eq!(
                            kinds.contains(&RaceKind::CrossSessionWrite),
                            foreign,
                            "cross-session attribution"
                        );
                    }
                    other => return Err(TestCaseError::fail(format!(
                        "injected race not caught: {other:?}"
                    ))),
                }
                expected += 1;
            }
            owner.sync().expect("sync");
            if inject && foreign {
                // The foreign writer's stamp stays "unsynced" until that
                // session reaches its own release boundary; give it one so
                // the next round's launch is race-free again.
                other
                    .call("nop", LaunchDims::for_elements(1, 1), &[])
                    .expect("epoch-advance launch");
                other.sync().expect("epoch-advance sync");
            }
        }
        prop_assert_eq!(g.race_stats().violations, expected);
    }
}

// ----- 5. watchdogged multi-session stress ----------------------------------

#[test]
fn multi_session_stress_is_false_positive_free_under_every_protocol() {
    for protocol in Protocol::ALL {
        let violations = with_watchdog(Duration::from_secs(120), move || {
            let platform = Platform::desktop_multi_gpu(2);
            platform.register_kernel(Arc::new(gmac::testutil::NopKernel));
            let g = Gmac::new(
                platform,
                GmacConfig::default()
                    .protocol(protocol)
                    .block_size(BS)
                    .race_check(true)
                    .race_report(true), // sink mode: any false positive is recorded, none aborts
            );
            // Acquire/release boundaries are device-wide: a sibling
            // session's sync mid-round would be a *real* data race, not a
            // false positive. Serialize rounds per device so each
            // store→call→sync cycle is race-free, while sessions still
            // contend on the shared shard, manager, and detector state.
            let turnstiles: Arc<Vec<std::sync::Mutex<()>>> =
                Arc::new((0..2).map(|_| std::sync::Mutex::new(())).collect());
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let s = g.session_on(DeviceId(i % 2));
                    let turnstiles = Arc::clone(&turnstiles);
                    std::thread::spawn(move || {
                        let p = s.safe_alloc(4 * BS).unwrap();
                        for round in 0..25u32 {
                            let _turn = turnstiles[i % 2].lock().unwrap();
                            s.store::<u32>(p, round).unwrap();
                            s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
                                .unwrap();
                            s.sync().unwrap();
                            assert_eq!(s.load::<u32>(p).unwrap(), round);
                        }
                        s.free(p).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            g.race_violations()
        });
        assert!(
            violations.is_empty(),
            "{protocol}: race-free stress flagged {violations:?}"
        );
    }
}
