//! The service-layer contract, end to end:
//!
//! 1. With [`GmacConfig::service`] on, [`GmacError::DeviceBusy`] **never**
//!    reaches a client — device contention becomes queueing (the one worker
//!    per device executes jobs serially through its own pinned session).
//! 2. Deficit-weighted fair dequeue starves no priority class, proven under
//!    a watchdogged stress run.
//! 3. Queue overflow rejects deterministically with a machine-readable
//!    [`AdmissionReason::QueueFull`] and a non-zero retry-after hint, and
//!    the queue readmits once drained.
//! 4. The ablation toggle: a serialized single-tenant run is
//!    **byte-identical** — digests, total virtual time, every per-category
//!    ledger entry, fault/transfer counters — across queued mode, inline
//!    mode ([`GmacConfig::service`]`(false)`) and direct (service-less)
//!    execution. The service is wall-clock-only machinery, like
//!    `sharding`/`tlb`/`async_dma`/`mmap_backing` before it.

use gmac::error::AdmissionReason;
use gmac::{Gmac, GmacConfig, GmacError, Priority};
use hetsim::{Category, DeviceId, Nanos, Platform};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use workloads::cp::Cp;
use workloads::stencil3d::Stencil3d;
use workloads::vecadd::VecAdd;
use workloads::Workload;

/// Fails the test hard if `f` has not finished within `limit` — a wedged
/// fair queue or a stuck worker must fail loudly, not hang CI.
fn with_watchdog<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let work = std::thread::spawn(move || {
        let r = f();
        flag.store(true, Ordering::Release);
        r
    });
    let deadline = std::time::Instant::now() + limit;
    while !done.load(Ordering::Acquire) {
        assert!(
            std::time::Instant::now() < deadline,
            "watchdog: service test exceeded {limit:?} — queue or worker wedged"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    work.join().expect("service test thread panicked")
}

fn nop_gmac(cfg: GmacConfig) -> Gmac {
    let g = Gmac::new(Platform::desktop_g280(), cfg);
    g.with_platform(|p| p.register_kernel(Arc::new(gmac::testutil::NopKernel)));
    g
}

/// A gate the overflow tests use to wedge the (single) device worker.
type Gate = Arc<(Mutex<bool>, Condvar)>;

fn gate() -> Gate {
    Arc::new((Mutex::new(false), Condvar::new()))
}

fn wait_gate(g: &Gate) {
    let (m, cv) = &**g;
    let mut open = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    while !*open {
        open = cv
            .wait(open)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn open_gate(g: &Gate) {
    let (m, cv) = &**g;
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
    cv.notify_all();
}

// ---------------------------------------------------------------------------
// 1. DeviceBusy never surfaces with the service on.
// ---------------------------------------------------------------------------

#[test]
fn device_busy_never_reaches_clients_through_the_service() {
    with_watchdog(Duration::from_secs(60), || {
        let g = nop_gmac(GmacConfig::default());
        let svc = g.service();
        // 8 tenants × 24 kernel-calling jobs, all contending for ONE
        // device. Without the service this workload is exactly the
        // DeviceBusy shape (see `shard_stress`); through it, contention
        // must become queueing.
        let clients: Vec<_> = Priority::ALL
            .iter()
            .cycle()
            .take(8)
            .map(|&p| svc.client(p))
            .collect();
        let handles: Vec<_> = clients
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    let tickets: Vec<_> = (0..24)
                        .map(|i| {
                            c.submit(4096, move |s| {
                                let b = s.alloc_typed::<u32>(256)?;
                                b.write(0, i)?;
                                s.call(
                                    "nop",
                                    hetsim::LaunchDims::for_elements(1, 1),
                                    &[gmac::Param::Shared(b.ptr())],
                                )?;
                                s.sync()?;
                                let v = b.read(0)?;
                                b.free()?;
                                Ok(u64::from(v))
                            })
                            .expect("default queue depth absorbs this backlog")
                        })
                        .collect();
                    for (i, t) in tickets.iter().enumerate() {
                        match t.wait() {
                            Ok(v) => assert_eq!(v, i as u64),
                            Err(GmacError::DeviceBusy { .. }) => {
                                panic!("DeviceBusy leaked through the service layer")
                            }
                            Err(other) => panic!("job failed: {other}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = svc.stats();
        assert_eq!(snap.completed(), 8 * 24);
        assert_eq!(snap.rejected(), 0);
        drop(svc);
    });
}

// ---------------------------------------------------------------------------
// 2. Fairness: no priority class starves.
// ---------------------------------------------------------------------------

#[test]
fn no_priority_class_starves_under_contention() {
    with_watchdog(Duration::from_secs(60), || {
        let g = nop_gmac(GmacConfig::default().service_queue_depth(2048));
        let svc = g.service();
        let blocker = svc.client(Priority::Normal);
        let high = svc.client(Priority::High);
        let low = svc.client(Priority::Low);

        // Wedge the single worker so the whole backlog queues up and the
        // DRR ring actually has to arbitrate between the classes.
        let g8 = gate();
        let g8w = Arc::clone(&g8);
        let wedge = blocker
            .submit(1, move |_s| {
                wait_gate(&g8w);
                Ok(0)
            })
            .unwrap();

        const PER_CLASS: usize = 120;
        let mut tickets = vec![wedge];
        for i in 0..PER_CLASS as u64 {
            tickets.push(high.submit(64 * 1024, move |_s| Ok(i)).unwrap());
            tickets.push(low.submit(64 * 1024, move |_s| Ok(i)).unwrap());
        }
        open_gate(&g8);
        for t in &tickets {
            t.wait().unwrap();
        }

        let snap = svc.stats();
        let h = snap.classes[Priority::High.index()];
        let l = snap.classes[Priority::Low.index()];
        assert_eq!(h.completed, PER_CLASS as u64, "high class fully served");
        assert_eq!(l.completed, PER_CLASS as u64, "low class fully served");
        assert_eq!(snap.rejected(), 0);
        assert_eq!(
            h.served_bytes, l.served_bytes,
            "equal per-class byte volume was submitted"
        );
        // The 4× DRR weight must actually bias service order: with both
        // classes backlogged behind the wedge, high-priority jobs cleared
        // the queue sooner on average.
        assert!(
            h.avg_wait_ns() <= l.avg_wait_ns(),
            "high class must not wait longer than low: {} vs {} ns",
            h.avg_wait_ns(),
            l.avg_wait_ns()
        );
        drop(svc);
    });
}

// ---------------------------------------------------------------------------
// 3. Deterministic overflow rejection.
// ---------------------------------------------------------------------------

#[test]
fn queue_overflow_rejects_deterministically_and_readmits() {
    with_watchdog(Duration::from_secs(60), || {
        let g = nop_gmac(GmacConfig::default().service_queue_depth(4));
        let svc = g.service();
        let c = svc.client(Priority::Normal);
        let g8 = gate();
        let g8w = Arc::clone(&g8);
        let mut accepted = vec![c
            .submit(1, move |_s| {
                wait_gate(&g8w);
                Ok(0)
            })
            .unwrap()];
        // Fill until the first rejection; from that point every further
        // submission must ALSO reject with the same queued/capacity shape
        // (the backlog cannot shrink while the worker is wedged).
        let mut first_rejection = None;
        for i in 0..64u64 {
            match c.submit(1, move |_s| Ok(i)) {
                Ok(t) => {
                    assert!(
                        first_rejection.is_none(),
                        "queue readmitted while provably still full"
                    );
                    accepted.push(t);
                }
                Err(e) => {
                    match &e {
                        GmacError::Admission {
                            reason: AdmissionReason::QueueFull { queued, capacity },
                            retry_after,
                        } => {
                            assert_eq!(*capacity, 4);
                            assert_eq!(*queued, 4, "rejection reports a full queue");
                            assert!(retry_after.as_nanos() > 0);
                        }
                        other => panic!("expected Admission(QueueFull), got {other:?}"),
                    }
                    first_rejection.get_or_insert(e);
                }
            }
        }
        first_rejection.expect("a 4-deep queue must reject within 64 submissions");
        assert!(svc.stats().rejected() >= 1);
        assert_eq!(svc.queue_high_water(), 4);

        // Drain and readmit: the rejection is back-pressure, not a wedge.
        open_gate(&g8);
        for t in &accepted {
            t.wait().unwrap();
        }
        let t = c.submit(1, |_s| Ok(7)).unwrap();
        assert_eq!(t.wait().unwrap(), 7);
        drop(svc);
    });
}

// ---------------------------------------------------------------------------
// 4. Ablation: queued / inline / direct are byte-identical.
// ---------------------------------------------------------------------------

/// One serialized single-tenant pass over three real workloads, returning
/// everything the simulation observes.
struct ModeResult {
    digests: Vec<u64>,
    elapsed: Nanos,
    ledger: Vec<(Category, Nanos)>,
    faults: (u64, u64),
    h2d_bytes: u64,
    d2h_bytes: u64,
    jobs: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Jobs flow through queue → placer → device worker.
    Queued,
    /// `GmacConfig::service(false)`: same submit API, inline execution.
    Inline,
    /// No service at all: plain sessions, the pre-service code path.
    Direct,
}

fn run_mode(mode: Mode) -> ModeResult {
    let vecadd = VecAdd::small();
    let cp = Cp::small();
    let stencil = Stencil3d::small();
    let mut platform = Platform::desktop_g280();
    for w in [&vecadd as &dyn Workload, &cp, &stencil] {
        w.register_kernels(&mut platform);
        w.prepare(&mut platform).unwrap();
    }
    let service_on = mode != Mode::Inline;
    let g = Gmac::new(platform, GmacConfig::default().service(service_on));
    let digests = match mode {
        Mode::Direct => {
            let s = g.session_on(DeviceId(0));
            vec![
                vecadd.run_gmac(&s).unwrap(),
                cp.run_gmac(&s).unwrap(),
                stencil.run_gmac(&s).unwrap(),
            ]
        }
        Mode::Queued | Mode::Inline => {
            let svc = g.service();
            assert_eq!(svc.is_queued(), mode == Mode::Queued);
            let client = svc.client(Priority::Normal);
            // Serialized single-tenant: wait for each ticket before the
            // next submit, so ordering matches the direct run exactly.
            let digests = [vecadd.job(), cp.job(), stencil.job()]
                .into_iter()
                .map(|job| job.submit(&client).unwrap().wait().unwrap())
                .collect();
            drop(svc);
            digests
        }
    };
    let counters = g.counters();
    let transfers = g.transfers();
    let platform = g.into_platform();
    let ledger = platform.ledger();
    ModeResult {
        digests,
        elapsed: platform.elapsed(),
        ledger: Category::ALL.iter().map(|&c| (c, ledger.get(c))).collect(),
        faults: (counters.faults_read, counters.faults_write),
        h2d_bytes: transfers.h2d_bytes,
        d2h_bytes: transfers.d2h_bytes,
        jobs: transfers.total_jobs(),
    }
}

#[test]
fn service_modes_are_byte_identical_on_a_serialized_run() {
    let queued = run_mode(Mode::Queued);
    let inline_ = run_mode(Mode::Inline);
    let direct = run_mode(Mode::Direct);
    for (name, other) in [("inline", &inline_), ("direct", &direct)] {
        assert_eq!(queued.digests, other.digests, "queued vs {name}: digests");
        assert_eq!(
            queued.elapsed, other.elapsed,
            "queued vs {name}: total virtual time"
        );
        for (&(cat, a), &(_, b)) in queued.ledger.iter().zip(&other.ledger) {
            assert_eq!(a, b, "queued vs {name}: ledger category {cat}");
        }
        assert_eq!(queued.faults, other.faults, "queued vs {name}: faults");
        assert_eq!(
            queued.h2d_bytes, other.h2d_bytes,
            "queued vs {name}: H2D traffic"
        );
        assert_eq!(
            queued.d2h_bytes, other.d2h_bytes,
            "queued vs {name}: D2H traffic"
        );
        assert_eq!(queued.jobs, other.jobs, "queued vs {name}: DMA job shape");
    }
}

// ---------------------------------------------------------------------------
// 5. A panicking job cannot corrupt the fairness clock.

/// A job that unwinds past its fast-path accesses leaves thread-local
/// deferred CPU charges behind; the worker must settle them before it picks
/// up the next job, or one tenant's time silently bills to another and the
/// fairness accounting drifts. Proven by ablation: a run whose middle job
/// panics after its writes lands on the **same virtual clock** as a run
/// whose middle job does the same writes and returns cleanly.
#[test]
fn panicking_job_settles_deferred_charges_before_the_worker_resumes() {
    let run = |panic_mid: bool| {
        with_watchdog(Duration::from_secs(60), move || {
            let g = nop_gmac(GmacConfig::default());
            let svc = g.service();
            let c = svc.client(Priority::Normal);
            let mid = c
                .submit(4096, move |s| {
                    let b = s.alloc_typed::<u32>(1024)?;
                    for i in 0..1024 {
                        b.write(i, i as u32)?; // fast-path: charges deferred in TLS
                    }
                    if panic_mid {
                        panic!("mid-job crash after fast-path writes");
                    }
                    b.free()?;
                    Ok(0)
                })
                .unwrap();
            let mid_result = mid.wait();
            // The follow-up job's accounting must be identical either way.
            let tail = c
                .submit(4096, |s| {
                    let b = s.alloc_typed::<u32>(256)?;
                    b.write(0, 7)?;
                    s.call(
                        "nop",
                        hetsim::LaunchDims::for_elements(1, 1),
                        &[gmac::Param::Shared(b.ptr())],
                    )?;
                    s.sync()?;
                    let v = b.read(0)?;
                    b.free()?;
                    Ok(u64::from(v))
                })
                .unwrap();
            assert_eq!(tail.wait().unwrap(), 7);
            let snap = svc.stats();
            let class = snap.classes[Priority::Normal.index()];
            (g.elapsed(), mid_result.is_ok(), class.failed)
        })
    };
    let clean = run(false);
    let panicked = run(true);
    assert!(clean.1, "control run's middle job succeeds");
    assert!(!panicked.1, "panicking job fails its ticket");
    assert_eq!(clean.2, 0, "control run records no failure");
    assert_eq!(panicked.2, 1, "panic is booked as a class failure");
    assert_eq!(
        clean.0, panicked.0,
        "the panicking run and the clean run must settle on the same \
         virtual clock — deferred fast-path charges from the unwound job \
         were either lost or double-billed"
    );
}
