//! Device-memory-as-a-cache eviction, end to end:
//!
//! 1. Oversubscribed kernel sweeps complete byte-identical to an
//!    un-oversubscribed run on **all three protocols** — eviction then
//!    re-fetch loses nothing, whichever coherence protocol owns the blocks.
//! 2. The ablation toggle: when capacity suffices, [`GmacConfig::evict`] on
//!    vs. off is **byte-identical** — digests, total virtual time, ledger
//!    totals — because the machinery only charges on the out-of-memory
//!    path (like `sharding`/`tlb`/`async_dma`/`mmap_backing` before it).
//! 3. The no-unpinned-victim invariant under a watchdogged stress run: an
//!    object pinned by a pending call is never evicted, however hard the
//!    allocator squeezes.
//! 4. A property test that an oversubscribed device is *invisible to data*:
//!    random op sequences observe identical bytes and errors on a device
//!    4x too small and on one with room to spare.
//! 5. The PR-5 eviction-mid-write regression replayed with *real* victims:
//!    rolling eager eviction and whole-object device eviction interleave
//!    with a multi-block write, and every byte still lands.

use gmac::{Gmac, GmacConfig, Param, Protocol};
use hetsim::kernel::{read_f32_slice, write_f32_slice};
use hetsim::{
    Args, DeviceMemory, GpuSpec, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
    DEFAULT_DEVICE_BASE,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Inc;

impl Kernel for Inc {
    fn name(&self) -> &str {
        "inc"
    }

    fn execute(
        &self,
        mem: &mut DeviceMemory,
        _dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        let n = args.u64(1)?;
        let mut v = read_f32_slice(mem, args.ptr(0)?, n)?;
        for x in v.iter_mut() {
            *x += 1.0;
        }
        write_f32_slice(mem, args.ptr(0)?, &v)?;
        Ok(KernelProfile::new(n as f64, 8.0 * n as f64))
    }
}

/// A G280-class platform with `mem` bytes of device memory.
fn small_gmac(mem: u64, cfg: GmacConfig) -> Gmac {
    let platform = Platform::builder()
        .clear_devices()
        .add_device(GpuSpec::g280(), mem, DEFAULT_DEVICE_BASE)
        .build();
    platform.register_kernel(Arc::new(Inc));
    Gmac::new(platform, cfg)
}

/// Fails the test hard if `f` has not finished within `limit` — a wedged
/// eviction loop (victim never found, alloc retrying forever) must fail
/// loudly, not hang CI.
fn with_watchdog<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let work = std::thread::spawn(f);
    let deadline = std::time::Instant::now() + limit;
    while !work.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "watchdog: eviction test exceeded {limit:?} — alloc/evict loop wedged"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    work.join().expect("eviction test thread panicked")
}

#[test]
fn refetch_roundtrip_across_protocols() {
    // 6 x 1 MiB objects on a 2 MiB device: every sweep re-homes each object
    // and evicts colder ones. Two increment sweeps must leave every element
    // at seed + 2 on all three protocols.
    const OBJ: u64 = 1 << 20;
    const ELEMS: usize = (OBJ / 4) as usize;
    for protocol in Protocol::ALL {
        let g = small_gmac(2 << 20, GmacConfig::default().protocol(protocol));
        let s = g.session();
        let ptrs: Vec<_> = (0..6)
            .map(|i| {
                let p = s.alloc(OBJ).unwrap();
                let seed: Vec<f32> = (0..ELEMS).map(|e| ((e + i) % 251) as f32).collect();
                s.store_slice(p, &seed).unwrap();
                p
            })
            .collect();
        for _ in 0..2 {
            for &p in &ptrs {
                s.call(
                    "inc",
                    LaunchDims::for_elements(ELEMS as u64, 256),
                    &[Param::Shared(p), Param::U64(ELEMS as u64)],
                )
                .unwrap();
                s.sync().unwrap();
            }
        }
        for (i, &p) in ptrs.iter().enumerate() {
            let back = s.load_slice::<f32>(p, ELEMS).unwrap();
            for (e, v) in back.iter().enumerate() {
                assert_eq!(
                    *v,
                    ((e + i) % 251) as f32 + 2.0,
                    "{protocol}: object {i} elem {e}"
                );
            }
        }
        let c = g.counters();
        assert!(c.evictions > 0, "{protocol}: pressure never exercised");
        assert!(c.refetches > 0, "{protocol}: nothing re-homed");
    }
}

#[test]
fn evict_off_is_byte_identical_when_capacity_suffices() {
    // Same workload, same (roomy) device, eviction on vs. off: identical
    // bytes, identical virtual time, identical ledger — the machinery is
    // free until the device actually runs out.
    let run = |evict: bool| {
        let g = small_gmac(64 << 20, GmacConfig::default().evict(evict));
        let s = g.session();
        let ptrs: Vec<_> = (0..4)
            .map(|i| {
                let p = s.alloc(1 << 20).unwrap();
                let seed: Vec<f32> = (0..1 << 18).map(|e| ((e + i) % 97) as f32).collect();
                s.store_slice(p, &seed).unwrap();
                p
            })
            .collect();
        for &p in &ptrs {
            s.call(
                "inc",
                LaunchDims::for_elements(1 << 18, 256),
                &[Param::Shared(p), Param::U64(1 << 18)],
            )
            .unwrap();
            s.sync().unwrap();
        }
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for &p in &ptrs {
            for v in s.load_slice::<f32>(p, 1 << 18).unwrap() {
                for b in v.to_bits().to_le_bytes() {
                    digest ^= b as u64;
                    digest = digest.wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        assert_eq!(g.counters().evictions, 0, "capacity suffices: no evictions");
        (digest, g.elapsed(), g.ledger().total())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn pinned_objects_are_never_victims_under_stress() {
    with_watchdog(Duration::from_secs(120), || {
        // One hot object with a call pending, plus churn allocations that
        // overflow the device every round: the allocator must evict churn
        // objects, never the call's argument.
        const OBJ: u64 = 1 << 20;
        const ELEMS: u64 = OBJ / 4;
        let g = small_gmac(4 << 20, GmacConfig::default());
        let s = g.session();
        let a = s.alloc(OBJ).unwrap();
        let seed: Vec<f32> = (0..ELEMS as usize).map(|e| (e % 113) as f32).collect();
        s.store_slice(a, &seed).unwrap();
        let rounds = 20u32;
        for round in 0..rounds {
            s.call(
                "inc",
                LaunchDims::for_elements(ELEMS, 256),
                &[Param::Shared(a), Param::U64(ELEMS)],
            )
            .unwrap();
            // With the call still pending, churn past device capacity.
            let churn: Vec<_> = (0..4)
                .map(|_| {
                    let p = s.alloc(OBJ).unwrap();
                    s.store::<u32>(p, round).unwrap();
                    p
                })
                .collect();
            s.sync().unwrap();
            for p in churn {
                assert_eq!(s.load::<u32>(p).unwrap(), round);
                s.free(p).unwrap();
            }
        }
        let back = s.load_slice::<f32>(a, ELEMS as usize).unwrap();
        for (e, v) in back.iter().enumerate() {
            assert_eq!(*v, (e % 113) as f32 + rounds as f32, "elem {e}");
        }
        let c = g.counters();
        assert!(c.evictions > 0, "churn never overflowed the device");
        assert!(
            c.pin_saves > 0,
            "the pinned object was never even considered — pressure too low"
        );
    });
}

#[test]
fn eviction_mid_write_with_real_victims() {
    // The PR-5 regression (rolling eager eviction mid-write) replayed on a
    // device small enough that *whole-object* eviction also interleaves:
    // dirty the tail blocks, let a filler allocation evict the object, keep
    // writing it host-side, then re-home it through a kernel call. Every
    // byte — pre-eviction tail stores, post-eviction payload, untouched
    // zeros — must come back incremented exactly once.
    let g = small_gmac(
        2 << 20,
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096)
            .rolling_size(1),
    );
    let s = g.session();
    let p = s.alloc(6 * 4096).unwrap(); // 6 blocks, 6144 f32s
    let elems_per_block = 4096 / 4;
    // Tail stores: rolling_size(1) eagerly flushes the older one.
    s.store::<f32>(p.byte_add(4 * 4096), 41.0).unwrap();
    s.store::<f32>(p.byte_add(5 * 4096), 42.0).unwrap();
    // A filler the size of the whole device: `p` becomes a real victim.
    let filler = s.alloc(2 << 20).unwrap();
    assert_eq!(g.counters().evictions, 1, "the filler evicted p");
    // Keep writing the evicted object host-side (blocks 0..4).
    let payload: Vec<f32> = (0..4 * elems_per_block).map(|e| (e % 97) as f32).collect();
    s.store_slice(p, &payload).unwrap();
    // Re-home through a kernel call over the full object; the filler is the
    // only other resident object and gets evicted to make room.
    s.call(
        "inc",
        LaunchDims::for_elements(6 * elems_per_block as u64, 256),
        &[Param::Shared(p), Param::U64(6 * elems_per_block as u64)],
    )
    .unwrap();
    s.sync().unwrap();
    let back = s.load_slice::<f32>(p, 6 * elems_per_block).unwrap();
    for (e, v) in back.iter().take(4 * elems_per_block).enumerate() {
        assert_eq!(*v, (e % 97) as f32 + 1.0, "payload elem {e}");
    }
    assert_eq!(back[4 * elems_per_block], 42.0, "pre-eviction tail store");
    assert_eq!(back[5 * elems_per_block], 43.0, "pre-eviction tail store");
    for (e, v) in back.iter().enumerate().skip(4 * elems_per_block + 1) {
        if e == 5 * elems_per_block {
            continue;
        }
        assert_eq!(*v, 1.0, "untouched elem {e} incremented exactly once");
    }
    assert!(g.counters().refetches >= 1, "p was re-homed");
    s.free(filler).unwrap();
    s.free(p).unwrap();
}

// ----- property test: oversubscription is invisible to data -----------------

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
    StoreSlice(usize, u64, u8, u64),
    LoadSlice(usize, u64, u64),
    CallInc(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = 0u64..256 * 1024;
    prop_oneof![
        (4096u64..512 * 1024).prop_map(Op::Alloc),
        (0usize..6).prop_map(Op::FreeNth),
        (0usize..6, off.clone(), any::<u8>(), 1u64..16384)
            .prop_map(|(o, a, v, n)| Op::StoreSlice(o, a, v, n)),
        (0usize..6, off, 1u64..16384).prop_map(|(o, a, n)| Op::LoadSlice(o, a, n)),
        (0usize..6).prop_map(Op::CallInc),
    ]
}

/// Applies one op, folding every observable result (loaded bytes + error
/// discriminants) into a comparable value. Addresses may differ between the
/// two devices (the small one re-homes evicted claims), so observables are
/// data and errors only — never pointers.
fn apply(s: &gmac::Session, live: &mut Vec<gmac::SharedPtr>, op: &Op) -> (u64, Vec<u8>) {
    let mut err_code = 0u64;
    let mut data = Vec::new();
    match *op {
        Op::Alloc(size) => match s.alloc(size) {
            Ok(p) => live.push(p),
            Err(_) => err_code = 1,
        },
        Op::FreeNth(n) => {
            if n < live.len() {
                let p = live.remove(n);
                if s.free(p).is_err() {
                    err_code = 2;
                }
            }
        }
        Op::StoreSlice(n, off, v, len) => {
            if let Some(&p) = live.get(n) {
                if s.store_slice::<u8>(p.byte_add(off), &vec![v; len as usize])
                    .is_err()
                {
                    err_code = 3;
                }
            }
        }
        Op::LoadSlice(n, off, len) => {
            if let Some(&p) = live.get(n) {
                match s.load_slice::<u8>(p.byte_add(off), len as usize) {
                    Ok(bytes) => data = bytes,
                    Err(_) => err_code = 4,
                }
            }
        }
        Op::CallInc(n) => {
            if let Some(&p) = live.get(n) {
                let elems = s.object_at(p).map(|o| o.size() / 4).unwrap_or(0);
                match s
                    .call(
                        "inc",
                        LaunchDims::for_elements(elems, 256),
                        &[Param::Shared(p), Param::U64(elems)],
                    )
                    .and_then(|_| s.sync())
                {
                    Ok(()) => {}
                    Err(_) => err_code = 5,
                }
            }
        }
    }
    (err_code, data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random alloc/store/call/load/free sequences observe identical bytes
    /// and errors on a 2 MiB device (evicting constantly once the working
    /// set exceeds it) and a 64 MiB device (never evicting).
    #[test]
    fn oversubscription_is_invisible_to_data(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let tight = small_gmac(2 << 20, GmacConfig::default());
        let roomy = small_gmac(64 << 20, GmacConfig::default());
        let ts = tight.session();
        let rs = roomy.session();
        let mut tight_live = Vec::new();
        let mut roomy_live = Vec::new();
        for op in &ops {
            let a = apply(&ts, &mut tight_live, op);
            let b = apply(&rs, &mut roomy_live, op);
            prop_assert_eq!(a, b, "divergence on {:?}", op);
        }
        // Final sweep: every surviving object dumps identical bytes.
        prop_assert_eq!(tight_live.len(), roomy_live.len());
        for (&tp, &rp) in tight_live.iter().zip(&roomy_live) {
            let size = ts.object_at(tp).unwrap().size() as usize;
            prop_assert_eq!(
                ts.load_slice::<u8>(tp, size).unwrap(),
                rs.load_slice::<u8>(rp, size).unwrap()
            );
        }
        prop_assert_eq!(roomy.counters().evictions, 0, "the roomy device never evicts");
    }
}
