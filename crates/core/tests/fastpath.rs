//! Access-fast-path regressions: the shard-level single-lookup guarantee of
//! `shared_write`, memo/TLB correctness across mutations, and a property
//! test that `GmacConfig::tlb(false)` (the slow-path ablation) is
//! byte-identical in everything but wall-clock.

use gmac::{Gmac, GmacConfig, Protocol};
use hetsim::Platform;
use proptest::prelude::*;

fn gmac_with(tlb: bool, protocol: Protocol, block: u64) -> Gmac {
    Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default()
            .protocol(protocol)
            .block_size(block)
            .tlb(tlb),
    )
}

#[test]
fn many_block_write_performs_one_object_lookup() {
    // Regression: `shared_write` used to re-`find` the object once per
    // touched block. It must resolve the object exactly once per call —
    // with the memo fast path on *or* off.
    for tlb in [true, false] {
        let g = gmac_with(tlb, Protocol::Rolling, 4096);
        let s = g.session();
        let p = s.alloc(64 * 4096).unwrap(); // 64 blocks
        let before = s.counters();
        s.store_slice::<u8>(p, &vec![7u8; 64 * 4096]).unwrap();
        let after = s.counters();
        let resolutions =
            (after.obj_lookups + after.obj_memo_hits) - (before.obj_lookups + before.obj_memo_hits);
        assert_eq!(
            resolutions, 1,
            "one pointer→object resolution for a 64-block write (tlb={tlb})"
        );
        if !tlb {
            assert_eq!(after.obj_memo_hits, 0, "memo disabled in ablation mode");
        }
        // All 64 first-touch faults are still charged individually.
        assert_eq!(after.faults_write - before.faults_write, 64);
    }
}

#[test]
fn repeated_access_hits_the_shard_memo() {
    let g = gmac_with(true, Protocol::Rolling, 4096);
    let s = g.session();
    let p = s.alloc(8 * 4096).unwrap();
    s.store_slice::<u8>(p, &vec![1u8; 8 * 4096]).unwrap(); // 1 lookup
    let mid = s.counters();
    s.store_slice::<u8>(p, &vec![2u8; 8 * 4096]).unwrap(); // memo hit
    s.load_slice::<u8>(p, 8 * 4096).unwrap(); // memo hits
    let after = s.counters();
    assert_eq!(after.obj_lookups, mid.obj_lookups, "no further searches");
    assert!(after.obj_memo_hits > mid.obj_memo_hits);
}

#[test]
fn memo_invalidated_by_free_and_realloc() {
    // A freed object's memo must not route a reused address range to the
    // stale slab slot.
    let g = gmac_with(true, Protocol::Rolling, 4096);
    let s = g.session();
    let a = s.alloc(4 * 4096).unwrap();
    s.store::<u32>(a, 7).unwrap(); // memo now points at `a`
    s.free(a).unwrap();
    assert!(s.load::<u32>(a).is_err(), "freed pointer rejected");
    // First-fit reuse: a new (smaller) object lands at the same base.
    let b = s.alloc(4096).unwrap();
    assert_eq!(b.addr(), a.addr());
    s.store::<u32>(b, 9).unwrap();
    assert_eq!(s.load::<u32>(b).unwrap(), 9);
    // The old object's tail range must not resolve through a stale memo.
    assert!(s.load::<u32>(a.byte_add(2 * 4096)).is_err());
    s.free(b).unwrap();
}

#[test]
fn eviction_during_write_does_not_strand_bytes() {
    // Rolling with a tiny rolling size: preparing later blocks of a write
    // evicts earlier-dirtied ones mid-call. Every written byte must still
    // reach the device at release time (the snapshot-refresh path in
    // `shared_write`).
    for tlb in [true, false] {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .rolling_size(1)
                .tlb(tlb),
        );
        let s = g.session();
        let p = s.alloc(6 * 4096).unwrap();
        // Pre-dirty blocks 4 and 5 (oldest in the FIFO), then write blocks
        // 0..4; each prepare evicts the oldest dirty block.
        s.store::<u8>(p.byte_add(4 * 4096), 0xA1).unwrap();
        s.store::<u8>(p.byte_add(5 * 4096), 0xA2).unwrap();
        let payload: Vec<u8> = (0..4 * 4096u32).map(|i| (i % 251) as u8).collect();
        s.store_slice::<u8>(p, &payload).unwrap();
        // Force everything to the device, then read it back through fetches.
        s.with_parts(|rt, mgr, proto| {
            proto.release(rt, mgr, hetsim::DeviceId(0), None)?;
            rt.join_dma(hetsim::DeviceId(0))
        })
        .unwrap();
        assert_eq!(
            s.load_slice::<u8>(p, 4 * 4096).unwrap(),
            payload,
            "tlb={tlb}"
        );
        assert_eq!(s.load::<u8>(p.byte_add(4 * 4096)).unwrap(), 0xA1);
        assert_eq!(s.load::<u8>(p.byte_add(5 * 4096)).unwrap(), 0xA2);
    }
}

// ----- property test: tlb(false) ablation is byte-identical ----------------

#[derive(Debug, Clone)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
    Store(usize, u64, u32),
    Load(usize, u64),
    StoreSlice(usize, u64, u8, u64),
    LoadSlice(usize, u64, u64),
    Memset(usize, u64, u8, u64),
    Release,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = 0u64..6 * 4096;
    prop_oneof![
        (1u64..6 * 4096).prop_map(Op::Alloc),
        (0usize..4).prop_map(Op::FreeNth),
        (0usize..4, off.clone(), any::<u32>()).prop_map(|(o, a, v)| Op::Store(o, a, v)),
        (0usize..4, off.clone()).prop_map(|(o, a)| Op::Load(o, a)),
        (0usize..4, off.clone(), any::<u8>(), 1u64..8192)
            .prop_map(|(o, a, v, n)| Op::StoreSlice(o, a, v, n)),
        (0usize..4, off.clone(), 1u64..8192).prop_map(|(o, a, n)| Op::LoadSlice(o, a, n)),
        (0usize..4, off, any::<u8>(), 1u64..8192).prop_map(|(o, a, v, n)| Op::Memset(o, a, v, n)),
        Just(Op::Release),
    ]
}

/// Applies one op, folding every observable result (loaded bytes + error
/// discriminants) into a digest.
fn apply(g: &Gmac, s: &gmac::Session, live: &mut Vec<gmac::SharedPtr>, op: &Op) -> (u64, Vec<u8>) {
    let mut err_code = 0u64;
    let mut data = Vec::new();
    match *op {
        Op::Alloc(size) => match s.alloc(size) {
            Ok(p) => live.push(p),
            Err(_) => err_code = 1,
        },
        Op::FreeNth(n) => {
            if n < live.len() {
                let p = live.remove(n);
                if s.free(p).is_err() {
                    err_code = 2;
                }
            }
        }
        Op::Store(n, off, v) => {
            if let Some(&p) = live.get(n) {
                match s.store::<u32>(p.byte_add(off), v) {
                    Ok(()) => {}
                    Err(_) => err_code = 3,
                }
            }
        }
        Op::Load(n, off) => {
            if let Some(&p) = live.get(n) {
                match s.load::<u32>(p.byte_add(off)) {
                    Ok(v) => data.extend_from_slice(&v.to_le_bytes()),
                    Err(_) => err_code = 4,
                }
            }
        }
        Op::StoreSlice(n, off, v, len) => {
            if let Some(&p) = live.get(n) {
                if s.store_slice::<u8>(p.byte_add(off), &vec![v; len as usize])
                    .is_err()
                {
                    err_code = 5;
                }
            }
        }
        Op::LoadSlice(n, off, len) => {
            if let Some(&p) = live.get(n) {
                match s.load_slice::<u8>(p.byte_add(off), len as usize) {
                    Ok(bytes) => data = bytes,
                    Err(_) => err_code = 6,
                }
            }
        }
        Op::Memset(n, off, v, len) => {
            if let Some(&p) = live.get(n) {
                if s.memset(p.byte_add(off), v, len).is_err() {
                    err_code = 7;
                }
            }
        }
        Op::Release => {
            s.with_parts(|rt, mgr, proto| {
                proto.release(rt, mgr, hetsim::DeviceId(0), None)?;
                rt.join_dma(hetsim::DeviceId(0))
            })
            .unwrap();
        }
    }
    let _ = g;
    (err_code, data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random alloc/protect(release)/access/free sequences: the fast path on
    /// and off produce identical data, errors, fault counts, virtual times
    /// and ledger totals. Protocol releases downgrade page protections, so a
    /// stale TLB entry that survived an mprotect would diverge here.
    #[test]
    fn tlb_ablation_is_byte_identical(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fast = gmac_with(true, Protocol::Rolling, 4096);
        let slow = gmac_with(false, Protocol::Rolling, 4096);
        let fs = fast.session();
        let ss = slow.session();
        let mut fast_live = Vec::new();
        let mut slow_live = Vec::new();
        for op in &ops {
            let a = apply(&fast, &fs, &mut fast_live, op);
            let b = apply(&slow, &ss, &mut slow_live, op);
            prop_assert_eq!(a, b, "divergence on {:?}", op);
        }
        let (fc, sc) = (fast.counters(), slow.counters());
        prop_assert_eq!(fc.faults(), sc.faults());
        prop_assert_eq!(fc.blocks_fetched, sc.blocks_fetched);
        prop_assert_eq!(fc.blocks_flushed, sc.blocks_flushed);
        prop_assert_eq!(fc.bytes_fetched, sc.bytes_fetched);
        prop_assert_eq!(fc.bytes_flushed, sc.bytes_flushed);
        prop_assert_eq!(fast.elapsed(), slow.elapsed(), "virtual time identical");
        prop_assert_eq!(fast.ledger().total(), slow.ledger().total());
    }
}
