//! Property tests for typed `Shared<T>` buffers: random element/slice
//! write-read roundtrips must be exact under **all three coherence
//! protocols** and **both allocation flavors** (`alloc_typed` /
//! `safe_alloc_typed`), with interleaved whole-buffer and sub-range
//! accesses crossing block boundaries.

use gmac::{Gmac, GmacConfig, Protocol, Shared};
use hetsim::Platform;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const LEN: usize = 6000; // 24000 bytes of f32 = several 4 KiB blocks

fn buffer(protocol: Protocol, safe: bool) -> Shared<f32> {
    let session = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().protocol(protocol).block_size(4096),
    )
    .session();
    let buf = if safe {
        session.safe_alloc_typed::<f32>(LEN).unwrap()
    } else {
        session.alloc_typed::<f32>(LEN).unwrap()
    };
    assert_eq!(buf.len(), LEN);
    buf
}

/// One write op against both the buffer and a plain-vector model.
fn apply(buf: &Shared<f32>, model: &mut [f32], start: usize, values: &[f32]) {
    let start = start % LEN;
    let n = values.len().min(LEN - start);
    buf.write_slice_at(start, &values[..n]).unwrap();
    model[start..start + n].copy_from_slice(&values[..n]);
}

fn check_everywhere(buf: &Shared<f32>, model: &[f32], probe: usize) -> Result<(), TestCaseError> {
    // Whole-buffer readback.
    prop_assert_eq!(buf.read_slice().unwrap(), model.to_vec());
    // Element read at a random index.
    let i = probe % LEN;
    prop_assert_eq!(buf.read(i).unwrap(), model[i]);
    // Sub-range crossing the probe point.
    let n = (LEN - i).min(97);
    prop_assert_eq!(buf.read_slice_at(i, n).unwrap(), model[i..i + n].to_vec());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn typed_roundtrip_across_protocols_and_alloc_flavors(
        writes in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(-1000.0f64..1000.0, 1..700)),
            1..8,
        ),
        probe in any::<u64>(),
        seed_scale in -10.0f64..10.0,
    ) {
        for protocol in Protocol::ALL {
            for safe in [false, true] {
                let buf = buffer(protocol, safe);
                let mut model = vec![0.0f32; LEN];
                // Deterministic base fill so zero-initialised frames are not
                // the trivially-correct answer.
                let base: Vec<f32> =
                    (0..LEN).map(|i| (i as f32) * seed_scale as f32).collect();
                buf.write_slice(&base).unwrap();
                model.copy_from_slice(&base);

                for (start, values) in &writes {
                    let values: Vec<f32> = values.iter().map(|&v| v as f32).collect();
                    apply(&buf, &mut model, *start as usize, &values);
                }
                check_everywhere(&buf, &model, probe as usize)?;
            }
        }
    }

    #[test]
    fn typed_single_element_writes_roundtrip(
        ops in proptest::collection::vec((any::<u64>(), -100.0f64..100.0), 1..40),
    ) {
        for protocol in Protocol::ALL {
            let buf = buffer(protocol, false);
            let mut model = vec![0.0f32; LEN];
            for &(i, v) in &ops {
                let i = (i as usize) % LEN;
                buf.write(i, v as f32).unwrap();
                model[i] = v as f32;
                prop_assert_eq!(buf.read(i).unwrap(), model[i]);
            }
            prop_assert_eq!(buf.read_slice().unwrap(), model);
        }
    }
}
