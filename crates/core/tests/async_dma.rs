//! The async-DMA ablation contract: `GmacConfig::async_dma(false)` runs the
//! exact same transfer plans inline, so the two modes must be
//! **byte-identical** in everything the simulation observes — output
//! digests, virtual times, per-category ledgers, fault counts and transfer
//! traffic — across the full workload suite and across randomly generated
//! access sequences. Only the wall-clock bookkeeping counters
//! (`dma_wait_ns`, `jobs_overlapped`) may differ.
//!
//! Also the engine's lifecycle hazards: freeing an object whose flush is
//! still in flight must join (or fail with `ObjectInUse` under a pending
//! call), never use-after-free; and dropping the runtime with a non-empty
//! queue must drain and join the workers, never deadlock.

use gmac::{Gmac, GmacConfig, GmacError, Param, Protocol};
use hetsim::{Category, DeviceId, LaunchDims, Platform};
use proptest::prelude::*;
use workloads::stencil3d::Stencil3d;
use workloads::stream::StreamPipeline;
use workloads::vecadd::VecAdd;
use workloads::{parboil_suite_small, run_variant_with, RunResult, Variant, Workload};

/// The nine standard workloads plus the streaming pipeline the engine was
/// built for.
fn ten_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = parboil_suite_small();
    all.push(Box::new(VecAdd::small()));
    all.push(Box::new(Stencil3d::small()));
    all.push(Box::new(StreamPipeline::small()));
    all
}

fn run(w: &dyn Workload, async_dma: bool) -> RunResult {
    let cfg = GmacConfig::default().async_dma(async_dma);
    run_variant_with(w, Variant::Gmac(Protocol::Rolling), cfg).expect("workload run")
}

#[test]
fn async_modes_are_byte_identical_on_all_workloads() {
    for w in ten_workloads() {
        let on = run(w.as_ref(), true);
        let off = run(w.as_ref(), false);
        let name = w.name();
        assert_eq!(on.digest, off.digest, "{name}: digest");
        assert_eq!(on.elapsed, off.elapsed, "{name}: virtual time");
        for cat in Category::ALL {
            assert_eq!(
                on.ledger.get(cat),
                off.ledger.get(cat),
                "{name}: ledger category {cat}"
            );
        }
        let (onc, offc) = (on.counters.unwrap(), off.counters.unwrap());
        assert_eq!(onc.faults_read, offc.faults_read, "{name}: read faults");
        assert_eq!(onc.faults_write, offc.faults_write, "{name}: write faults");
        assert_eq!(onc.blocks_fetched, offc.blocks_fetched, "{name}");
        assert_eq!(onc.blocks_flushed, offc.blocks_flushed, "{name}");
        assert_eq!(onc.bytes_fetched, offc.bytes_fetched, "{name}");
        assert_eq!(onc.bytes_flushed, offc.bytes_flushed, "{name}");
        assert_eq!(onc.eager_evictions, offc.eager_evictions, "{name}");
        assert_eq!(on.transfers.h2d_bytes, off.transfers.h2d_bytes, "{name}");
        assert_eq!(on.transfers.d2h_bytes, off.transfers.d2h_bytes, "{name}");
        assert_eq!(
            on.transfers.total_jobs(),
            off.transfers.total_jobs(),
            "{name}: job shape"
        );
        // Inline mode never touches the engine bookkeeping.
        assert_eq!(offc.dma_wait_ns, 0, "{name}: no engine waits inline");
        assert_eq!(offc.jobs_overlapped, 0, "{name}: no overlap inline");
    }
}

#[test]
fn streaming_workload_overlaps_jobs_with_the_engine() {
    let on = run(&StreamPipeline::small(), true);
    let c = on.counters.unwrap();
    assert!(
        c.jobs_overlapped > 0,
        "double-buffered streaming must retire jobs between joins (got {})",
        c.jobs_overlapped
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]
    fn random_sequences_identical_across_modes(
        proto_pick in 0u8..3,
        block_pow in 12u32..17,
        ops in proptest::collection::vec((0u64..60, 1u64..4097, 0u64..256), 1..16),
    ) {
        let protocol = match proto_pick {
            0 => Protocol::Batch,
            1 => Protocol::Lazy,
            _ => Protocol::Rolling,
        };
        const SIZE: u64 = 64 * 1024;
        let run = |async_dma: bool| -> (u64, hetsim::Nanos, u64, u64, u64) {
            let cfg = GmacConfig::default()
                .protocol(protocol)
                .block_size(1 << block_pow)
                .async_dma(async_dma);
            let g = Gmac::new(Platform::desktop_g280(), cfg);
            let s = g.session();
            let p = s.alloc(SIZE).expect("alloc");
            for &(off_kib, len, value) in &ops {
                let offset = off_kib * 1024;
                let len = len.min(SIZE - offset) as usize;
                s.store_slice::<u8>(p.byte_add(offset), &vec![value as u8; len])
                    .expect("store");
            }
            // Flush to the device (queues engine jobs in async mode), then
            // read everything back through the fault path.
            s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
                .expect("release");
            let bytes = s.load_slice::<u8>(p, SIZE as usize).expect("load");
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            for b in bytes {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
            let r = g.report();
            let c = r.counters;
            (digest, r.elapsed, c.faults_read + c.faults_write, c.bytes_flushed, c.bytes_fetched)
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on, off);
    }
}

#[test]
fn free_while_a_flush_is_in_flight_joins_and_succeeds() {
    // Rolling + small blocks: the write eagerly queues flush jobs on the
    // engine; the free must join the object's jobs before unmapping so no
    // worker lands bytes into a recycled device range.
    let g = Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default()
            .protocol(Protocol::Rolling)
            .block_size(4096),
    );
    let s = g.session();
    let p = s.alloc(4 << 20).unwrap();
    s.store_slice::<u8>(p, &vec![0xA5; 4 << 20]).unwrap();
    s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
        .unwrap();
    s.free(p).unwrap();
    // The device range is immediately reusable: a fresh object over the
    // same memory round-trips its own bytes.
    let q = s.alloc(4 << 20).unwrap();
    s.store_slice::<u8>(q, &vec![0x3C; 4 << 20]).unwrap();
    s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
        .unwrap();
    let back = s.load_slice::<u8>(q, 4 << 20).unwrap();
    assert!(back.iter().all(|&b| b == 0x3C), "recycled range corrupted");
}

#[test]
fn free_under_a_pending_call_is_object_in_use() {
    let g = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
    g.with_platform(|p| p.register_kernel(std::sync::Arc::new(gmac::testutil::NopKernel)));
    let s = g.session();
    let p = s.alloc(64 * 1024).unwrap();
    s.store_slice::<u8>(p, &[1u8; 1024]).unwrap();
    s.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
        .unwrap();
    // In flight: never a use-after-free, always a clean error.
    assert!(matches!(s.free(p), Err(GmacError::ObjectInUse { .. })));
    s.sync().unwrap();
    s.free(p).unwrap();
}

#[test]
fn dropping_gmac_with_queued_jobs_drains_and_never_deadlocks() {
    // Watchdog pattern: the whole lifecycle runs on a helper thread; if
    // engine shutdown deadlocks (worker waiting on a notify that never
    // comes, or Drop joining a parked worker) the recv below times out
    // instead of hanging the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096),
        );
        let s = g.session();
        let p = s.alloc(8 << 20).unwrap();
        s.store_slice::<u8>(p, &vec![7u8; 8 << 20]).unwrap();
        // Queue a burst of flush jobs and drop everything immediately:
        // session, shards, then the engine with whatever is still queued.
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, DeviceId(0), None))
            .unwrap();
        drop(s);
        drop(g);
        tx.send(()).unwrap();
    });
    rx.recv_timeout(std::time::Duration::from_secs(60))
        .expect("engine shutdown deadlocked");
}
