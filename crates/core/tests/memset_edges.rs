//! Edge cases of the §4.4 `memset` interposition: partial-dirty-block
//! flush-before-fill, unaligned offsets and lengths, and fills spanning the
//! short tail block of an object.

use gmac::{Gmac, GmacConfig, Protocol, Session};
use hetsim::Platform;

const BLOCK: u64 = 16 * 1024;

fn session(protocol: Protocol) -> Session {
    Gmac::new(
        Platform::desktop_g280(),
        GmacConfig::default().protocol(protocol).block_size(BLOCK),
    )
    .session()
}

#[test]
fn partial_dirty_block_is_flushed_before_fill() {
    // Dirty bytes of a block that the fill only partially covers must
    // survive: the protocol flushes the block to the device before the
    // device-side fill lands, and a later read merges both.
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let p = c.alloc(4 * BLOCK).unwrap();
        // Dirty the whole second block.
        c.store_slice::<u8>(p.byte_add(BLOCK), &vec![0xAA; BLOCK as usize])
            .unwrap();
        // Fill only the middle of that block.
        c.memset(p.byte_add(BLOCK + 1000), 0x55, 2000).unwrap();
        let out = c
            .load_slice::<u8>(p.byte_add(BLOCK), BLOCK as usize)
            .unwrap();
        assert!(
            out[..1000].iter().all(|&b| b == 0xAA),
            "{protocol}: prefix kept"
        );
        assert!(
            out[1000..3000].iter().all(|&b| b == 0x55),
            "{protocol}: fill landed"
        );
        assert!(
            out[3000..].iter().all(|&b| b == 0xAA),
            "{protocol}: suffix kept"
        );
    }
}

#[test]
fn unaligned_offset_and_len_spanning_block_boundary() {
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let p = c.alloc(4 * BLOCK).unwrap();
        c.store_slice::<u8>(p, &vec![0x11; (4 * BLOCK) as usize])
            .unwrap();
        // Straddles the boundary between blocks 0 and 1 at odd offsets.
        let off = BLOCK - 333;
        let len = 777;
        c.memset(p.byte_add(off), 0x99, len).unwrap();
        let out = c.load_slice::<u8>(p, (4 * BLOCK) as usize).unwrap();
        let (off, len) = (off as usize, len as usize);
        assert!(
            out[..off].iter().all(|&b| b == 0x11),
            "{protocol}: before fill"
        );
        assert!(
            out[off..off + len].iter().all(|&b| b == 0x99),
            "{protocol}: fill"
        );
        assert!(
            out[off + len..].iter().all(|&b| b == 0x11),
            "{protocol}: after fill"
        );
    }
}

#[test]
fn fill_spanning_object_tail() {
    // Page-sized allocations keep the requested size, so a 2.5-block object
    // has a short tail block; a fill running to the very end must cover it.
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let size = 2 * BLOCK + 8192; // page-multiple, short third block
        let p = c.alloc(size).unwrap();
        c.store_slice::<u8>(p, &vec![0x22; size as usize]).unwrap();
        c.memset(p.byte_add(BLOCK + 5), 0x77, size - BLOCK - 5)
            .unwrap();
        let out = c.load_slice::<u8>(p, size as usize).unwrap();
        let start = (BLOCK + 5) as usize;
        assert!(out[..start].iter().all(|&b| b == 0x22), "{protocol}");
        assert!(
            out[start..].iter().all(|&b| b == 0x77),
            "{protocol}: tail filled"
        );
    }
}

#[test]
fn fill_past_object_end_rejected_without_side_effects() {
    for protocol in Protocol::ALL {
        let c = session(protocol);
        let p = c.alloc(BLOCK).unwrap();
        c.store_slice::<u8>(p, &vec![0x33; BLOCK as usize]).unwrap();
        assert!(c.memset(p.byte_add(10), 0xFF, BLOCK).is_err(), "{protocol}");
        let out = c.load_slice::<u8>(p, BLOCK as usize).unwrap();
        assert!(
            out.iter().all(|&b| b == 0x33),
            "{protocol}: contents untouched"
        );
    }
}

#[test]
fn whole_object_fill_after_kernel_style_invalidation() {
    // memset over fully-invalid blocks must not fetch anything: the fill is
    // device-side and the blocks just flip to invalid.
    let c = session(Protocol::Rolling);
    let p = c.alloc(4 * BLOCK).unwrap();
    c.store_slice::<u8>(p, &vec![1u8; (4 * BLOCK) as usize])
        .unwrap();
    c.with_parts(|rt, mgr, proto| proto.release(rt, mgr, hetsim::DeviceId(0), None))
        .unwrap();
    let before = c.transfers().d2h_bytes;
    c.memset(p, 0x42, 4 * BLOCK).unwrap();
    assert_eq!(
        c.transfers().d2h_bytes,
        before,
        "no fetch for a full overwrite"
    );
    let out = c.load_slice::<u8>(p, (4 * BLOCK) as usize).unwrap();
    assert!(out.iter().all(|&b| b == 0x42));
}
