//! Test harness utilities shared by the protocol unit tests and the
//! benchmark crate. Not part of the public API.
#![doc(hidden)]
#![allow(missing_docs)]

use crate::config::{GmacConfig, Protocol};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::{make, CoherenceProtocol};
use crate::runtime::Runtime;
use hetsim::{
    Args, DeviceId, DeviceMemory, Kernel, KernelProfile, LaunchDims, Platform, SimResult,
};
use softmmu::{Protection, VAddr};

/// A kernel that does nothing (pending-call and scheduling tests).
#[derive(Debug)]
pub struct NopKernel;

impl Kernel for NopKernel {
    fn name(&self) -> &str {
        "nop"
    }

    fn execute(
        &self,
        _mem: &mut DeviceMemory,
        _dims: LaunchDims,
        _args: Args<'_>,
    ) -> SimResult<KernelProfile> {
        Ok(KernelProfile::new(1.0, 0.0))
    }
}

/// Builds a runtime + manager + protocol with one shared object per entry of
/// `sizes` (bytes, page-multiples), mimicking what `Context::alloc` does.
pub fn harness(
    protocol: Protocol,
    sizes: &[u64],
) -> (Runtime, Manager, Box<dyn CoherenceProtocol>) {
    harness_with_config(GmacConfig::default().protocol(protocol), sizes)
}

/// Like [`harness`] with full configuration control.
pub fn harness_with_config(
    config: GmacConfig,
    sizes: &[u64],
) -> (Runtime, Manager, Box<dyn CoherenceProtocol>) {
    let platform = Platform::desktop_g280();
    let mut rt = Runtime::new(platform, config.clone());
    let mut mgr = Manager::new(config.lookup);
    let mut proto = make(config.protocol);
    for &size in sizes {
        alloc_object(&mut rt, &mut mgr, proto.as_mut(), DeviceId(0), size);
    }
    (rt, mgr, proto)
}

/// Allocates one shared object the way `Context::alloc` does (device memory,
/// mirrored host mapping at the same address, registration, protocol hook).
pub fn alloc_object(
    rt: &mut Runtime,
    mgr: &mut Manager,
    proto: &mut dyn CoherenceProtocol,
    dev: DeviceId,
    size: u64,
) -> VAddr {
    let size = VAddr(size).page_up().0.max(softmmu::PAGE_SIZE);
    let dev_addr = rt.platform().dev_alloc(dev, size).expect("device alloc");
    let addr = VAddr(dev_addr.0);
    let initial = proto.initial_state();
    let region = rt
        .vm
        .map_fixed(addr, size, Protection::None)
        .expect("host mapping");
    let block_size = proto.block_size_for(rt.config(), size);
    let id = mgr.next_id();
    let obj = SharedObject::new(id, addr, size, dev, dev_addr, region, block_size, initial);
    // Initial protection mirrors the initial state.
    rt.vm
        .protect(addr, size, initial.protection())
        .expect("initial protection");
    mgr.insert(obj);
    proto.on_alloc(rt, mgr, addr).expect("on_alloc");
    addr
}
