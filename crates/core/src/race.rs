//! Opt-in coherence race detector (ROADMAP item 4; Butelle & Coti,
//! arXiv:1101.4193 build the same idea directly on a coherent-DSM model).
//!
//! The paper's consistency model (§3) forbids the CPU from updating shared
//! data while an accelerator kernel that may read it is in flight, and makes
//! `adsmCall`/`adsmSync` the only acquire/release points. Nothing in the
//! runtime *enforces* that contract — a misuse silently corrupts results.
//! With [`crate::GmacConfig::race_check`] enabled the runtime tracks
//! per-block **vector clocks** and reports violations with precise
//! object+offset+epoch diagnostics.
//!
//! # The clock model
//!
//! The vector clock has one **CPU epoch per session** plus one **kernel
//! epoch per device**:
//!
//! * a session's CPU epoch advances when it *releases* its writes — at a
//!   successful `adsmCall` (the protocol flushes dirty data before launch)
//!   and at `adsmSync` (the session rejoins the CPU timeline);
//! * a device's kernel epoch advances at every launch.
//!
//! Every CPU write to a shared object stamps the covered blocks with the
//! writing session's `(session, epoch)` pair — one entry per session, so a
//! foreign session's stamp is never clobbered by a later local write. A
//! stamp is **unsynced** while its epoch still equals the writer's current
//! epoch: the writer has not passed a release point since the write.
//!
//! # The three violation kinds
//!
//! * [`RaceKind::CpuWriteWhileKernelMayRead`] — a CPU write lands on an
//!   object referenced by a call still in flight on its home device.
//! * [`RaceKind::LaunchOverUnsyncedWrites`] — a launch references an object
//!   carrying another session's unsynced stamp: the kernel may read bytes
//!   whose writer never released them.
//! * [`RaceKind::CrossSessionWrite`] — the offending write came from a
//!   session other than the one that owns the in-flight call (reported in
//!   addition to one of the kinds above).
//!
//! # What is *not* an access
//!
//! Only program-initiated writes are stamped and checked: the scalar/slice
//! store paths, bulk ops and I/O interposition. Runtime traffic — protocol
//! fetches, DMA worker landings, eviction write-backs and re-fetches — moves
//! the same bytes but represents the *runtime's own* coherence actions, so
//! it is deliberately invisible to the detector.
//!
//! # Ablation discipline
//!
//! The detector makes **no virtual-time charges**: with `race_check` on, a
//! race-free run's digests, elapsed time and per-category ledgers are
//! byte-identical to the same run with it off. The only cost is wall-clock
//! (one leaf mutex + hash updates per checked write, measured in
//! `results/BENCH_race.json`).

use crate::session::SessionId;
use hetsim::DeviceId;
use softmmu::VAddr;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Sentinel for "no session identity known on this thread".
const UNKNOWN_SESSION: u64 = u64::MAX;

/// Cap on violations retained by the sink in report mode (detections beyond
/// the cap are still *counted*, just not stored).
const SINK_CAP: usize = 64;

thread_local! {
    /// Sticky attribution: the last session that entered the runtime on this
    /// thread. `Shared<T>` handles carry no session back-reference, so their
    /// slow-path accesses inherit the thread's last session — exact for the
    /// intended one-session-per-thread usage (§3.2), and a documented
    /// approximation when handles migrate across threads.
    static CURRENT_SESSION: Cell<u64> = const { Cell::new(UNKNOWN_SESSION) };
}

/// Records the session entering the runtime on this thread (see
/// [`CURRENT_SESSION`]). Called from `Session` entry points only when race
/// checking is active, so the disabled mode pays nothing.
pub(crate) fn set_current_session(id: SessionId) {
    let _ = CURRENT_SESSION.try_with(|c| c.set(id.0));
}

fn current_session() -> u64 {
    CURRENT_SESSION
        .try_with(Cell::get)
        .unwrap_or(UNKNOWN_SESSION)
}

/// The kind of consistency-contract violation detected (a single detection
/// may carry several kinds, e.g. a foreign write to an in-flight object is
/// both [`Self::CpuWriteWhileKernelMayRead`] and [`Self::CrossSessionWrite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RaceKind {
    /// A CPU write landed on an object referenced by an un-synced call.
    CpuWriteWhileKernelMayRead,
    /// A launch referenced an object carrying a foreign session's unsynced
    /// write stamp.
    LaunchOverUnsyncedWrites,
    /// The offending write came from a session that does not own the call.
    CrossSessionWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::CpuWriteWhileKernelMayRead => "cpu-write-while-kernel-may-read",
            RaceKind::LaunchOverUnsyncedWrites => "launch-over-unsynced-writes",
            RaceKind::CrossSessionWrite => "cross-session-write",
        };
        f.write_str(s)
    }
}

/// One detected violation, with the paper-level diagnostics a user needs to
/// find the offending access: which object, which byte range, which device's
/// call was endangered, and the epochs involved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RaceViolation {
    /// Violation kinds (non-empty; sorted).
    pub kinds: Vec<RaceKind>,
    /// Start address of the shared object involved.
    pub object: VAddr,
    /// Byte offset of the offending range within the object.
    pub offset: u64,
    /// Length of the offending range in bytes.
    pub len: u64,
    /// The accelerator whose in-flight or about-to-launch call is involved.
    pub device: DeviceId,
    /// The session whose write or launch triggered the detection.
    pub session: SessionId,
    /// `session`'s CPU epoch at detection time.
    pub session_epoch: u64,
    /// `device`'s kernel epoch at detection time.
    pub kernel_epoch: u64,
    /// For launch-over-unsynced-writes: the foreign writer and the epoch its
    /// stamp was made in.
    pub unsynced_writer: Option<(SessionId, u64)>,
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race [")?;
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(
            f,
            "] object {:#x} bytes [{}, {}) on {}: {} at cpu epoch {}, kernel epoch {}",
            self.object.0,
            self.offset,
            self.offset + self.len,
            self.device,
            self.session,
            self.session_epoch,
            self.kernel_epoch
        )?;
        if let Some((writer, epoch)) = self.unsynced_writer {
            write!(f, "; unsynced write by {writer} at epoch {epoch}")?;
        }
        Ok(())
    }
}

impl RaceViolation {
    /// Converts the violation into the machine-readable error surfaced in
    /// error mode.
    pub(crate) fn into_error(self) -> crate::GmacError {
        crate::GmacError::RaceDetected {
            object: self.object,
            offset: self.offset,
            len: self.len,
            device: self.device,
            kinds: self.kinds,
        }
    }
}

/// Detector counters (exposed through [`crate::Report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Program write accesses stamped and checked.
    pub writes_checked: u64,
    /// Kernel launches checked against pending stamps.
    pub launches_checked: u64,
    /// Total violations detected (error mode counts the ones it raised).
    pub violations: u64,
}

/// A per-session write stamp on one block.
#[derive(Debug, Clone, Copy)]
struct Stamp {
    session: u64,
    epoch: u64,
}

/// Per-object stamp table: one `Vec<Stamp>` per block (one entry per
/// session, updated in place).
#[derive(Debug)]
struct ObjRecords {
    block_size: u64,
    blocks: Vec<Vec<Stamp>>,
}

/// A call in flight on one device.
#[derive(Debug)]
struct InFlight {
    launcher: u64,
    /// Start addresses of the referenced objects.
    objects: Vec<u64>,
}

#[derive(Debug, Default)]
struct RaceState {
    /// CPU epoch per session (created at first use).
    epochs: HashMap<u64, u64>,
    /// Kernel epoch per device.
    kernel_epochs: Vec<u64>,
    /// The un-synced call per device, if any.
    inflight: Vec<Option<InFlight>>,
    /// Write stamps, keyed by object start address.
    records: HashMap<u64, ObjRecords>,
    /// Sink-mode violation log (capped at [`SINK_CAP`]).
    sink: Vec<RaceViolation>,
    stats: RaceStats,
}

/// The process-wide detector, shared by the runtime core and every device
/// shard. Lock order: this mutex is a **leaf below the shard locks** —
/// hooks run while a shard is locked and never call back into the runtime.
#[derive(Debug)]
pub(crate) struct RaceDetector {
    /// `true` = sink mode (log and keep going), `false` = error mode.
    report: bool,
    state: Mutex<RaceState>,
}

impl RaceDetector {
    pub(crate) fn new(report: bool, devices: usize) -> Self {
        RaceDetector {
            report,
            state: Mutex::new(RaceState {
                kernel_epochs: vec![0; devices],
                inflight: (0..devices).map(|_| None).collect(),
                ..RaceState::default()
            }),
        }
    }

    /// Sink mode?
    pub(crate) fn report_mode(&self) -> bool {
        self.report
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RaceState> {
        // Panic-tolerant: a panicking service job must not poison detection
        // for every other session.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Routes a detection: sink mode logs it and returns `None`; error mode
    /// returns it for conversion into [`crate::GmacError::RaceDetected`].
    fn emit(&self, state: &mut RaceState, violation: RaceViolation) -> Option<RaceViolation> {
        state.stats.violations += 1;
        if self.report {
            if state.sink.len() < SINK_CAP {
                state.sink.push(violation);
            }
            None
        } else {
            Some(violation)
        }
    }

    /// Hook: a program CPU write of `[offset, offset + len)` within the
    /// object starting at `object` (block granularity `block_size`), homed
    /// on `dev`. Returns a violation to raise in error mode.
    ///
    /// Called with the home shard locked, *after* the bytes landed and the
    /// touch time was charged: detection is diagnostic, not transactional —
    /// the racing write is real and the error reports it.
    pub(crate) fn note_cpu_write(
        &self,
        dev: DeviceId,
        object: VAddr,
        block_size: u64,
        offset: u64,
        len: u64,
    ) -> Option<RaceViolation> {
        debug_assert!(len > 0);
        let writer = current_session();
        let mut state = self.lock();
        state.stats.writes_checked += 1;
        let epoch = if writer == UNKNOWN_SESSION {
            0
        } else {
            *state.epochs.entry(writer).or_insert(0)
        };

        // Kind 1 (+3): is a call referencing this object in flight on its
        // home device? (Objects are homed on exactly one device and calls
        // only reference same-device objects, so one probe suffices.)
        let mut violation = None;
        if let Some(inflight) = state.inflight.get(dev.0).and_then(Option::as_ref) {
            if inflight.objects.contains(&object.0) {
                let mut kinds = vec![RaceKind::CpuWriteWhileKernelMayRead];
                if writer != UNKNOWN_SESSION && writer != inflight.launcher {
                    kinds.push(RaceKind::CrossSessionWrite);
                }
                violation = Some(RaceViolation {
                    kinds,
                    object,
                    offset,
                    len,
                    device: dev,
                    session: SessionId(writer),
                    session_epoch: epoch,
                    kernel_epoch: state.kernel_epochs.get(dev.0).copied().unwrap_or(0),
                    unsynced_writer: None,
                });
            }
        }

        // Stamp the covered blocks (skipped when the writing session is
        // unknown: an unattributable stamp could only ever produce false
        // launch-time positives).
        if writer != UNKNOWN_SESSION {
            let first = (offset / block_size) as usize;
            let last = ((offset + len - 1) / block_size) as usize;
            let records = state.records.entry(object.0).or_insert_with(|| ObjRecords {
                block_size,
                blocks: Vec::new(),
            });
            if records.blocks.len() <= last {
                records.blocks.resize_with(last + 1, Vec::new);
            }
            for block in &mut records.blocks[first..=last] {
                match block.iter_mut().find(|s| s.session == writer) {
                    Some(stamp) => stamp.epoch = epoch,
                    None => block.push(Stamp {
                        session: writer,
                        epoch,
                    }),
                }
            }
        }

        violation.and_then(|v| self.emit(&mut state, v))
    }

    /// Hook: `launcher` is about to launch on `dev`, referencing the given
    /// objects (start address + block size each). Runs **before** any launch
    /// charge or protocol release, so an error-mode detection charges
    /// nothing. Kind 2 fires on any block stamped by a *different* session
    /// whose epoch is still that session's current epoch (the write was
    /// never released).
    pub(crate) fn check_launch(
        &self,
        launcher: SessionId,
        dev: DeviceId,
        objects: &[(VAddr, u64)],
    ) -> Option<RaceViolation> {
        let mut state = self.lock();
        state.stats.launches_checked += 1;
        for &(object, _block_size) in objects {
            let Some(records) = state.records.get(&object.0) else {
                continue;
            };
            let mut offending: Option<(usize, usize, Stamp)> = None;
            'blocks: for (idx, block) in records.blocks.iter().enumerate() {
                for stamp in block {
                    let unsynced =
                        state.epochs.get(&stamp.session).copied().unwrap_or(0) == stamp.epoch;
                    if stamp.session != launcher.0 && unsynced {
                        match &mut offending {
                            // Extend a contiguous offending run.
                            Some((_, end, _)) if *end == idx => *end = idx + 1,
                            Some(_) => break 'blocks,
                            None => offending = Some((idx, idx + 1, *stamp)),
                        }
                        continue 'blocks;
                    }
                }
                if offending.is_some() {
                    break;
                }
            }
            if let Some((first, end, stamp)) = offending {
                let block_size = records.block_size;
                let violation = RaceViolation {
                    kinds: vec![
                        RaceKind::LaunchOverUnsyncedWrites,
                        RaceKind::CrossSessionWrite,
                    ],
                    object,
                    offset: first as u64 * block_size,
                    len: (end - first) as u64 * block_size,
                    device: dev,
                    session: launcher,
                    session_epoch: state.epochs.get(&launcher.0).copied().unwrap_or(0),
                    kernel_epoch: state.kernel_epochs.get(dev.0).copied().unwrap_or(0),
                    unsynced_writer: Some((SessionId(stamp.session), stamp.epoch)),
                };
                return self.emit(&mut state, violation);
            }
        }
        None
    }

    /// Hook: the launch succeeded. Advances `dev`'s kernel epoch, registers
    /// the in-flight call (stacked calls by the same session union their
    /// object sets) and advances the launcher's CPU epoch — the protocol
    /// release flushed the launcher's own pre-call writes, so its stamps are
    /// now synced.
    pub(crate) fn note_launched(&self, launcher: SessionId, dev: DeviceId, objects: &[VAddr]) {
        let mut state = self.lock();
        if let Some(e) = state.kernel_epochs.get_mut(dev.0) {
            *e += 1;
        }
        if let Some(slot) = state.inflight.get_mut(dev.0) {
            match slot {
                Some(inflight) => {
                    for obj in objects {
                        if !inflight.objects.contains(&obj.0) {
                            inflight.objects.push(obj.0);
                        }
                    }
                    inflight.launcher = launcher.0;
                }
                None => {
                    *slot = Some(InFlight {
                        launcher: launcher.0,
                        objects: objects.iter().map(|o| o.0).collect(),
                    });
                }
            }
        }
        *state.epochs.entry(launcher.0).or_insert(0) += 1;
    }

    /// Hook: `session` synced `dev`. Clears the device's in-flight call and
    /// advances the session's CPU epoch (sync is an acquire/release point).
    pub(crate) fn note_sync(&self, session: SessionId, dev: DeviceId) {
        let mut state = self.lock();
        if let Some(slot) = state.inflight.get_mut(dev.0) {
            *slot = None;
        }
        *state.epochs.entry(session.0).or_insert(0) += 1;
    }

    /// Hook: the object starting at `object` was freed. Its stamps are
    /// dropped so a later first-fit reuse of the address starts clean
    /// (stale stamps would otherwise flag the unrelated new object).
    pub(crate) fn note_free(&self, object: VAddr) {
        self.lock().records.remove(&object.0);
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> RaceStats {
        self.lock().stats
    }

    /// Sink-mode violation log (clone; empty in error mode).
    pub(crate) fn violations(&self) -> Vec<RaceViolation> {
        self.lock().sink.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(report: bool) -> RaceDetector {
        RaceDetector::new(report, 2)
    }

    const OBJ: VAddr = VAddr(0x10_0000);
    const DEV: DeviceId = DeviceId(0);

    #[test]
    fn clean_write_launch_sync_cycle_is_silent() {
        let d = det(false);
        set_current_session(SessionId(1));
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 8).is_none());
        assert!(d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none());
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        d.note_sync(SessionId(1), DEV);
        // Post-sync writes are a fresh epoch; the next launch is clean.
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 8).is_none());
        assert!(d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none());
        assert_eq!(d.stats().violations, 0);
    }

    #[test]
    fn write_while_inflight_is_kind_one() {
        let d = det(false);
        set_current_session(SessionId(1));
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        let v = d.note_cpu_write(DEV, OBJ, 4096, 100, 4).expect("violation");
        assert_eq!(v.kinds, vec![RaceKind::CpuWriteWhileKernelMayRead]);
        assert_eq!(v.object, OBJ);
        assert_eq!((v.offset, v.len), (100, 4));
        assert_eq!(v.device, DEV);
        // A write to an object the call does NOT reference is fine.
        assert!(d
            .note_cpu_write(DEV, VAddr(0x20_0000), 4096, 0, 4)
            .is_none());
    }

    #[test]
    fn foreign_write_while_inflight_adds_cross_session() {
        let d = det(false);
        set_current_session(SessionId(2));
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        let v = d.note_cpu_write(DEV, OBJ, 4096, 0, 4).expect("violation");
        assert_eq!(
            v.kinds,
            vec![
                RaceKind::CpuWriteWhileKernelMayRead,
                RaceKind::CrossSessionWrite
            ]
        );
        assert_eq!(v.session, SessionId(2));
    }

    #[test]
    fn launch_over_foreign_unsynced_write_is_kind_two() {
        let d = det(false);
        set_current_session(SessionId(2));
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 4096, 100).is_none());
        let v = d
            .check_launch(SessionId(1), DEV, &[(OBJ, 4096)])
            .expect("violation");
        assert_eq!(
            v.kinds,
            vec![
                RaceKind::LaunchOverUnsyncedWrites,
                RaceKind::CrossSessionWrite
            ]
        );
        assert_eq!(v.offset, 4096, "block-precise offset");
        assert_eq!(v.unsynced_writer, Some((SessionId(2), 0)));
    }

    #[test]
    fn released_foreign_write_is_not_flagged() {
        let d = det(false);
        set_current_session(SessionId(2));
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_none());
        // Session 2 releases via its own launch+sync on another device.
        d.note_launched(SessionId(2), DeviceId(1), &[]);
        assert!(
            d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none(),
            "released stamp must not flag"
        );
    }

    #[test]
    fn own_unsynced_writes_never_flag_a_launch() {
        let d = det(false);
        set_current_session(SessionId(1));
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4096).is_none());
        assert!(d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none());
    }

    #[test]
    fn free_drops_stamps_for_address_reuse() {
        let d = det(false);
        set_current_session(SessionId(2));
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_none());
        d.note_free(OBJ);
        assert!(
            d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none(),
            "stamps must not survive free (first-fit reuses addresses)"
        );
    }

    #[test]
    fn report_mode_sinks_instead_of_erroring() {
        let d = det(true);
        set_current_session(SessionId(1));
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_none());
        assert_eq!(d.stats().violations, 1);
        let sink = d.violations();
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].kinds, vec![RaceKind::CpuWriteWhileKernelMayRead]);
        assert!(sink[0].to_string().contains("cpu-write-while-kernel"));
    }

    #[test]
    fn sink_is_capped_but_counting_continues() {
        let d = det(true);
        set_current_session(SessionId(1));
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        for _ in 0..(SINK_CAP as u64 + 10) {
            assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_none());
        }
        assert_eq!(d.violations().len(), SINK_CAP);
        assert_eq!(d.stats().violations, SINK_CAP as u64 + 10);
    }

    #[test]
    fn unknown_thread_identity_still_catches_kind_one() {
        let d = det(false);
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        let v = std::thread::spawn(move || {
            // Fresh thread: no session identity.
            let v = d.note_cpu_write(DEV, OBJ, 4096, 0, 4);
            (v, d)
        });
        let (v, d) = v.join().unwrap();
        let v = v.expect("kind 1 is session-independent");
        assert_eq!(
            v.kinds,
            vec![RaceKind::CpuWriteWhileKernelMayRead],
            "cross-session must not be claimed for unknown writers"
        );
        // And the unattributable stamp is not recorded: no launch-time
        // false positive.
        d.note_sync(SessionId(1), DEV);
        assert!(d.check_launch(SessionId(1), DEV, &[(OBJ, 4096)]).is_none());
    }

    #[test]
    fn stacked_calls_union_objects() {
        let d = det(false);
        let obj2 = VAddr(0x20_0000);
        set_current_session(SessionId(1));
        d.note_launched(SessionId(1), DEV, &[OBJ]);
        d.note_launched(SessionId(1), DEV, &[obj2]);
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_some());
        assert!(d.note_cpu_write(DEV, obj2, 4096, 0, 4).is_some());
        d.note_sync(SessionId(1), DEV);
        assert!(d.note_cpu_write(DEV, OBJ, 4096, 0, 4).is_none());
        assert!(d.note_cpu_write(DEV, obj2, 4096, 0, 4).is_none());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = RaceViolation {
            kinds: vec![
                RaceKind::LaunchOverUnsyncedWrites,
                RaceKind::CrossSessionWrite,
            ],
            object: VAddr(0x10_0000),
            offset: 4096,
            len: 4096,
            device: DeviceId(0),
            session: SessionId(1),
            session_epoch: 3,
            kernel_epoch: 7,
            unsynced_writer: Some((SessionId(2), 3)),
        };
        let s = v.to_string();
        assert!(s.contains("launch-over-unsynced-writes"), "{s}");
        assert!(s.contains("0x100000"), "{s}");
        assert!(s.contains("session #2"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");
    }
}
