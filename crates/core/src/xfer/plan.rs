//! Transfer plans: declarative range requests coalesced into DMA jobs.

use crate::object::SharedObject;
use hetsim::{CopyMode, DevAddr, DeviceId, Direction};
use softmmu::VAddr;

/// Why a plan moves data — drives counter attribution in the executor
/// (only eager evictions count toward `Counters::eager_evictions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Release-side flush of dirty data at an `adsmCall` boundary.
    Release,
    /// Rolling-update eviction of the oldest dirty block.
    Eviction,
    /// Acquire-side / fault-side fetch of invalid data.
    Fetch,
    /// Flush of partially-covered dirty blocks ahead of a device-side fill.
    MemsetFlush,
}

/// One range of one shared object a protocol asked to move.
#[derive(Debug, Clone, Copy)]
struct PlannedRange {
    /// Object start in the unified address space.
    addr: VAddr,
    /// Hosting accelerator.
    dev: DeviceId,
    /// Object base in the device address space.
    dev_addr: DevAddr,
    /// Byte offset of the range within the object.
    offset: u64,
    /// Range length in bytes.
    len: u64,
    /// The object's protocol block size (used to recount blocks after
    /// merging).
    block_size: u64,
}

/// Protocol blocks overlapped by `[offset, offset+len)` under `block_size`
/// granularity (matches `SharedObject::blocks_overlapping` for in-bounds
/// ranges; the tail block's short length does not change the count).
fn blocks_spanned(offset: u64, len: u64, block_size: u64) -> u64 {
    if len == 0 {
        0
    } else {
        (offset + len - 1) / block_size - offset / block_size + 1
    }
}

/// One coalesced DMA engine reservation: a contiguous range of a single
/// object, carrying `blocks` protocol blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaJob {
    /// Object start in the unified address space.
    pub addr: VAddr,
    /// Hosting accelerator.
    pub dev: DeviceId,
    /// Object base in the device address space.
    pub dev_addr: DevAddr,
    /// Byte offset of the job's range within the object.
    pub offset: u64,
    /// Bytes to move.
    pub len: u64,
    /// Protocol blocks coalesced into this job.
    pub blocks: u64,
}

/// A batch of planned transfers in one direction, executed by
/// [`crate::runtime::Runtime::execute`].
#[derive(Debug)]
pub struct TransferPlan {
    dir: Direction,
    mode: CopyMode,
    purpose: Purpose,
    coalescing: bool,
    ranges: Vec<PlannedRange>,
}

impl TransferPlan {
    /// Creates an empty plan. `mode` is only meaningful host-to-device;
    /// device-to-host fetches are synchronous (the CPU needs the bytes to
    /// make progress).
    pub fn new(dir: Direction, mode: CopyMode, purpose: Purpose, coalescing: bool) -> Self {
        TransferPlan {
            dir,
            mode,
            purpose,
            coalescing,
            ranges: Vec::new(),
        }
    }

    /// Transfer direction.
    pub fn dir(&self) -> Direction {
        self.dir
    }

    /// Whether jobs block the host.
    pub fn mode(&self) -> CopyMode {
        self.mode
    }

    /// Why the plan moves data.
    pub fn purpose(&self) -> Purpose {
        self.purpose
    }

    /// True when no ranges have been requested.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of requested (pre-coalescing) ranges.
    pub fn requests(&self) -> usize {
        self.ranges.len()
    }

    /// Requests `[offset, offset+len)` of `obj`. The block count attributed
    /// to the range is the number of protocol blocks it overlaps.
    ///
    /// With coalescing **disabled** (the ablation baseline: "one DMA job per
    /// protocol block") a multi-block range is split into its per-block
    /// subranges, so protocols may request whole equal-state runs without
    /// changing the baseline's job shape. Object-granular protocols
    /// (batch/lazy) are untouched: their block size *is* the object size,
    /// so a whole-object request is a single block either way.
    pub fn request(&mut self, obj: &SharedObject, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        if !self.coalescing {
            let block_size = obj.block_size();
            let end = offset + len;
            let mut lo = offset;
            while lo < end {
                let block_end = (lo / block_size + 1) * block_size;
                let hi = block_end.min(end);
                self.push_range(obj, lo, hi - lo);
                lo = hi;
            }
            return;
        }
        self.push_range(obj, offset, len);
    }

    fn push_range(&mut self, obj: &SharedObject, offset: u64, len: u64) {
        self.ranges.push(PlannedRange {
            addr: obj.addr(),
            dev: obj.device(),
            dev_addr: obj.dev_addr(),
            offset,
            len,
            block_size: obj.block_size(),
        });
    }

    /// Requests exactly block `idx` of `obj`.
    pub fn request_block(&mut self, obj: &SharedObject, idx: usize) {
        let block = obj.block(idx);
        self.request(obj, block.offset, block.len);
    }

    /// Produces the job list: ranges sorted by (object, offset), with
    /// adjacent or overlapping ranges of the same object merged into single
    /// jobs when coalescing is enabled. With coalescing disabled every
    /// requested range becomes its own job (the ablation baseline).
    pub fn jobs(&self) -> Vec<DmaJob> {
        let mut ranges = self.ranges.clone();
        ranges.sort_by_key(|r| (r.addr, r.offset));
        let mut jobs: Vec<DmaJob> = Vec::with_capacity(ranges.len());
        for r in ranges {
            if self.coalescing {
                if let Some(last) = jobs.last_mut() {
                    if last.addr == r.addr && r.offset <= last.offset + last.len {
                        // Adjacent or overlapping: extend the previous job.
                        // Blocks are recounted over the merged extent so
                        // overlapping requests never double-count.
                        let end = (r.offset + r.len).max(last.offset + last.len);
                        last.len = end - last.offset;
                        last.blocks = blocks_spanned(last.offset, last.len, r.block_size);
                        continue;
                    }
                }
            }
            jobs.push(DmaJob {
                addr: r.addr,
                dev: r.dev,
                dev_addr: r.dev_addr,
                offset: r.offset,
                len: r.len,
                blocks: blocks_spanned(r.offset, r.len, r.block_size),
            });
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::state::BlockState;
    use softmmu::RegionId;

    fn obj(addr: u64, size: u64, block: u64) -> SharedObject {
        SharedObject::new(
            ObjectId(1),
            VAddr(addr),
            size,
            DeviceId(0),
            DevAddr(addr),
            RegionId(1),
            block,
            BlockState::ReadOnly,
        )
    }

    fn plan(coalescing: bool) -> TransferPlan {
        TransferPlan::new(
            Direction::HostToDevice,
            CopyMode::Sync,
            Purpose::Release,
            coalescing,
        )
    }

    #[test]
    fn adjacent_ranges_merge_into_one_job() {
        let o = obj(0x10_0000, 4 * 4096, 4096);
        let mut p = plan(true);
        for idx in 0..4 {
            p.request_block(&o, idx);
        }
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].offset, 0);
        assert_eq!(jobs[0].len, 4 * 4096);
        assert_eq!(jobs[0].blocks, 4);
    }

    #[test]
    fn coalescing_off_keeps_one_job_per_range() {
        let o = obj(0x10_0000, 4 * 4096, 4096);
        let mut p = plan(false);
        for idx in 0..4 {
            p.request_block(&o, idx);
        }
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 4);
        assert!(jobs.iter().all(|j| j.len == 4096 && j.blocks == 1));
    }

    #[test]
    fn gaps_break_runs() {
        let o = obj(0x10_0000, 6 * 4096, 4096);
        let mut p = plan(true);
        // Blocks 0,1 then 3 then 5: two gaps -> three jobs.
        for idx in [0usize, 1, 3, 5] {
            p.request_block(&o, idx);
        }
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].len, 2 * 4096);
        assert_eq!(jobs[0].blocks, 2);
        assert_eq!(jobs[1].offset, 3 * 4096);
        assert_eq!(jobs[2].offset, 5 * 4096);
    }

    #[test]
    fn requests_sorted_before_merging() {
        let o = obj(0x10_0000, 4 * 4096, 4096);
        let mut p = plan(true);
        for idx in [2usize, 0, 1, 3] {
            p.request_block(&o, idx);
        }
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 1, "out-of-order adjacent requests still merge");
        assert_eq!(jobs[0].blocks, 4);
    }

    #[test]
    fn different_objects_never_merge() {
        let a = obj(0x10_0000, 4096, 4096);
        let b = obj(0x10_1000, 4096, 4096); // numerically adjacent, distinct object
        let mut p = plan(true);
        p.request_block(&a, 0);
        p.request_block(&b, 0);
        assert_eq!(p.jobs().len(), 2);
    }

    #[test]
    fn overlapping_ranges_union() {
        let o = obj(0x10_0000, 4 * 4096, 4096);
        let mut p = plan(true);
        p.request(&o, 0, 6000);
        p.request(&o, 4096, 8192);
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].offset, 0);
        assert_eq!(jobs[0].len, 3 * 4096);
        assert_eq!(
            jobs[0].blocks, 3,
            "block 1 is shared by both requests but counted once"
        );
    }

    #[test]
    fn empty_and_zero_length_requests() {
        let o = obj(0x10_0000, 4096, 4096);
        let mut p = plan(true);
        assert!(p.is_empty());
        p.request(&o, 0, 0);
        assert!(p.is_empty(), "zero-length request is dropped");
        p.request_block(&o, 0);
        assert_eq!(p.requests(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn tail_block_counts_once() {
        let o = obj(0x10_0000, 2 * 4096 + 100, 4096);
        let mut p = plan(true);
        p.request(&o, 0, 2 * 4096 + 100);
        let jobs = p.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].blocks, 3);
        assert_eq!(jobs[0].len, 2 * 4096 + 100);
    }
}
