//! The background DMA execution engine: per-device worker threads that land
//! queued host-to-device bytes in device memory *after* the issuing shard
//! lock has been released.
//!
//! The split mirrors the paper's §5.3 rolling-update premise — dirty blocks
//! stream to the accelerator *while* the CPU keeps producing. Virtual time
//! already modelled that overlap (DMA engine timelines are reserved at
//! issue); this engine makes it real in wall-clock terms too:
//!
//! ```text
//!  protocol release/evict (shard lock held)
//!      │ plan + gather bytes + Platform::reserve_h2d  — all virtual charges
//!      ▼
//!  DmaEngine::submit ──► per-device FIFO queue (engine mutex, leaf tier)
//!      │                      │ worker thread pops, holding NO shard lock
//!      ▼                      ▼
//!  shard lock drops     Platform::commit_h2d  — device mutex only
//!                            │
//!                            ▼
//!                       completion table (tickets + per-object counts)
//! ```
//!
//! Because [`hetsim::Platform::reserve_h2d`] performs every clock and ledger
//! charge at submission, a run with the engine enabled is byte-identical in
//! digests, virtual times and fault counts to the inline ablation baseline
//! ([`crate::GmacConfig::async_dma`] = `false`); only wall-clock overlap
//! differs.
//!
//! **Lock tier:** the engine's queue mutexes sit *below* the shard mutexes
//! and *above* nothing — workers take only a queue mutex and then platform
//! leaf locks (one device mutex). Submitting or joining under a shard lock
//! is therefore safe, and a worker can never deadlock against a shard.

use crate::error::GmacResult;
use hetsim::{DevAddr, DeviceId, Platform, SimError};
use softmmu::VAddr;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One queued byte landing: the staging buffer gathered under the shard lock
/// plus its destination. The engine owns the staging bytes outright, so a
/// concurrent `free`/`realloc` of the source object can never invalidate a
/// job mid-flight — joins only gate the *device* range.
#[derive(Debug)]
struct WorkItem {
    /// Start address of the owning shared object (completion-table key).
    obj: VAddr,
    /// Destination in device memory.
    dst: DevAddr,
    /// Snapshot of the host bytes at issue time.
    bytes: Vec<u8>,
}

/// Mutable queue state of one device, behind the engine-tier mutex.
#[derive(Debug, Default)]
struct DeviceQueue {
    jobs: VecDeque<WorkItem>,
    /// Tickets issued (monotonic job count).
    submitted: u64,
    /// Tickets retired, in FIFO order (single worker per device).
    completed: u64,
    /// `completed` as of the last device-wide join; jobs retired since then
    /// finished while the CPU made progress — the structural overlap count.
    overlap_mark: u64,
    /// Jobs currently queued or executing, per owning object.
    inflight_per_object: HashMap<VAddr, u64>,
    /// Deepest the queue has ever been (jobs waiting + executing).
    depth_high_water: u64,
    /// First failure from a worker, surfaced at the next join.
    error: Option<SimError>,
    shutdown: bool,
}

#[derive(Debug)]
struct DeviceState {
    queue: Mutex<DeviceQueue>,
    cv: Condvar,
}

/// Engine statistics for [`crate::Report`] (wall-clock bookkeeping only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs handed to the engine since creation.
    pub submitted: u64,
    /// Jobs whose bytes have landed in device memory.
    pub completed: u64,
    /// Deepest any per-device queue has been.
    pub depth_high_water: u64,
}

impl EngineStats {
    /// Jobs queued or executing right now.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed
    }
}

/// Per-device background workers draining queued DMA byte landings.
///
/// One engine is shared by every shard of a [`crate::Gmac`] runtime; each
/// device has its own FIFO queue and worker thread, so landings for
/// different accelerators proceed concurrently and landings for one device
/// retire in submission order (a later flush of the same range can never be
/// overtaken by an earlier one).
#[derive(Debug)]
pub struct DmaEngine {
    devices: Arc<Vec<DeviceState>>,
    workers: Vec<JoinHandle<()>>,
}

impl DmaEngine {
    /// Spawns one worker per platform device.
    pub fn new(platform: Arc<Platform>) -> Self {
        let devices: Arc<Vec<DeviceState>> = Arc::new(
            (0..platform.device_count())
                .map(|_| DeviceState {
                    queue: Mutex::new(DeviceQueue::default()),
                    cv: Condvar::new(),
                })
                .collect(),
        );
        let workers = (0..platform.device_count())
            .map(|i| {
                let devices = Arc::clone(&devices);
                let platform = Arc::clone(&platform);
                std::thread::Builder::new()
                    .name(format!("gmac-dma-{i}"))
                    .spawn(move || worker_loop(&platform, DeviceId(i), &devices[i]))
                    .expect("spawn DMA worker")
            })
            .collect();
        DmaEngine { devices, workers }
    }

    fn state(&self, dev: DeviceId) -> &DeviceState {
        &self.devices[dev.0]
    }

    /// Queues a byte landing for `dev`. The caller has already reserved the
    /// virtual DMA timeline ([`hetsim::Platform::reserve_h2d`]) and owns no
    /// claim on `bytes` afterwards.
    pub fn submit(&self, dev: DeviceId, obj: VAddr, dst: DevAddr, bytes: Vec<u8>) {
        let state = self.state(dev);
        let mut q = lock_ok(&state.queue);
        q.jobs.push_back(WorkItem { obj, dst, bytes });
        q.submitted += 1;
        *q.inflight_per_object.entry(obj).or_insert(0) += 1;
        let depth = q.submitted - q.completed;
        q.depth_high_water = q.depth_high_water.max(depth);
        state.cv.notify_all();
    }

    /// Blocks (wall-clock) until every job submitted to `dev` has landed.
    /// Returns the number of jobs that had already retired since the last
    /// device join — jobs whose execution overlapped CPU progress.
    ///
    /// # Errors
    /// Surfaces the first worker-side platform failure, if any.
    pub fn wait_device(&self, dev: DeviceId) -> GmacResult<u64> {
        let state = self.state(dev);
        let mut q = lock_ok(&state.queue);
        let overlapped = q.completed.saturating_sub(q.overlap_mark);
        while q.completed < q.submitted {
            q = state
                .cv
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        q.overlap_mark = q.completed;
        if let Some(e) = q.error.take() {
            return Err(e.into());
        }
        Ok(overlapped)
    }

    /// Blocks (wall-clock) until every job owned by the object starting at
    /// `obj` on `dev` has landed. Used before device-memory reads, fills and
    /// frees of that object; unrelated objects keep streaming.
    ///
    /// # Errors
    /// Surfaces the first worker-side platform failure, if any.
    pub fn wait_object(&self, dev: DeviceId, obj: VAddr) -> GmacResult<()> {
        let state = self.state(dev);
        let mut q = lock_ok(&state.queue);
        while q.inflight_per_object.contains_key(&obj) {
            q = state
                .cv
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if let Some(e) = q.error.take() {
            return Err(e.into());
        }
        Ok(())
    }

    /// True when `dev` has jobs queued or executing.
    pub fn is_busy(&self, dev: DeviceId) -> bool {
        let q = lock_ok(&self.state(dev).queue);
        q.completed < q.submitted
    }

    /// True when the object starting at `obj` has jobs queued or executing
    /// on `dev`. The eviction path treats such objects as pinned: their
    /// device range must not be returned to the allocator while a staged
    /// byte landing still targets it.
    pub fn object_busy(&self, dev: DeviceId, obj: VAddr) -> bool {
        lock_ok(&self.state(dev).queue)
            .inflight_per_object
            .contains_key(&obj)
    }

    /// Aggregate statistics across all devices.
    pub fn stats(&self) -> EngineStats {
        let mut s = EngineStats::default();
        for state in self.devices.iter() {
            let q = lock_ok(&state.queue);
            s.submitted += q.submitted;
            s.completed += q.completed;
            s.depth_high_water = s.depth_high_water.max(q.depth_high_water);
        }
        s
    }
}

impl Drop for DmaEngine {
    /// Shuts down cleanly: workers drain whatever is queued, then exit.
    /// Dropping a `Gmac` with a non-empty queue therefore never deadlocks
    /// and never abandons a staged byte landing.
    fn drop(&mut self) {
        for state in self.devices.iter() {
            lock_ok(&state.queue).shutdown = true;
            state.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(platform: &Platform, dev: DeviceId, state: &DeviceState) {
    loop {
        let item = {
            let mut q = lock_ok(&state.queue);
            loop {
                if let Some(item) = q.jobs.pop_front() {
                    break item;
                }
                if q.shutdown {
                    return;
                }
                q = state
                    .cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // The whole point of the engine: a DmaJob executes with no shard
        // mutex held. Structural on a dedicated worker thread; assert it so
        // a refactor routing execution through a borrowed caller thread
        // trips immediately.
        debug_assert_eq!(
            crate::shard::shard_locks_held(),
            0,
            "DMA worker must not hold a shard lock while executing a job"
        );
        let result = platform.commit_h2d(dev, item.dst, &item.bytes);
        let mut q = lock_ok(&state.queue);
        q.completed += 1;
        if let Some(n) = q.inflight_per_object.get_mut(&item.obj) {
            *n -= 1;
            if *n == 0 {
                q.inflight_per_object.remove(&item.obj);
            }
        }
        if let Err(e) = result {
            q.error.get_or_insert(e);
        }
        state.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::CopyMode;

    const DEV: DeviceId = DeviceId(0);

    fn platform() -> Arc<Platform> {
        Arc::new(Platform::desktop_g280())
    }

    #[test]
    fn submitted_bytes_land_on_the_device() {
        let p = platform();
        let a = p.dev_alloc(DEV, 8192).unwrap();
        let engine = DmaEngine::new(Arc::clone(&p));
        p.reserve_h2d(DEV, a, 8192, CopyMode::Sync).unwrap();
        engine.submit(DEV, VAddr(0x1000), a, vec![5u8; 8192]);
        engine.wait_device(DEV).unwrap();
        let dev = p.device(DEV).unwrap();
        assert_eq!(dev.mem().slice(a, 8192).unwrap(), &[5u8; 8192][..]);
        let s = engine.stats();
        assert_eq!((s.submitted, s.completed, s.in_flight()), (1, 1, 0));
        assert!(s.depth_high_water >= 1);
    }

    #[test]
    fn fifo_order_within_a_device() {
        // A later landing of the same range must win.
        let p = platform();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        let engine = DmaEngine::new(Arc::clone(&p));
        for v in 1..=32u8 {
            engine.submit(DEV, VAddr(0x1000), a, vec![v; 4096]);
        }
        engine.wait_device(DEV).unwrap();
        let dev = p.device(DEV).unwrap();
        assert_eq!(dev.mem().slice(a, 4096).unwrap(), &[32u8; 4096][..]);
    }

    #[test]
    fn wait_object_gates_only_that_object() {
        let p = platform();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        let engine = DmaEngine::new(Arc::clone(&p));
        engine.submit(DEV, VAddr(0x1000), a, vec![1u8; 4096]);
        engine.wait_object(DEV, VAddr(0x1000)).unwrap();
        // Never-submitted objects are trivially complete.
        engine.wait_object(DEV, VAddr(0x9000)).unwrap();
        engine.wait_device(DEV).unwrap();
    }

    #[test]
    fn overlap_counts_jobs_retired_between_joins() {
        let p = platform();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        let engine = DmaEngine::new(Arc::clone(&p));
        engine.submit(DEV, VAddr(0x1000), a, vec![1u8; 4096]);
        // Give the worker a chance to retire the job before the join; the
        // count is `>= 0` either way, and a second join with no new work
        // reports zero.
        engine.wait_device(DEV).unwrap();
        assert_eq!(engine.wait_device(DEV).unwrap(), 0);
        assert!(!engine.is_busy(DEV));
    }

    #[test]
    fn drop_with_queued_jobs_drains_and_joins() {
        let p = platform();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        let engine = DmaEngine::new(Arc::clone(&p));
        for v in 0..16u8 {
            engine.submit(DEV, VAddr(0x1000), a, vec![v; 4096]);
        }
        drop(engine); // must not deadlock; drains the queue
        let dev = p.device(DEV).unwrap();
        assert_eq!(dev.mem().slice(a, 4096).unwrap(), &[15u8; 4096][..]);
    }

    #[test]
    fn worker_errors_surface_at_the_next_join() {
        let p = platform();
        let engine = DmaEngine::new(Arc::clone(&p));
        // Off-window destination: reserve_h2d would normally reject this at
        // issue; simulate a worker-side failure by submitting it directly.
        let cap = p.device(DEV).unwrap().mem().capacity();
        let base = p.device(DEV).unwrap().mem().base();
        engine.submit(DEV, VAddr(0x1000), base.add(cap), vec![0u8; 64]);
        assert!(engine.wait_device(DEV).is_err());
        // The error is consumed; the engine keeps working afterwards.
        let a = p.dev_alloc(DEV, 64).unwrap();
        engine.submit(DEV, VAddr(0x1000), a, vec![3u8; 64]);
        engine.wait_device(DEV).unwrap();
    }
}
