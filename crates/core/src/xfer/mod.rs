//! The DMA transfer-planning subsystem.
//!
//! The paper's central performance argument (§3.3, §5.2) is that host-driven
//! coherence lets the runtime *decide* how data moves instead of reacting
//! one page at a time: transfers can be batched, coalesced and overlapped
//! with CPU compute. This module is that lever made explicit. Coherence
//! protocols no longer issue imperative `flush`/`fetch` calls; they build a
//! [`TransferPlan`] describing *which block ranges of which objects* must
//! move, and the runtime executes the plan:
//!
//! ```text
//!  protocol (batch/lazy/rolling)
//!      │  request(obj, offset, len)        — declarative ranges
//!      ▼
//!  TransferPlan ──► coalesce adjacent/overlapping ranges within an object
//!      │  jobs()                            — few, large DmaJobs
//!      ▼
//!  Runtime::execute ──► hetsim DMA engine timelines (sync or async)
//!      │                                    — jobs/bytes/blocks recorded in
//!      │                                      the extended TransferLedger
//!      ├──► DmaQueue   — virtual-time horizons, joined at adsmCall
//!      ▼
//!  DmaEngine ──► per-device worker threads land the bytes in device
//!                memory outside the shard lock (wall-clock overlap);
//!                join_dma waits on the completion table
//! ```
//!
//! Coalescing is controlled by [`crate::GmacConfig::coalescing`]; with it
//! disabled the planner degrades to one job per requested range — the
//! ablation baseline matching the pre-planner behaviour. The background
//! engine is controlled by [`crate::GmacConfig::async_dma`]; with it
//! disabled jobs execute inline at issue, inside the shard lock, exactly as
//! before.

pub mod engine;
pub mod plan;
pub mod queue;

pub use engine::{DmaEngine, EngineStats};
pub use plan::{DmaJob, Purpose, TransferPlan};
pub use queue::DmaQueue;
