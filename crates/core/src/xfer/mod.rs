//! The DMA transfer-planning subsystem.
//!
//! The paper's central performance argument (§3.3, §5.2) is that host-driven
//! coherence lets the runtime *decide* how data moves instead of reacting
//! one page at a time: transfers can be batched, coalesced and overlapped
//! with CPU compute. This module is that lever made explicit. Coherence
//! protocols no longer issue imperative `flush`/`fetch` calls; they build a
//! [`TransferPlan`] describing *which block ranges of which objects* must
//! move, and the runtime executes the plan:
//!
//! ```text
//!  protocol (batch/lazy/rolling)
//!      │  request(obj, offset, len)        — declarative ranges
//!      ▼
//!  TransferPlan ──► coalesce adjacent/overlapping ranges within an object
//!      │  jobs()                            — few, large DmaJobs
//!      ▼
//!  Runtime::execute ──► hetsim DMA engine timelines (sync or async)
//!      │                                    — jobs/bytes/blocks recorded in
//!      ▼                                      the extended TransferLedger
//!  DmaQueue ──► explicit join points at the adsmCall boundary
//! ```
//!
//! Coalescing is controlled by [`crate::GmacConfig::coalescing`]; with it
//! disabled the planner degrades to one job per requested range — the
//! ablation baseline matching the pre-planner behaviour.

pub mod plan;
pub mod queue;

pub use plan::{DmaJob, Purpose, TransferPlan};
pub use queue::DmaQueue;
