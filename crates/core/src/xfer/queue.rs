//! Per-device bookkeeping of in-flight asynchronous DMA: the explicit join
//! points that replace the old implicit `join_h2d` call.

use hetsim::{DeviceId, TimePoint};
use std::collections::BTreeMap;

/// Tracks, per accelerator, the completion horizon of asynchronous
/// host-to-device jobs issued through transfer plans. The runtime joins the
/// queue at `adsmCall` boundaries (and whenever a protocol needs DMA
/// drained) instead of protocols reaching into engine internals.
///
/// Since the shard redesign one queue lives inside each
/// [`crate::shard::DeviceShard`]'s runtime, so in practice it only ever
/// holds its own device's horizon — the map form is kept for standalone
/// harnesses that drive one `Runtime` across several devices.
#[derive(Debug, Default)]
pub struct DmaQueue {
    pending: BTreeMap<DeviceId, TimePoint>,
}

impl DmaQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that an async job on `dev` completes at `end`.
    pub fn note(&mut self, dev: DeviceId, end: TimePoint) {
        let slot = self.pending.entry(dev).or_insert(end);
        *slot = (*slot).max(end);
    }

    /// Completion horizon of outstanding async DMA on `dev`, if any.
    pub fn pending(&self, dev: DeviceId) -> Option<TimePoint> {
        self.pending.get(&dev).copied()
    }

    /// True when no async DMA is outstanding on `dev`.
    pub fn is_idle(&self, dev: DeviceId) -> bool {
        self.pending(dev).is_none()
    }

    /// Clears and returns the horizon for `dev` (the caller is about to
    /// block on it).
    pub fn take(&mut self, dev: DeviceId) -> Option<TimePoint> {
        self.pending.remove(&dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> TimePoint {
        TimePoint::from_nanos(ns)
    }

    #[test]
    fn tracks_latest_horizon_per_device() {
        let mut q = DmaQueue::new();
        assert!(q.is_idle(DeviceId(0)));
        q.note(DeviceId(0), t(100));
        q.note(DeviceId(0), t(50)); // earlier completion does not regress
        q.note(DeviceId(1), t(300));
        assert_eq!(q.pending(DeviceId(0)), Some(t(100)));
        assert_eq!(q.pending(DeviceId(1)), Some(t(300)));
    }

    #[test]
    fn take_clears_the_device() {
        let mut q = DmaQueue::new();
        q.note(DeviceId(0), t(100));
        assert_eq!(q.take(DeviceId(0)), Some(t(100)));
        assert!(q.is_idle(DeviceId(0)));
        assert_eq!(q.take(DeviceId(0)), None);
    }
}
