//! Shared objects: the unit of allocation in ADSM.
//!
//! A shared object is one `adsmAlloc` result: a range of the unified address
//! space hosted in accelerator memory and mirrored in system memory. The
//! memory manager "keeps a list of the starting address and size of allocated
//! shared memory objects"; rolling-update extends each entry with "a list of
//! the starting addresses and sizes of the memory blocks composing the
//! object" (paper §4.3).
//!
//! Since block geometry is fully determined by the object size and the
//! protocol block size, the per-block list is stored as a **compact parallel
//! vector of states** ([`SharedObject::states`], one byte per block) rather
//! than a vector of `(offset, len, state)` records: [`SharedObject::block`]
//! derives the geometry on demand, and [`SharedObject::runs_in`] iterates
//! maximal **runs of equal state**, which is what every flush/fetch path
//! actually wants — a single coalesced request per run instead of one
//! per-block round trip.

use crate::fastview::ObjFastView;
use crate::state::BlockState;
use hetsim::{DevAddr, DeviceId};
use softmmu::{RegionId, VAddr};
use std::ops::Range;
use std::sync::Arc;

/// Identifies a shared object within a context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

/// One fixed-size block of a shared object (the last block may be shorter,
/// exactly as the paper specifies). Returned **by value** — geometry is
/// derived from the block index, only the state is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Byte offset of the block within the object.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u64,
    /// Coherence state.
    pub state: BlockState,
}

/// A maximal run of adjacent blocks sharing one coherence state, as yielded
/// by [`SharedObject::runs_in`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRun {
    /// The state every block of the run is in.
    pub state: BlockState,
    /// Block indices of the run.
    pub blocks: Range<usize>,
    /// First byte of the run within the object.
    pub start: u64,
    /// One past the last byte of the run (clamped to the object size for
    /// the short tail block).
    pub end: u64,
}

impl StateRun {
    /// Run length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for degenerate zero-byte runs (never yielded by `runs_in`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Iterator over maximal equal-state runs (see [`SharedObject::runs_in`]).
#[derive(Debug)]
pub struct StateRuns<'a> {
    states: &'a [BlockState],
    block_size: u64,
    size: u64,
    next: usize,
    end: usize,
}

impl Iterator for StateRuns<'_> {
    type Item = StateRun;

    fn next(&mut self) -> Option<StateRun> {
        if self.next >= self.end {
            return None;
        }
        let first = self.next;
        let state = self.states[first];
        let mut i = first + 1;
        while i < self.end && self.states[i] == state {
            i += 1;
        }
        self.next = i;
        Some(StateRun {
            state,
            blocks: first..i,
            start: first as u64 * self.block_size,
            end: (i as u64 * self.block_size).min(self.size),
        })
    }
}

/// A live shared allocation.
#[derive(Debug, Clone)]
pub struct SharedObject {
    id: ObjectId,
    addr: VAddr,
    size: u64,
    dev: DeviceId,
    dev_addr: DevAddr,
    region: RegionId,
    block_size: u64,
    /// Per-block coherence states (block `i` covers
    /// `[i * block_size, min((i+1) * block_size, size))`).
    states: Vec<BlockState>,
    /// True while the object owns a device range. Evicting the object under
    /// allocation pressure releases its device window back to the first-fit
    /// allocator and clears this flag; the host mirror then holds the only
    /// copy (every block Dirty, pages read-write) until a later
    /// `adsmCall`/access re-claims a window and re-fetches lazily.
    resident: bool,
    /// Lock-free mirror consumed by the mmap fast path; `None` when the
    /// object does not qualify (table-walk backend, non-contiguous host
    /// bytes, odd block geometry). Every [`Self::set_state`] publishes into
    /// it, keeping the mirror exact.
    fast: Option<Arc<ObjFastView>>,
}

impl SharedObject {
    /// Creates an object whose blocks start in `initial` state.
    ///
    /// `block_size` is the protocol's block granularity; batch- and
    /// lazy-update pass the object size so the object is a single block.
    ///
    /// # Panics
    /// Panics if `size` or `block_size` is zero.
    // The argument list is the paper's object descriptor verbatim; a builder
    // would only obscure the one construction site in the shard.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: ObjectId,
        addr: VAddr,
        size: u64,
        dev: DeviceId,
        dev_addr: DevAddr,
        region: RegionId,
        block_size: u64,
        initial: BlockState,
    ) -> Self {
        assert!(size > 0, "zero-size shared object");
        assert!(block_size > 0, "zero block size");
        let states = vec![initial; size.div_ceil(block_size) as usize];
        SharedObject {
            id,
            addr,
            size,
            dev,
            dev_addr,
            region,
            block_size,
            states,
            resident: true,
            fast: None,
        }
    }

    /// True while the object owns a device window (see the `resident`
    /// field). Non-resident objects are host-authoritative: every block is
    /// Dirty and the device address is meaningless until re-fetch.
    pub fn is_resident(&self) -> bool {
        self.resident
    }

    /// Marks the object evicted: its device window has been released. The
    /// caller (the shard's evictor) is responsible for having fetched
    /// device-only bytes to host and set every block Dirty first.
    pub(crate) fn mark_evicted(&mut self) {
        self.resident = false;
    }

    /// Re-homes the object at a freshly allocated device window. The host
    /// copy stays authoritative (blocks remain Dirty); the next release
    /// flushes everything through the ordinary plan/execute machinery.
    pub(crate) fn mark_resident(&mut self, dev_addr: DevAddr) {
        self.dev_addr = dev_addr;
        self.resident = true;
    }

    /// Attaches the fast-path mirror and publishes the current state vector
    /// into it (the view starts exact even when attached after transitions).
    pub(crate) fn attach_fast(&mut self, fast: Arc<ObjFastView>) {
        for (idx, &state) in self.states.iter().enumerate() {
            fast.publish(idx, state);
        }
        self.fast = Some(fast);
    }

    /// The attached fast-path mirror, if the object qualifies for one.
    pub(crate) fn fast_view(&self) -> Option<&Arc<ObjFastView>> {
        self.fast.as_ref()
    }

    /// Object identifier.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Start of the object in the unified address space.
    pub fn addr(&self) -> VAddr {
        self.addr
    }

    /// Object size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One past the last byte.
    pub fn end(&self) -> VAddr {
        self.addr + self.size
    }

    /// The accelerator hosting the object.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// Device address of the object (equals [`Self::addr`] for unified
    /// allocations; differs for `safe_alloc`).
    pub fn dev_addr(&self) -> DevAddr {
        self.dev_addr
    }

    /// True when host and device use the same numeric address.
    pub fn is_unified(&self) -> bool {
        self.addr.0 == self.dev_addr.0
    }

    /// The softmmu region mirroring the object in system memory.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Protocol block granularity for this object.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// True when `addr` falls inside the object.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// Translates a unified-space address inside this object to the device
    /// address space.
    ///
    /// # Panics
    /// Panics in debug builds if `addr` is outside the object.
    pub fn translate(&self, addr: VAddr) -> DevAddr {
        debug_assert!(self.contains(addr), "translate of foreign address");
        debug_assert!(self.resident, "translate of evicted object");
        self.dev_addr.add(addr - self.addr)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.states.len()
    }

    /// Block by index (geometry derived, state read from the compact
    /// vector).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn block(&self, idx: usize) -> Block {
        let offset = idx as u64 * self.block_size;
        Block {
            offset,
            len: self.block_size.min(self.size - offset),
            state: self.states[idx],
        }
    }

    /// Coherence state of block `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn state(&self, idx: usize) -> BlockState {
        self.states[idx]
    }

    /// Sets the coherence state of block `idx`.
    ///
    /// This is the single mutation point for block states; it publishes the
    /// transition into the lock-free fast-path mirror when one is attached.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn set_state(&mut self, idx: usize, state: BlockState) {
        self.states[idx] = state;
        if let Some(fast) = &self.fast {
            fast.publish(idx, state);
        }
    }

    /// The compact per-block state vector (cheap to snapshot: one byte per
    /// block).
    pub fn states(&self) -> &[BlockState] {
        &self.states
    }

    /// Index of the block containing byte `offset`.
    ///
    /// # Panics
    /// Panics in debug builds if `offset` is out of bounds.
    pub fn block_of(&self, offset: u64) -> usize {
        debug_assert!(offset < self.size);
        (offset / self.block_size) as usize
    }

    /// Indices of the blocks overlapping `[offset, offset + len)`.
    pub fn blocks_overlapping(&self, offset: u64, len: u64) -> Range<usize> {
        if len == 0 || offset >= self.size {
            return 0..0;
        }
        let end = (offset + len).min(self.size);
        let first = (offset / self.block_size) as usize;
        let last = ((end - 1) / self.block_size) as usize;
        first..last + 1
    }

    /// Iterates the maximal equal-state runs among the blocks overlapping
    /// `[offset, offset + len)`. Flush/fetch paths use this to issue one
    /// request per contiguous run instead of one per block; run byte bounds
    /// are block-aligned (callers clamp to their access window).
    pub fn runs_in(&self, offset: u64, len: u64) -> StateRuns<'_> {
        let range = self.blocks_overlapping(offset, len);
        StateRuns {
            states: &self.states,
            block_size: self.block_size,
            size: self.size,
            next: range.start,
            end: range.end,
        }
    }

    /// Iterator over all blocks (values; see [`Self::block`]).
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        (0..self.block_count()).map(|i| self.block(i))
    }

    /// Number of blocks currently in `state`.
    pub fn count_in_state(&self, state: BlockState) -> usize {
        self.states.iter().filter(|&&s| s == state).count()
    }

    /// Unified-space address of block `idx`.
    pub fn block_addr(&self, idx: usize) -> VAddr {
        self.addr + idx as u64 * self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(size: u64, block: u64) -> SharedObject {
        SharedObject::new(
            ObjectId(1),
            VAddr(0x10_0000),
            size,
            DeviceId(0),
            DevAddr(0x10_0000),
            RegionId(1),
            block,
            BlockState::ReadOnly,
        )
    }

    #[test]
    fn block_partition_covers_object_exactly() {
        let o = obj(10_000, 4096);
        assert_eq!(o.block_count(), 3);
        assert_eq!(o.block(0).len, 4096);
        assert_eq!(o.block(1).len, 4096);
        assert_eq!(
            o.block(2).len,
            10_000 - 8192,
            "tail block is shorter (paper §4.3)"
        );
        let total: u64 = o.blocks().map(|b| b.len).sum();
        assert_eq!(total, o.size());
    }

    #[test]
    fn single_block_object() {
        let o = obj(4096, 1 << 30); // lazy-update style: block >= object
        assert_eq!(o.block_count(), 1);
        assert_eq!(o.block(0).len, 4096);
    }

    #[test]
    fn block_of_and_overlap() {
        let o = obj(16384, 4096);
        assert_eq!(o.block_of(0), 0);
        assert_eq!(o.block_of(4095), 0);
        assert_eq!(o.block_of(4096), 1);
        assert_eq!(o.blocks_overlapping(0, 1), 0..1);
        assert_eq!(o.blocks_overlapping(4000, 200), 0..2);
        assert_eq!(o.blocks_overlapping(0, 16384), 0..4);
        assert_eq!(o.blocks_overlapping(8192, 0), 0..0);
        assert_eq!(o.blocks_overlapping(20_000, 4), 0..0);
        // Clamped at the end of the object.
        assert_eq!(o.blocks_overlapping(12_288, 999_999), 3..4);
    }

    #[test]
    fn translation_unified_and_safe() {
        let o = obj(8192, 4096);
        assert!(o.is_unified());
        assert_eq!(o.translate(VAddr(0x10_0010)).0, 0x10_0010);

        let safe = SharedObject::new(
            ObjectId(2),
            VAddr(0x7000_0000_0000),
            4096,
            DeviceId(0),
            DevAddr(0x10_0000),
            RegionId(2),
            4096,
            BlockState::ReadOnly,
        );
        assert!(!safe.is_unified());
        assert_eq!(safe.translate(VAddr(0x7000_0000_0010)).0, 0x10_0010);
    }

    #[test]
    fn contains_and_bounds() {
        let o = obj(4096, 4096);
        assert!(o.contains(VAddr(0x10_0000)));
        assert!(o.contains(VAddr(0x10_0FFF)));
        assert!(!o.contains(VAddr(0x10_1000)));
        assert!(!o.contains(VAddr(0xF_FFFF)));
        assert_eq!(o.end(), VAddr(0x10_1000));
    }

    #[test]
    fn state_counting() {
        let mut o = obj(12288, 4096);
        assert_eq!(o.count_in_state(BlockState::ReadOnly), 3);
        o.set_state(1, BlockState::Dirty);
        assert_eq!(o.count_in_state(BlockState::Dirty), 1);
        assert_eq!(o.count_in_state(BlockState::ReadOnly), 2);
        assert_eq!(o.block_addr(1), VAddr(0x10_1000));
        assert_eq!(o.state(1), BlockState::Dirty);
        assert_eq!(o.states()[1], BlockState::Dirty);
    }

    #[test]
    fn runs_merge_adjacent_equal_states() {
        let mut o = obj(8 * 4096, 4096);
        // States: R R D D D R I I
        o.set_state(2, BlockState::Dirty);
        o.set_state(3, BlockState::Dirty);
        o.set_state(4, BlockState::Dirty);
        o.set_state(6, BlockState::Invalid);
        o.set_state(7, BlockState::Invalid);
        let runs: Vec<StateRun> = o.runs_in(0, o.size()).collect();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].state, BlockState::ReadOnly);
        assert_eq!(runs[0].blocks, 0..2);
        assert_eq!((runs[0].start, runs[0].end), (0, 2 * 4096));
        assert_eq!(runs[1].state, BlockState::Dirty);
        assert_eq!(runs[1].blocks, 2..5);
        assert_eq!(runs[1].len(), 3 * 4096);
        assert!(!runs[1].is_empty());
        assert_eq!(runs[2].blocks, 5..6);
        assert_eq!(runs[3].state, BlockState::Invalid);
        assert_eq!(runs[3].blocks, 6..8);
    }

    #[test]
    fn residency_round_trips_through_a_new_device_window() {
        let mut o = obj(8192, 4096);
        assert!(o.is_resident(), "fresh objects own a device window");
        o.mark_evicted();
        assert!(!o.is_resident());
        // Re-fetch may land at a different device address; translation
        // follows the new window.
        o.mark_resident(DevAddr(0x40_0000));
        assert!(o.is_resident());
        assert_eq!(o.translate(VAddr(0x10_0010)).0, 0x40_0010);
        assert!(!o.is_unified(), "re-homed window loses unified addressing");
    }

    #[test]
    fn runs_respect_the_window_and_tail() {
        let mut o = obj(2 * 4096 + 100, 4096); // short tail block
        o.set_state(2, BlockState::Invalid);
        // Window covering only blocks 1..3.
        let runs: Vec<StateRun> = o.runs_in(4097, 2 * 4096).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].blocks, 1..2);
        assert_eq!(runs[1].blocks, 2..3);
        assert_eq!(runs[1].end, o.size(), "tail run clamped to object size");
        // Empty window yields nothing.
        assert_eq!(o.runs_in(0, 0).count(), 0);
    }
}
