//! Victim selection for device-memory-as-a-cache eviction.
//!
//! When an allocation does not fit in a device window, the shard evicts
//! cold resident objects back to host until the first-fit allocator has a
//! large-enough free block (see `DeviceShard::evict_until_fits`). This
//! module owns the *policy* half of that machinery: per-object last-touch
//! stamps fed by the access fast path (`DeviceShard::locate`) and call
//! boundaries, an exact-LRU and a clock/second-chance ordering over them
//! ([`crate::EvictPolicy`]), and the host-tier accounting that decides when
//! cold evicted images spill on to the disk tier
//! ([`crate::GmacConfig::host_capacity`]).
//!
//! Everything here is **wall-clock-only bookkeeping**: touching a stamp
//! charges nothing to virtual time, and the selection itself only runs on
//! the out-of-memory path — so with sufficient device capacity, runs with
//! eviction on and off are byte-identical in virtual time (the `evict`
//! ablation tests enforce this).
//!
//! State is indexed by the manager's **slab slot** (stable for an object's
//! lifetime, reused after removal — exactly the contract the shard's object
//! memo already relies on), so a touch is one `Vec` store on the hot path.

use crate::config::EvictPolicy;

/// Per-shard eviction bookkeeping: touch stamps, clock bits and the
/// host-tier image ledger, indexed by manager slab slot.
#[derive(Debug)]
pub struct EvictState {
    policy: EvictPolicy,
    /// Monotonic touch counter (wall-clock-only; never charged).
    tick: u64,
    /// Last-touch tick per slot (0 = never touched since insert).
    stamps: Vec<u64>,
    /// Clock reference bit per slot.
    referenced: Vec<bool>,
    /// Clock hand: next slot index the sweep starts from.
    hand: usize,
    /// Evicted image sizes per slot (`0` = not evicted or spilled away);
    /// an image is counted here while its only copy lives in *host* memory.
    host_images: Vec<u64>,
    /// Slots whose evicted image has been written behind to the disk tier.
    spilled: Vec<bool>,
    /// Total bytes of evicted images currently held in host memory.
    host_bytes: u64,
}

impl EvictState {
    /// Creates empty bookkeeping for the given policy.
    pub fn new(policy: EvictPolicy) -> Self {
        EvictState {
            policy,
            tick: 0,
            stamps: Vec::new(),
            referenced: Vec::new(),
            hand: 0,
            host_images: Vec::new(),
            spilled: Vec::new(),
            host_bytes: 0,
        }
    }

    /// Active policy.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.stamps.len() {
            self.stamps.resize(slot + 1, 0);
            self.referenced.resize(slot + 1, false);
            self.host_images.resize(slot + 1, 0);
            self.spilled.resize(slot + 1, false);
        }
    }

    /// Records an access to the object in `slot` — one `Vec` store plus a
    /// counter bump, cheap enough for the per-access fast path.
    pub fn touch(&mut self, slot: usize) {
        self.ensure(slot);
        self.tick += 1;
        self.stamps[slot] = self.tick;
        self.referenced[slot] = true;
    }

    /// Clears a slot on object insert/remove (slab slots are reused).
    pub fn forget(&mut self, slot: usize) {
        if slot < self.stamps.len() {
            self.stamps[slot] = 0;
            self.referenced[slot] = false;
            debug_assert_eq!(self.host_images[slot], 0, "forget of a live host image");
            debug_assert!(!self.spilled[slot], "forget of a spilled image");
        }
    }

    /// Orders candidate slots coldest-first per the configured policy.
    ///
    /// * **LRU**: ascending last-touch stamp (never-touched slots first).
    /// * **Clock**: sweep order from the hand; candidates whose reference
    ///   bit is set get a second chance — the bit is cleared and they sort
    ///   after every unreferenced candidate (stamp-ordered within each
    ///   class so exhaustive eviction stays deterministic). The hand
    ///   advances past the first victim.
    pub fn order(&mut self, candidates: &[usize]) -> Vec<usize> {
        candidates.iter().for_each(|&s| self.ensure(s));
        let mut order: Vec<usize> = candidates.to_vec();
        match self.policy {
            EvictPolicy::Lru => order.sort_by_key(|&s| (self.stamps[s], s)),
            EvictPolicy::Clock => {
                let n = self.stamps.len().max(1);
                let hand = self.hand;
                let sweep = |s: usize| (s + n - hand % n) % n;
                // Unreferenced candidates first, in sweep order; referenced
                // ones lose their bit and queue behind.
                order.sort_by_key(|&s| (self.referenced[s], sweep(s)));
                for &s in candidates {
                    self.referenced[s] = false;
                }
                if let Some(&first) = order.first() {
                    self.hand = (first + 1) % n;
                }
            }
        }
        order
    }

    // ----- host-tier image ledger ------------------------------------------

    /// Bytes of evicted images currently held in host memory.
    pub fn host_bytes(&self) -> u64 {
        self.host_bytes
    }

    /// Records an object's image landing in host memory at eviction.
    pub fn note_evicted(&mut self, slot: usize, bytes: u64) {
        self.ensure(slot);
        debug_assert_eq!(self.host_images[slot], 0, "double eviction");
        self.host_images[slot] = bytes;
        self.host_bytes += bytes;
    }

    /// Releases a slot's evicted image (re-fetch or free). Returns `true`
    /// when the image had been spilled to disk — the caller then prices the
    /// read-back (or removes the spill file on free).
    pub fn release_image(&mut self, slot: usize) -> bool {
        self.ensure(slot);
        let was_spilled = self.spilled[slot];
        if !was_spilled {
            self.host_bytes = self.host_bytes.saturating_sub(self.host_images[slot]);
        }
        self.host_images[slot] = 0;
        self.spilled[slot] = false;
        was_spilled
    }

    /// True when `slot`'s evicted image currently lives on the disk tier.
    pub fn is_spilled(&self, slot: usize) -> bool {
        self.spilled.get(slot).copied().unwrap_or(false)
    }

    /// Slots whose images must spill to disk to bring the host ledger back
    /// under `budget`, coldest first. Marks them spilled and moves their
    /// bytes out of the host ledger; the caller performs (and prices) the
    /// write-behind file writes.
    pub fn overflow(&mut self, budget: u64) -> Vec<(usize, u64)> {
        let mut victims = Vec::new();
        if self.host_bytes <= budget {
            return victims;
        }
        let mut held: Vec<usize> = (0..self.host_images.len())
            .filter(|&s| self.host_images[s] > 0 && !self.spilled[s])
            .collect();
        held.sort_by_key(|&s| (self.stamps[s], s));
        for slot in held {
            if self.host_bytes <= budget {
                break;
            }
            let bytes = self.host_images[slot];
            self.spilled[slot] = true;
            self.host_bytes -= bytes;
            victims.push((slot, bytes));
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_orders_by_last_touch() {
        let mut e = EvictState::new(EvictPolicy::Lru);
        e.touch(0);
        e.touch(1);
        e.touch(2);
        e.touch(0); // 0 is now the warmest
        assert_eq!(e.order(&[0, 1, 2]), vec![1, 2, 0]);
        // Never-touched slots are the coldest of all.
        assert_eq!(e.order(&[0, 1, 5]), vec![5, 1, 0]);
    }

    #[test]
    fn clock_gives_referenced_slots_a_second_chance() {
        let mut e = EvictState::new(EvictPolicy::Clock);
        e.touch(0);
        e.touch(1);
        e.touch(2);
        // All referenced: the sweep clears every bit; sweep order from the
        // hand (0) decides.
        assert_eq!(e.order(&[0, 1, 2]), vec![0, 1, 2]);
        // Bits are now clear; re-touch 0 only. 0 gets the second chance and
        // sorts last; hand advanced past the previous first victim.
        e.touch(0);
        let order = e.order(&[0, 1, 2]);
        assert_eq!(*order.last().unwrap(), 0, "referenced slot evicts last");
        assert!(!order.is_empty() && order[0] != 0);
    }

    #[test]
    fn forget_resets_reused_slots() {
        let mut e = EvictState::new(EvictPolicy::Lru);
        e.touch(3);
        e.forget(3);
        // Slot 3 reads as never-touched again: coldest.
        e.touch(1);
        assert_eq!(e.order(&[1, 3]), vec![3, 1]);
    }

    #[test]
    fn host_ledger_tracks_evict_release_and_spill() {
        let mut e = EvictState::new(EvictPolicy::Lru);
        e.touch(0);
        e.touch(1);
        e.note_evicted(0, 4096);
        e.note_evicted(1, 8192);
        assert_eq!(e.host_bytes(), 12288);
        // Over an 8 KiB budget: the coldest image (slot 0) spills first,
        // and spilling continues until the ledger fits.
        let spilled = e.overflow(8192);
        assert_eq!(spilled, vec![(0, 4096)]);
        assert!(e.is_spilled(0));
        assert_eq!(e.host_bytes(), 8192);
        // Releasing a spilled image reports it so the caller prices the
        // disk read-back; releasing a host image just shrinks the ledger.
        assert!(e.release_image(0));
        assert!(!e.release_image(1));
        assert_eq!(e.host_bytes(), 0);
        assert!(!e.is_spilled(0));
    }

    #[test]
    fn overflow_under_budget_spills_nothing() {
        let mut e = EvictState::new(EvictPolicy::Clock);
        e.note_evicted(2, 4096);
        assert!(e.overflow(4096).is_empty());
        assert_eq!(e.host_bytes(), 4096);
    }
}
