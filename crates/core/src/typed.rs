//! Typed shared buffers: element-counted, RAII-freed views over the unified
//! address space.
//!
//! [`Shared<T>`] wraps a raw [`SharedPtr`] with its element count and a
//! handle on the runtime, replacing the byte arithmetic
//! (`ptr.byte_add(i * 4)`, `load_slice::<f32>(p, n)`) that every call site
//! used to repeat. Reads and writes go through the same coherence-protocol
//! paths as the raw API — the first touch of an invalid block still faults
//! and fetches — so a `Shared<T>` is purely a safer handle, not a different
//! memory system.

use crate::error::GmacResult;
use crate::fastview::ObjFastView;
use crate::gmac::{Inner, RouteCache};
use crate::object::ObjectId;
use crate::ptr::{Param, SharedPtr};
use softmmu::Scalar;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

/// An owned, typed shared buffer of `len` elements of `T`.
///
/// Created by [`Session::alloc_typed`](crate::Session::alloc_typed) /
/// [`Session::safe_alloc_typed`](crate::Session::safe_alloc_typed).
/// Dropping it frees the underlying object (`adsmFree`) best-effort: if a
/// pending accelerator call still references the object, the drop leaves it
/// alive rather than tearing the mapping out from under the kernel — use
/// [`Shared::free`] for the checked, error-returning path.
///
/// ```
/// use gmac::{Gmac, GmacConfig};
/// use hetsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gmac = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
/// let session = gmac.session();
/// let v = session.alloc_typed::<f32>(256)?;
/// v.write_slice(&vec![2.5; 256])?;
/// assert_eq!(v.read(17)?, 2.5);
/// assert_eq!(v.read_slice()?.len(), 256);
/// v.free()?; // or just drop it
/// # Ok(())
/// # }
/// ```
pub struct Shared<T: Scalar> {
    /// `Some` while the handle owns the object; taken by [`Self::free`] /
    /// [`Self::into_raw`] so `Drop` neither double-frees nor leaks the
    /// runtime reference count.
    inner: Option<Arc<Inner>>,
    ptr: SharedPtr,
    len: usize,
    /// Allocation identity: frees are gated on it so a manually-freed and
    /// address-reused pointer cannot make this handle free a stranger's
    /// object.
    id: ObjectId,
    /// Per-buffer route memo: every access targets the same object, so this
    /// hits on all but the first (see [`crate::GmacConfig::tlb`]).
    routes: RouteCache,
    /// Zero-instrumentation hit path (mmap backend only): a raw host
    /// pointer plus a lock-free mirror of the object's block states. An
    /// element access on an accessible block becomes a plain load/store; any
    /// miss falls back to the fully-checked runtime path below.
    fast: Option<Arc<ObjFastView>>,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Scalar> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .field("elem_size", &T::SIZE)
            .finish()
    }
}

impl<T: Scalar> Shared<T> {
    pub(crate) fn new(
        inner: Arc<Inner>,
        ptr: SharedPtr,
        len: usize,
        id: ObjectId,
        fast: Option<Arc<ObjFastView>>,
    ) -> Self {
        Shared {
            inner: Some(inner),
            ptr,
            len,
            id,
            routes: RouteCache::default(),
            fast,
            _elem: PhantomData,
        }
    }

    fn state(&self) -> &Arc<Inner> {
        self.inner.as_ref().expect("handle live until consumed")
    }

    /// The underlying shared pointer (for raw APIs and kernel parameters).
    pub fn ptr(&self) -> SharedPtr {
        self.ptr
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-element buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer extent in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len as u64 * T::SIZE as u64
    }

    /// Shared pointer to element `i` (for sub-range kernel parameters).
    ///
    /// # Panics
    /// Panics when `i > len` (one-past-the-end is allowed, like slices).
    pub fn element(&self, i: usize) -> SharedPtr {
        assert!(i <= self.len, "element {i} out of {} elements", self.len);
        self.ptr.index(i as u64, T::SIZE as u64)
    }

    /// Reads element `i` through the coherence protocol.
    ///
    /// On the mmap backend, a read of a block the CPU already holds
    /// (ReadOnly or Dirty) is a plain host load — no lock, no page-table
    /// walk, no protection check (the real `mprotect` mapping *is* the
    /// check). Anything else falls back to the checked path, which faults
    /// and fetches exactly as on the table-walk backend.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn read(&self, i: usize) -> GmacResult<T> {
        assert!(i < self.len, "element {i} out of {} elements", self.len);
        if T::RAW_COMPAT {
            if let Some(view) = &self.fast {
                if let Some(value) = view.read::<T>(i as u64 * T::SIZE as u64) {
                    return Ok(value);
                }
            }
        }
        self.state().load(&self.routes, self.element(i))
    }

    /// Writes element `i` through the coherence protocol.
    ///
    /// On the mmap backend, a write to an already-Dirty block is a plain
    /// host store (see [`Self::read`]); first touches still take the
    /// fault-and-dirty path.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn write(&self, i: usize, value: T) -> GmacResult<()> {
        assert!(i < self.len, "element {i} out of {} elements", self.len);
        if T::RAW_COMPAT {
            if let Some(view) = &self.fast {
                if view.write::<T>(i as u64 * T::SIZE as u64, value) {
                    return Ok(());
                }
            }
        }
        self.state().store(&self.routes, self.element(i), value)
    }

    /// Reads the whole buffer.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    pub fn read_slice(&self) -> GmacResult<Vec<T>> {
        self.state().load_slice(&self.routes, self.ptr, self.len)
    }

    /// Reads `n` elements starting at element `start`.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    ///
    /// # Panics
    /// Panics when `start + n > len`.
    pub fn read_slice_at(&self, start: usize, n: usize) -> GmacResult<Vec<T>> {
        assert!(
            start.checked_add(n).is_some_and(|end| end <= self.len),
            "range {start}..{} out of {} elements",
            start + n,
            self.len
        );
        self.state()
            .load_slice(&self.routes, self.element(start), n)
    }

    /// Writes `values` starting at element 0.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    ///
    /// # Panics
    /// Panics when `values.len() > len`.
    pub fn write_slice(&self, values: &[T]) -> GmacResult<()> {
        self.write_slice_at(0, values)
    }

    /// Writes `values` starting at element `start`.
    ///
    /// # Errors
    /// Propagates fault/transfer failures.
    ///
    /// # Panics
    /// Panics when the range spills past the end of the buffer.
    pub fn write_slice_at(&self, start: usize, values: &[T]) -> GmacResult<()> {
        assert!(
            start
                .checked_add(values.len())
                .is_some_and(|end| end <= self.len),
            "range {start}..{} out of {} elements",
            start + values.len(),
            self.len
        );
        self.state()
            .store_slice(&self.routes, self.element(start), values)
    }

    /// Explicitly frees the buffer (`adsmFree`), surfacing errors the RAII
    /// drop would swallow.
    ///
    /// # Errors
    /// [`crate::GmacError::ObjectInUse`] when a pending call references the
    /// object. The object then stays alive (nothing is charged); save
    /// [`Self::ptr`] beforehand and free it through
    /// [`Session::free`](crate::Session::free) after syncing.
    pub fn free(mut self) -> GmacResult<()> {
        let inner = self.inner.take().expect("handle live until consumed");
        // One attempt only: on failure the object stays alive (nothing was
        // charged) and Drop sees a disarmed handle, so there is no racy
        // second free against a possibly-reused address.
        inner.free_exact(self.ptr, self.id)
    }

    /// Releases ownership without freeing: returns the raw pointer and
    /// leaves the object alive for manual management via
    /// [`Session::free`](crate::Session::free).
    pub fn into_raw(mut self) -> SharedPtr {
        self.inner = None; // disarm Drop
        self.ptr
    }
}

impl<T: Scalar> Drop for Shared<T> {
    fn drop(&mut self) {
        // Best-effort adsmFree. An object referenced by a pending call (or
        // already freed through a raw alias) is left as-is: `State::free`
        // charges nothing on failure, so the ledger stays consistent.
        if let Some(inner) = self.inner.take() {
            let _ = inner.free_exact(self.ptr, self.id);
        }
    }
}

impl<T: Scalar> From<&Shared<T>> for Param {
    fn from(buf: &Shared<T>) -> Self {
        Param::Shared(buf.ptr())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GmacConfig, Protocol};
    use crate::error::GmacError;
    use crate::ptr::Param;
    use crate::Gmac;
    use hetsim::{DeviceId, LaunchDims, Platform};

    fn gmac(protocol: Protocol) -> Gmac {
        Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default().protocol(protocol),
        )
    }

    #[test]
    fn element_roundtrip_all_protocols() {
        for protocol in Protocol::ALL {
            let g = gmac(protocol);
            let s = g.session();
            let v = s.alloc_typed::<u32>(1000).unwrap();
            assert_eq!(v.len(), 1000);
            assert!(!v.is_empty());
            assert_eq!(v.size_bytes(), 4000);
            v.write(999, 0xDEAD).unwrap();
            v.write(0, 7).unwrap();
            assert_eq!(v.read(999).unwrap(), 0xDEAD, "{protocol}");
            assert_eq!(v.read(0).unwrap(), 7);
        }
    }

    #[test]
    fn slice_roundtrip_and_subranges() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<f32>(512).unwrap();
        let data: Vec<f32> = (0..512).map(|i| i as f32 * 0.5).collect();
        v.write_slice(&data).unwrap();
        assert_eq!(v.read_slice().unwrap(), data);
        assert_eq!(v.read_slice_at(100, 4).unwrap(), &data[100..104]);
        v.write_slice_at(200, &[9.0, 9.5]).unwrap();
        assert_eq!(v.read_slice_at(199, 4).unwrap()[1..3], [9.0, 9.5]);
    }

    #[test]
    fn raii_drop_frees_the_object() {
        let g = gmac(Protocol::Lazy);
        let s = g.session();
        {
            let _v = s.alloc_typed::<u64>(64).unwrap();
            assert_eq!(g.object_count(), 1);
        }
        assert_eq!(g.object_count(), 0, "drop performed adsmFree");
    }

    #[test]
    fn explicit_free_and_into_raw() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<u8>(4096).unwrap();
        v.free().unwrap();
        assert_eq!(g.object_count(), 0);

        let v = s.safe_alloc_typed::<u8>(4096).unwrap();
        let raw = v.into_raw();
        assert_eq!(g.object_count(), 1, "into_raw leaves the object alive");
        s.free(raw).unwrap();
    }

    #[test]
    fn drop_while_pending_leaves_object_alive() {
        let g = gmac(Protocol::Rolling);
        g.with_platform(|p| p.register_kernel(std::sync::Arc::new(crate::testutil::NopKernel)));
        let s = g.session();
        let v = s.alloc_typed::<u32>(1024).unwrap();
        v.write(0, 3).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[Param::from(&v)])
            .unwrap();
        match v.free() {
            Err(GmacError::ObjectInUse { dev, .. }) => assert_eq!(dev, DeviceId(0)),
            other => panic!("expected ObjectInUse, got {other:?}"),
        }
        // free() consumed the handle; the raw object survives until synced.
        assert_eq!(g.object_count(), 1);
        s.sync().unwrap();
    }

    #[test]
    fn stale_drop_after_manual_free_and_address_reuse_is_inert() {
        // Regression: free the object through the raw API behind the
        // handle's back, let a new allocation reuse the address (first-fit
        // allocator), then drop the stale handle — the new object must
        // survive (frees are identity-checked, not address-checked).
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<f32>(1024).unwrap();
        let addr = v.ptr();
        s.free(addr).unwrap();
        let reused = s.alloc(4096).unwrap();
        assert_eq!(reused.addr(), addr.addr(), "first-fit reuses the window");
        drop(v);
        assert_eq!(g.object_count(), 1, "stale drop must not free the reuse");
        s.free(reused).unwrap();
    }

    #[test]
    fn alloc_on_bogus_affinity_charges_nothing() {
        // Regression: a failed allocation (unknown device from an unchecked
        // session affinity) must not desync the time ledger.
        let g = gmac(Protocol::Rolling);
        let s9 = g.session_on(DeviceId(9));
        let before = g.ledger().total();
        assert!(s9.alloc(4096).is_err());
        assert!(s9.safe_alloc(4096).is_err());
        assert!(s9.alloc_typed::<f32>(16).is_err());
        assert_eq!(g.ledger().total(), before, "failed allocs charge nothing");
        assert_eq!(g.device_count(), 1);
    }

    #[test]
    fn failed_call_charges_nothing_and_skips_release() {
        // Regression: a call on a bogus device / with an unknown kernel must
        // neither charge Launch time nor half-run the protocol release.
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<f32>(64).unwrap();
        v.write(0, 1.0).unwrap();
        let dirty_before = g.dirty_block_count();
        let ledger_before = g.session().ledger().total();
        assert!(s
            .call(
                "no-such-kernel",
                hetsim::LaunchDims::for_elements(1, 1),
                &[]
            )
            .is_err());
        assert!(g
            .session_on(DeviceId(9))
            .call("nop", hetsim::LaunchDims::for_elements(1, 1), &[])
            .is_err());
        assert_eq!(g.session().ledger().total(), ledger_before);
        assert_eq!(
            g.dirty_block_count(),
            dirty_before,
            "release must not have run"
        );
        // Session::gmac shares the same state.
        assert_eq!(s.gmac().object_count(), g.object_count());
    }

    #[test]
    fn typed_buffer_as_kernel_param() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<f32>(16).unwrap();
        assert_eq!(Param::from(&v), Param::Shared(v.ptr()));
        assert_eq!(v.element(16), v.ptr().byte_add(64), "one-past-end allowed");
    }

    #[test]
    #[should_panic(expected = "out of 16 elements")]
    fn out_of_bounds_read_panics() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let v = s.alloc_typed::<f32>(16).unwrap();
        let _ = v.read(16);
    }
}
