//! Runtime configuration: protocol choice, block geometry, rolling size and
//! cost model, selectable at context creation — the paper selects these "at
//! application load time" (§4.3).

use hetsim::Nanos;
use softmmu::PAGE_SIZE;

/// Which memory-coherence protocol the runtime uses (paper §4.3, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// Pure write-invalidate: everything moves at call/return.
    Batch,
    /// Page-protection detection, whole-object transfers.
    Lazy,
    /// Lazy + fixed-size blocks + bounded dirty set with eager eviction.
    #[default]
    Rolling,
}

impl Protocol {
    /// All protocols, in the paper's presentation order.
    pub const ALL: [Protocol; 3] = [Protocol::Batch, Protocol::Lazy, Protocol::Rolling];

    /// Display label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Batch => "GMAC Batch",
            Protocol::Lazy => "GMAC Lazy",
            Protocol::Rolling => "GMAC Rolling",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the shared-memory manager locates the block containing a faulting
/// address (paper §5.2: GMAC keeps blocks in a balanced binary tree,
/// `O(log2 n)`; the linear alternative exists for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LookupKind {
    /// Ordered-tree lookup, `O(log n)` — the paper's choice.
    #[default]
    Tree,
    /// Linear scan, `O(n)` — ablation baseline.
    Linear,
}

/// Which Accelerator Abstraction Layer flavour to model (paper §4.1/§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AalLayer {
    /// CUDA Run-Time layer: pays a one-time CUDA context initialisation at
    /// first use (the paper uses this flavour when comparing against CUDA).
    Runtime,
    /// CUDA Driver layer: full control, no hidden initialisation (the paper
    /// uses this flavour for the execution-time break-down).
    #[default]
    Driver,
}

/// Victim-selection policy when a shard must evict resident objects to make
/// room for a new allocation (see [`GmacConfig::evict`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictPolicy {
    /// Evict the least-recently-touched resident object first (exact LRU
    /// over per-object last-touch stamps fed by the access fast path and
    /// call boundaries).
    #[default]
    Lru,
    /// Clock / second-chance: sweep a hand over resident objects, clearing
    /// reference bits and evicting the first object found unreferenced —
    /// the classic approximation that avoids a full stamp sort.
    Clock,
}

impl EvictPolicy {
    /// Display label used in reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            EvictPolicy::Lru => "lru",
            EvictPolicy::Clock => "clock",
        }
    }
}

impl std::fmt::Display for EvictPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Host-side bookkeeping costs of the GMAC library itself.
#[derive(Debug, Clone, PartialEq)]
pub struct GmacCosts {
    /// `adsmAlloc` bookkeeping (object registration, host mapping).
    pub alloc_base: Nanos,
    /// `adsmFree` bookkeeping.
    pub free_base: Nanos,
    /// Per shared object scanned at `adsmCall`.
    pub call_per_object: Nanos,
    /// Fixed `adsmSync` bookkeeping.
    pub sync_base: Nanos,
    /// Per-node cost of walking the block tree in the fault handler.
    pub lookup_tree_node: Nanos,
    /// Per-entry cost of a linear block scan in the fault handler.
    pub lookup_linear_entry: Nanos,
    /// One-time CUDA runtime initialisation (only with [`AalLayer::Runtime`]).
    pub cuda_init: Nanos,
}

impl Default for GmacCosts {
    fn default() -> Self {
        GmacCosts {
            alloc_base: Nanos::from_micros(8),
            free_base: Nanos::from_micros(5),
            call_per_object: Nanos::from_nanos(300),
            sync_base: Nanos::from_micros(2),
            lookup_tree_node: Nanos::from_nanos(60),
            lookup_linear_entry: Nanos::from_nanos(15),
            cuda_init: Nanos::from_millis(60),
        }
    }
}

/// GMAC runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GmacConfig {
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Rolling-update block size in bytes (multiple of the page size).
    pub block_size: u64,
    /// Adaptive rolling-size growth per allocation (paper default: 2 blocks).
    pub rolling_factor: usize,
    /// Fixed rolling size override (Figure 12 uses 1/2/4); `None` = adaptive.
    pub rolling_size: Option<usize>,
    /// Evict dirty blocks eagerly with asynchronous DMA (paper behaviour);
    /// `false` degrades to synchronous flush at call time (ablation).
    pub eager_eviction: bool,
    /// Coalesce adjacent/overlapping planned ranges of an object into single
    /// DMA jobs (fewer, larger transfers amortise the link latency — the
    /// §5.2 aggregation lever); `false` issues one job per block (ablation
    /// baseline matching the pre-planner behaviour).
    pub coalescing: bool,
    /// Block-lookup structure used by the fault handler.
    pub lookup: LookupKind,
    /// Accelerator Abstraction Layer flavour.
    pub aal: AalLayer,
    /// Shard the runtime per accelerator (the default): sessions driving
    /// different devices take independent locks and genuinely overlap in
    /// wall-clock time. `false` restores the PR-2-era *global-lock* mode —
    /// every operation additionally serialises on one process-wide mutex —
    /// kept as the ablation baseline for the contention benchmark. The two
    /// modes run identical code paths, so results are byte-identical; only
    /// wall-clock concurrency differs.
    pub sharding: bool,
    /// Enable the access fast path (the default): the softmmu's
    /// direct-mapped TLB, each shard's one-entry object memo and the
    /// per-session route memo. `false` is the ablation baseline paying a
    /// full radix-table walk, manager search and registry route on every
    /// access. The caches are wall-clock-only: digests, virtual times and
    /// ledgers are **byte-identical** between modes (the `hotpath` bench and
    /// ablation test enforce this), mirroring [`GmacConfig::sharding`].
    pub tlb: bool,
    /// Execute host-to-device DMA jobs on background worker threads (the
    /// default): transfer plans are built and virtually charged under the
    /// shard lock, but the wall-clock byte landing happens on a per-device
    /// worker, so CPU produce genuinely overlaps transfer execution.
    /// `false` is the ablation baseline executing every job inline over the
    /// same plan code paths. The engine is wall-clock-only: digests, virtual
    /// times and ledgers are **byte-identical** between modes (the `overlap`
    /// bench and the `async_dma` ablation test enforce this), mirroring
    /// [`GmacConfig::sharding`] and [`GmacConfig::tlb`].
    pub async_dma: bool,
    /// Back the unified address space with a real anonymous host mapping
    /// (the default, Linux): each shard's softmmu reserves
    /// [`GmacConfig::mmap_reserve`] bytes `PROT_NONE` up front, commits
    /// pages and applies block protection with real `mprotect`, and hands
    /// out raw host pointers so a typed access on an accessible block is a
    /// plain load/store with **zero instrumentation** on the hit path (the
    /// paper's actual §4.2 mechanism). `false` is the portable table-walk
    /// ablation baseline (one boxed frame per page, every access
    /// software-checked). If the host reservation fails (non-Linux, no
    /// address space), the runtime **degrades gracefully** to table-walk
    /// and reports it via [`crate::Report::backing_downgraded`] — it never
    /// panics. The backend is wall-clock-only: digests, virtual times and
    /// ledgers are **byte-identical** between modes (the `hotpath` bench
    /// and the `mmap_backing` ablation test enforce this), mirroring
    /// [`GmacConfig::sharding`], [`GmacConfig::tlb`] and
    /// [`GmacConfig::async_dma`].
    pub mmap_backing: bool,
    /// Host virtual address space (bytes) each shard's mmap backing reserves
    /// up front (committed lazily, 1 GiB chunks). Only consulted with
    /// [`GmacConfig::mmap_backing`] on.
    pub mmap_reserve: u64,
    /// Run [`crate::Service`] jobs through the queued multi-tenant pipeline
    /// (the default): submissions land in a bounded deficit-weighted fair
    /// queue, a placer thread routes each job to the least-loaded device,
    /// and one worker per device executes it — device contention becomes
    /// queueing (or an explicit [`crate::GmacError::Admission`]), never a
    /// client-visible [`crate::GmacError::DeviceBusy`]. `false` is the
    /// ablation baseline running every submitted job inline on the
    /// submitting thread over the same placement and accounting code. The
    /// service is wall-clock-only: digests, virtual times and per-category
    /// ledgers are **byte-identical** between modes for a serialized run
    /// (the `service` ablation test enforces this), mirroring
    /// [`GmacConfig::sharding`], [`GmacConfig::tlb`],
    /// [`GmacConfig::async_dma`] and [`GmacConfig::mmap_backing`].
    pub service: bool,
    /// Capacity (jobs) of the service layer's bounded fair queue; a full
    /// queue refuses further submissions with
    /// [`crate::GmacError::Admission`] carrying a retry-after hint.
    pub service_queue_depth: usize,
    /// Treat device memory as a cache over host memory (the default): when
    /// an allocation does not fit, the shard evicts cold *unpinned* resident
    /// objects back to host (D2H through the ordinary plan/execute
    /// machinery, then the device range is released to the first-fit
    /// allocator) and retries, re-fetching lazily on the next
    /// `adsmCall`/access that needs them. Objects referenced by a pending
    /// call are never victims, and an object is never evicted while a
    /// transfer on it is in flight (in-flight DMA makes it a victim of last
    /// resort, joined before eviction). `false` is the
    /// ablation baseline: allocation pressure surfaces immediately as
    /// [`crate::GmacError::DeviceOom`]. Eviction bookkeeping (touch stamps)
    /// is wall-clock-only; the eviction machinery itself charges virtual
    /// time only on the out-of-memory path, so when capacity suffices the
    /// two modes are **byte-identical** in virtual time, mirroring the
    /// other ablation toggles.
    pub evict: bool,
    /// Victim-selection policy used when [`GmacConfig::evict`] is on.
    pub evict_policy: EvictPolicy,
    /// Enable the coherence race detector (default **off**): per-block
    /// vector clocks — one CPU epoch per session plus one kernel epoch per
    /// device, advanced at `adsmCall`/`adsmSync` boundaries — catch the
    /// accesses the paper's consistency model (§3) forbids:
    /// CPU-writes-while-a-kernel-may-read, launches over another session's
    /// unsynced writes, and cross-session writes to call-referenced objects
    /// (see [`crate::race`]). Violations surface as
    /// [`crate::GmacError::RaceDetected`] (or, with
    /// [`GmacConfig::race_report`], as a non-fatal log in
    /// [`crate::Report`]). The detector makes **no virtual-time charges**:
    /// on a race-free run, digests, elapsed time and per-category ledgers
    /// are byte-identical with the detector on or off (the race ablation
    /// tests enforce this), mirroring every other toggle; the wall-clock
    /// cost is recorded in `results/BENCH_race.json`.
    pub race_check: bool,
    /// With [`GmacConfig::race_check`] on, sink detections into
    /// [`crate::Report`] instead of failing the offending operation: the
    /// access/launch completes normally and the violation is logged with
    /// full object+offset+epoch diagnostics. Default off (error mode).
    pub race_report: bool,
    /// Simulated host-memory budget (bytes) per shard for evicted object
    /// images. When the bytes evicted-to-host on one shard exceed this,
    /// the coldest evicted images spill write-behind to `hetsim`'s disk
    /// tier (priced as file I/O in the virtual ledger) and are read back
    /// at re-fetch. `None` (the default) models an unconstrained host:
    /// nothing ever spills.
    pub host_capacity: Option<u64>,
    /// Library bookkeeping costs.
    pub costs: GmacCosts,
}

impl Default for GmacConfig {
    fn default() -> Self {
        GmacConfig {
            protocol: Protocol::Rolling,
            block_size: 256 * 1024,
            rolling_factor: 2,
            rolling_size: None,
            eager_eviction: true,
            coalescing: true,
            lookup: LookupKind::Tree,
            aal: AalLayer::Driver,
            sharding: true,
            tlb: true,
            async_dma: true,
            mmap_backing: true,
            mmap_reserve: 64 << 30,
            service: true,
            service_queue_depth: 1024,
            evict: true,
            evict_policy: EvictPolicy::Lru,
            race_check: false,
            race_report: false,
            host_capacity: None,
            costs: GmacCosts::default(),
        }
    }
}

impl GmacConfig {
    /// Validated constructor (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the coherence protocol.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the rolling block size.
    ///
    /// # Panics
    /// Panics if `block_size` is zero or not a multiple of the page size
    /// (protection is per page; see `softmmu`).
    pub fn block_size(mut self, block_size: u64) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(PAGE_SIZE),
            "block size must be a positive multiple of the {PAGE_SIZE}-byte page"
        );
        self.block_size = block_size;
        self
    }

    /// Fixes the rolling size (maximum dirty blocks) instead of the adaptive
    /// default.
    pub fn rolling_size(mut self, blocks: usize) -> Self {
        self.rolling_size = Some(blocks.max(1));
        self
    }

    /// Sets the adaptive rolling-size growth factor.
    pub fn rolling_factor(mut self, factor: usize) -> Self {
        self.rolling_factor = factor.max(1);
        self
    }

    /// Enables or disables eager asynchronous eviction.
    pub fn eager_eviction(mut self, on: bool) -> Self {
        self.eager_eviction = on;
        self
    }

    /// Enables or disables dirty-range coalescing in the transfer planner.
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Selects the block-lookup structure.
    pub fn lookup(mut self, lookup: LookupKind) -> Self {
        self.lookup = lookup;
        self
    }

    /// Selects the AAL flavour.
    pub fn aal(mut self, aal: AalLayer) -> Self {
        self.aal = aal;
        self
    }

    /// Enables or disables the per-device sharded runtime (`false` =
    /// global-lock ablation mode; see [`GmacConfig::sharding`]).
    pub fn sharding(mut self, on: bool) -> Self {
        self.sharding = on;
        self
    }

    /// Enables or disables the access fast path — software TLB, shard
    /// object memo and session route memo (`false` = slow-path ablation
    /// mode; see [`GmacConfig::tlb`]).
    pub fn tlb(mut self, on: bool) -> Self {
        self.tlb = on;
        self
    }

    /// Enables or disables the background DMA engine (`false` = synchronous
    /// inline ablation mode; see [`GmacConfig::async_dma`]).
    pub fn async_dma(mut self, on: bool) -> Self {
        self.async_dma = on;
        self
    }

    /// Enables or disables the mmap-backed address space (`false` =
    /// table-walk ablation mode; see [`GmacConfig::mmap_backing`]).
    pub fn mmap_backing(mut self, on: bool) -> Self {
        self.mmap_backing = on;
        self
    }

    /// Sets the per-shard host reservation size for the mmap backing.
    pub fn mmap_reserve(mut self, bytes: u64) -> Self {
        self.mmap_reserve = bytes;
        self
    }

    /// Enables or disables the queued service pipeline (`false` = inline
    /// ablation mode; see [`GmacConfig::service`]).
    pub fn service(mut self, on: bool) -> Self {
        self.service = on;
        self
    }

    /// Sets the service queue capacity (clamped ≥ 1; see
    /// [`GmacConfig::service_queue_depth`]).
    pub fn service_queue_depth(mut self, jobs: usize) -> Self {
        self.service_queue_depth = jobs.max(1);
        self
    }

    /// Enables or disables device-memory-as-a-cache eviction (`false` =
    /// fail-fast [`crate::GmacError::DeviceOom`] ablation mode; see
    /// [`GmacConfig::evict`]).
    pub fn evict(mut self, on: bool) -> Self {
        self.evict = on;
        self
    }

    /// Selects the eviction victim policy (see [`GmacConfig::evict_policy`]).
    pub fn evict_policy(mut self, policy: EvictPolicy) -> Self {
        self.evict_policy = policy;
        self
    }

    /// Enables or disables the coherence race detector (see
    /// [`GmacConfig::race_check`]; default off).
    pub fn race_check(mut self, on: bool) -> Self {
        self.race_check = on;
        self
    }

    /// Selects sink mode for the race detector: log violations in
    /// [`crate::Report`] instead of erroring (see
    /// [`GmacConfig::race_report`]).
    pub fn race_report(mut self, on: bool) -> Self {
        self.race_report = on;
        self
    }

    /// Sets the simulated per-shard host budget for evicted images; beyond
    /// it, cold images spill to the disk tier (see
    /// [`GmacConfig::host_capacity`]).
    pub fn host_capacity(mut self, bytes: u64) -> Self {
        self.host_capacity = Some(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = GmacConfig::default();
        assert_eq!(c.protocol, Protocol::Rolling);
        assert_eq!(
            c.rolling_factor, 2,
            "paper: default growth of 2 blocks per allocation"
        );
        assert_eq!(c.rolling_size, None, "adaptive by default");
        assert!(c.eager_eviction);
        assert!(c.coalescing, "transfer coalescing is the default behaviour");
        assert!(c.sharding, "per-device sharding is the default behaviour");
        assert!(c.tlb, "the access fast path is the default behaviour");
        assert!(c.async_dma, "the background DMA engine is the default");
        assert!(
            c.mmap_backing,
            "the mmap-backed address space is the default"
        );
        assert_eq!(c.mmap_reserve, 64 << 30);
        assert!(c.service, "the queued service pipeline is the default");
        assert_eq!(c.service_queue_depth, 1024);
        assert!(c.evict, "device-memory-as-a-cache eviction is the default");
        assert_eq!(c.evict_policy, EvictPolicy::Lru);
        assert_eq!(c.host_capacity, None, "unconstrained host by default");
        assert!(!c.race_check, "race detection is opt-in");
        assert!(!c.race_report, "error mode is the race-check default");
        assert_eq!(c.lookup, LookupKind::Tree);
        assert_eq!(c.block_size % PAGE_SIZE, 0);
    }

    #[test]
    fn builder_chains() {
        let c = GmacConfig::new()
            .protocol(Protocol::Lazy)
            .block_size(64 * 1024)
            .rolling_size(4)
            .rolling_factor(3)
            .eager_eviction(false)
            .coalescing(false)
            .lookup(LookupKind::Linear)
            .aal(AalLayer::Runtime)
            .sharding(false)
            .tlb(false)
            .async_dma(false)
            .mmap_backing(false)
            .mmap_reserve(8 << 30)
            .service(false)
            .service_queue_depth(16)
            .evict(false)
            .evict_policy(EvictPolicy::Clock)
            .race_check(true)
            .race_report(true)
            .host_capacity(32 << 20);
        assert!(c.race_check);
        assert!(c.race_report);
        assert!(!c.evict);
        assert_eq!(c.evict_policy, EvictPolicy::Clock);
        assert_eq!(c.host_capacity, Some(32 << 20));
        assert!(!c.service);
        assert_eq!(c.service_queue_depth, 16);
        assert!(!c.sharding);
        assert!(!c.tlb);
        assert!(!c.async_dma);
        assert!(!c.mmap_backing);
        assert_eq!(c.mmap_reserve, 8 << 30);
        assert_eq!(c.protocol, Protocol::Lazy);
        assert_eq!(c.block_size, 64 * 1024);
        assert_eq!(c.rolling_size, Some(4));
        assert_eq!(c.rolling_factor, 3);
        assert!(!c.eager_eviction);
        assert!(!c.coalescing);
        assert_eq!(c.lookup, LookupKind::Linear);
        assert_eq!(c.aal, AalLayer::Runtime);
    }

    #[test]
    #[should_panic(expected = "block size must be")]
    fn rejects_unaligned_block_size() {
        GmacConfig::new().block_size(1000);
    }

    #[test]
    fn rolling_size_clamped_to_one() {
        assert_eq!(GmacConfig::new().rolling_size(0).rolling_size, Some(1));
    }

    #[test]
    fn service_queue_depth_clamped_to_one() {
        assert_eq!(
            GmacConfig::new().service_queue_depth(0).service_queue_depth,
            1
        );
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(Protocol::Batch.label(), "GMAC Batch");
        assert_eq!(Protocol::Rolling.to_string(), "GMAC Rolling");
        assert_eq!(Protocol::ALL.len(), 3);
    }

    #[test]
    fn evict_policy_labels() {
        assert_eq!(EvictPolicy::Lru.to_string(), "lru");
        assert_eq!(EvictPolicy::Clock.label(), "clock");
        assert_eq!(EvictPolicy::default(), EvictPolicy::Lru);
    }
}
