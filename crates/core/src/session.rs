//! Per-thread session handles over the shared [`Gmac`](crate::Gmac)
//! runtime (paper Table 1 plus the `adsmSafeAlloc`/`adsmSafe` extension of
//! §4.2).
//!
//! | paper call | method |
//! |---|---|
//! | `adsmAlloc(size)` | [`Session::alloc`] |
//! | `adsmFree(addr)` | [`Session::free`] |
//! | `adsmCall(kernel)` | [`Session::call`] |
//! | `adsmSync()` | [`Session::sync`] |
//! | `adsmSafeAlloc(size)` | [`Session::safe_alloc`] |
//! | `adsmSafe(address)` | [`Session::translate`] |
//!
//! A [`Session`] is the ADSM "execution thread" view (§3.2): each host
//! thread holds its own handle, with its own accelerator affinity and its
//! own pending-call identity. The runtime below is **sharded per device**
//! (see [`crate::shard`]): an operation routes its pointer through the
//! read-mostly registry and locks only the home accelerator's shard, so two
//! sessions driving two accelerators overlap in wall-clock terms, not just
//! in virtual time. Two sessions racing for one accelerator get a clean
//! [`crate::GmacError::DeviceBusy`] instead of silent serialization.

use crate::config::GmacConfig;
use crate::error::GmacResult;
use crate::gmac::{Inner, RouteCache};
use crate::object::SharedObject;
use crate::ptr::{Param, SharedPtr};
use crate::runtime::Counters;
use crate::typed::Shared;
use hetsim::{DevAddr, DeviceId, LaunchDims, Platform, TimeLedger, TransferLedger};
use softmmu::Scalar;
use std::fmt;
use std::sync::Arc;

/// Identity of a session: allocated by the runtime, carried by every
/// pending call so syncs and busy-device errors can be attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session #{}", self.0)
    }
}

/// The slice of session state the shared runtime needs to attribute an
/// operation: identity + scheduler affinity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionView {
    pub(crate) id: SessionId,
    pub(crate) affinity: Option<DeviceId>,
}

/// A per-thread handle on the shared GMAC runtime.
///
/// Sessions are cheap (one `Arc` + two words) and `Send`: create one per
/// host thread with [`crate::Gmac::session`] or pin one to an accelerator
/// with [`crate::Gmac::session_on`]. All methods take `&self`; operations
/// lock only the device shard they touch.
///
/// ```
/// use gmac::{Gmac, GmacConfig};
/// use hetsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gmac = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
/// let session = gmac.session();
///
/// // adsmAlloc: ONE pointer, valid on both the CPU and the accelerator.
/// let v = session.alloc(1 << 20)?;
/// session.store_slice::<f32>(v, &vec![1.0; 1024])?;
/// assert_eq!(session.load::<f32>(v)?, 1.0);
/// session.free(v)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    inner: Arc<Inner>,
    view: SessionView,
    /// Per-session route memo (see [`crate::GmacConfig::tlb`]): tight
    /// access loops skip the registry `RwLock` + B-tree walk entirely.
    routes: RouteCache,
}

impl Session {
    pub(crate) fn new(inner: Arc<Inner>, view: SessionView) -> Self {
        Session {
            inner,
            view,
            routes: RouteCache::default(),
        }
    }

    pub(crate) fn state(&self) -> &Arc<Inner> {
        &self.inner
    }

    /// A runtime handle sharing this session's state — the single home of
    /// the introspection surface (the `Session` mirrors below are
    /// conveniences forwarding to the same runtime).
    pub fn gmac(&self) -> crate::Gmac {
        crate::Gmac::from_state(Arc::clone(&self.inner))
    }

    /// This session's identity.
    pub fn id(&self) -> SessionId {
        self.view.id
    }

    /// The accelerator this session is pinned to, if any.
    pub fn affinity(&self) -> Option<DeviceId> {
        self.view.affinity
    }

    // ----- allocation (Table 1) --------------------------------------------

    /// `adsmAlloc(size)`: allocates a shared object and returns the single
    /// pointer valid on both the CPU and the accelerator. Placement follows
    /// the session affinity, falling back to the scheduler policy.
    ///
    /// # Errors
    /// [`crate::GmacError::AddressCollision`] when the host virtual range matching
    /// the accelerator range is taken (use [`Self::safe_alloc`]); propagates
    /// device out-of-memory.
    pub fn alloc(&self, size: u64) -> GmacResult<SharedPtr> {
        self.inner.note_identity(self.view);
        self.inner.alloc(self.view, size)
    }

    /// [`Self::alloc`] pinned to a specific accelerator.
    ///
    /// # Errors
    /// Same as [`Self::alloc`].
    pub fn alloc_on(&self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.inner.note_identity(self.view);
        self.inner.alloc_on(dev, size)
    }

    /// `adsmSafeAlloc(size)`: allocates a shared object whose CPU pointer is
    /// *not* numerically equal to the accelerator address — the fallback for
    /// platforms where device ranges collide (multi-GPU, §4.2). Kernels need
    /// [`Self::translate`] (the runtime performs it automatically for
    /// [`Param::Shared`] parameters).
    ///
    /// # Errors
    /// Propagates device out-of-memory and MMU failures.
    pub fn safe_alloc(&self, size: u64) -> GmacResult<SharedPtr> {
        self.inner.note_identity(self.view);
        self.inner.safe_alloc(self.view, size)
    }

    /// [`Self::safe_alloc`] pinned to a specific accelerator.
    ///
    /// # Errors
    /// Same as [`Self::safe_alloc`].
    pub fn safe_alloc_on(&self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.inner.note_identity(self.view);
        self.inner.safe_alloc_on(dev, size)
    }

    /// Typed `adsmAlloc`: `n` elements of `T`, wrapped in a RAII
    /// [`Shared<T>`] buffer with element-indexed accessors.
    ///
    /// # Errors
    /// Same as [`Self::alloc`].
    pub fn alloc_typed<T: Scalar>(&self, n: usize) -> GmacResult<Shared<T>> {
        self.inner.note_identity(self.view);
        let (ptr, id, fast) =
            self.inner
                .alloc_typed_raw(self.view, (n as u64) * T::SIZE as u64, false)?;
        Ok(Shared::new(Arc::clone(&self.inner), ptr, n, id, fast))
    }

    /// Typed `adsmSafeAlloc`: like [`Self::alloc_typed`] with a non-unified
    /// CPU pointer.
    ///
    /// # Errors
    /// Same as [`Self::safe_alloc`].
    pub fn safe_alloc_typed<T: Scalar>(&self, n: usize) -> GmacResult<Shared<T>> {
        self.inner.note_identity(self.view);
        let (ptr, id, fast) =
            self.inner
                .alloc_typed_raw(self.view, (n as u64) * T::SIZE as u64, true)?;
        Ok(Shared::new(Arc::clone(&self.inner), ptr, n, id, fast))
    }

    /// `adsmFree(addr)`: releases a shared object.
    ///
    /// # Errors
    /// [`crate::GmacError::NotShared`] if `ptr` is not a live shared object;
    /// [`crate::GmacError::ObjectInUse`] if a still-pending call references it
    /// (sync first). Failed frees charge no simulated time.
    pub fn free(&self, ptr: SharedPtr) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.free(ptr)
    }

    // ----- kernel execution (Table 1) --------------------------------------

    /// `adsmCall(kernel)`: releases shared objects to the accelerator and
    /// launches `kernel` asynchronously. Shared-pointer parameters are
    /// translated to device addresses automatically; the target accelerator
    /// comes from the parameter objects (or the session affinity for
    /// data-free kernels).
    ///
    /// # Errors
    /// Fails for unknown kernels, foreign pointers, parameters whose objects
    /// live on different accelerators, or — with [`crate::GmacError::DeviceBusy`] —
    /// a device already running another session's un-synced call.
    pub fn call(&self, kernel: &str, dims: LaunchDims, params: &[Param]) -> GmacResult<()> {
        self.call_annotated(kernel, dims, params, None)
    }

    /// [`Self::call`] with the §4.3 write-set annotation: `writes` names the
    /// shared objects the kernel may write. Objects *not* listed keep a
    /// CPU-valid state across the call, so reading them after [`Self::sync`]
    /// costs no transfer.
    ///
    /// # Errors
    /// Same as [`Self::call`].
    pub fn call_annotated(
        &self,
        kernel: &str,
        dims: LaunchDims,
        params: &[Param],
        writes: Option<&[SharedPtr]>,
    ) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner
            .call_annotated(self.view, kernel, dims, params, writes)
    }

    /// `adsmSync()`: blocks until every accelerator call this session has in
    /// flight finishes, acquiring the shared objects back for the CPU.
    ///
    /// # Errors
    /// [`crate::GmacError::NothingToSync`] when this session has no call
    /// outstanding.
    pub fn sync(&self) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.sync(self.view)
    }

    /// Joins only the call in flight on `dev` (which must belong to this
    /// session).
    ///
    /// # Errors
    /// [`crate::GmacError::NothingToSync`] when this session has no call pending on
    /// `dev`.
    pub fn sync_device(&self, dev: DeviceId) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.sync_device(self.view, dev)
    }

    /// `adsmSafe(address)`: translates a shared pointer to the accelerator
    /// address space (identity for unified allocations).
    ///
    /// # Errors
    /// [`crate::GmacError::NotShared`] for foreign pointers.
    pub fn translate(&self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        self.inner.translate(&self.routes, ptr)
    }

    // ----- transparent CPU access -------------------------------------------

    /// Typed load through the shared address space. Faults are resolved by
    /// the coherence protocol exactly like the paper's `SIGSEGV` handler.
    ///
    /// # Errors
    /// [`crate::GmacError::NotShared`] for foreign pointers; propagates transfer
    /// failures.
    pub fn load<T: Scalar>(&self, ptr: SharedPtr) -> GmacResult<T> {
        self.inner.load(&self.routes, ptr)
    }

    /// Typed store through the shared address space.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn store<T: Scalar>(&self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.store(&self.routes, ptr, value)
    }

    /// Loads `n` consecutive scalars. Equivalent to an element loop on the
    /// CPU: the first touch of each invalid block faults once and fetches
    /// that block.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn load_slice<T: Scalar>(&self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        self.inner.load_slice(&self.routes, ptr, n)
    }

    /// Stores consecutive scalars. Equivalent to an element loop on the CPU:
    /// the first touch of each non-dirty block faults once.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn store_slice<T: Scalar>(&self, ptr: SharedPtr, values: &[T]) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.store_slice(&self.routes, ptr, values)
    }

    // ----- bulk-memory interposition (§4.4) ---------------------------------

    /// Interposed `memset(ptr, value, len)` over shared memory: performed
    /// device-side (`cudaMemset`) — no page faults, no host staging copy.
    ///
    /// # Errors
    /// Fails for foreign pointers or out-of-object ranges.
    pub fn memset(&self, ptr: SharedPtr, value: u8, len: u64) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.memset(&self.routes, ptr, value, len)
    }

    /// Interposed `memcpy` from private host memory into shared memory.
    ///
    /// # Errors
    /// Fails for foreign pointers or out-of-object ranges.
    pub fn memcpy_in(&self, dst: SharedPtr, src: &[u8]) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.memcpy_in(&self.routes, dst, src)
    }

    /// Interposed `memcpy` from shared memory into private host memory.
    ///
    /// # Errors
    /// Fails for foreign pointers or out-of-object ranges.
    pub fn memcpy_out(&self, dst: &mut [u8], src: SharedPtr) -> GmacResult<()> {
        self.inner.memcpy_out(&self.routes, dst, src)
    }

    /// Interposed shared-to-shared `memcpy` (possibly across objects — and,
    /// since the shard redesign, across accelerators: objects homed on
    /// different devices are copied through an explicit two-shard
    /// transaction staged in host memory).
    ///
    /// # Errors
    /// Fails for foreign pointers or out-of-object ranges.
    pub fn memcpy(&self, dst: SharedPtr, src: SharedPtr, len: u64) -> GmacResult<()> {
        self.inner.note_identity(self.view);
        self.inner.memcpy(&self.routes, dst, src, len)
    }

    // ----- I/O interposition (§4.4) -----------------------------------------

    /// Interposed `read()`: reads up to `len` bytes from the simulated file
    /// `name` at `file_offset` directly into shared memory at `ptr`.
    /// Returns the number of bytes read (short at end-of-file).
    ///
    /// # Errors
    /// Fails for unknown files or foreign pointers.
    pub fn read_file_to_shared(
        &self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        self.inner.note_identity(self.view);
        self.inner
            .read_file_to_shared(&self.routes, name, file_offset, ptr, len)
    }

    /// Interposed `write()`: writes `len` bytes of shared memory at `ptr`
    /// into the simulated file `name` at `file_offset`. Returns bytes
    /// written.
    ///
    /// # Errors
    /// Fails for foreign pointers or platform errors.
    pub fn write_shared_to_file(
        &self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        self.inner
            .write_shared_to_file(&self.routes, name, file_offset, ptr, len)
    }

    // ----- introspection ----------------------------------------------------

    /// Whether this session has an accelerator call outstanding (on any
    /// device).
    pub fn has_pending_call(&self) -> bool {
        self.inner.has_pending_call(self.view)
    }

    /// Runs `f` over the simulated platform (kernel registration, file
    /// setup, clock queries). The platform is internally thread-safe; in
    /// global-lock ablation mode the closure must not call back into the
    /// session API (serial-gate deadlock).
    pub fn with_platform<R>(&self, f: impl FnOnce(&Platform) -> R) -> R {
        // Settle deferred fast-path time: the closure may read the clock.
        crate::fasttime::flush(&self.inner.platform);
        f(&self.inner.platform)
    }

    /// Execution-time ledger snapshot (Figure 10 categories).
    pub fn ledger(&self) -> TimeLedger {
        crate::fasttime::flush(&self.inner.platform);
        self.inner.platform.ledger()
    }

    /// Transfer-ledger snapshot (Figure 8 input).
    pub fn transfers(&self) -> TransferLedger {
        crate::fasttime::flush(&self.inner.platform);
        *self.inner.platform.transfers()
    }

    /// Runtime event counters (faults, fetches, evictions), summed over all
    /// device shards.
    pub fn counters(&self) -> Counters {
        self.inner.counters()
    }

    /// Active configuration (clone).
    pub fn config(&self) -> GmacConfig {
        self.inner.config().clone()
    }

    /// Virtual time elapsed since platform start.
    pub fn elapsed(&self) -> hetsim::Nanos {
        crate::fasttime::flush(&self.inner.platform);
        self.inner.platform.elapsed()
    }

    /// Number of live shared objects (all sessions).
    pub fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    /// Snapshot of the shared object containing `ptr` (diagnostics/tests).
    pub fn object_at(&self, ptr: SharedPtr) -> Option<SharedObject> {
        self.inner.object_at(ptr)
    }

    /// Number of blocks currently dirty, per the protocols' bookkeeping
    /// (summed over all device shards).
    pub fn dirty_block_count(&self) -> usize {
        self.inner.dirty_block_count()
    }

    /// Direct access to the runtime internals of **one device shard**
    /// (protocol ablation harnesses and tests). Not part of the stable API.
    /// Operates on the session's affinity device (device 0 without
    /// affinity); the shard lock is held for the duration of `f` and is not
    /// reentrant — do not call back into the session API (or drop `Shared`
    /// buffers) inside the closure.
    #[doc(hidden)]
    pub fn with_parts<R>(
        &self,
        f: impl FnOnce(
            &mut crate::runtime::Runtime,
            &mut crate::manager::Manager,
            &mut dyn crate::protocol::CoherenceProtocol,
        ) -> R,
    ) -> R {
        let dev = self.view.affinity.unwrap_or(DeviceId(0));
        let mut shard = self.inner.shard(dev);
        let crate::shard::DeviceShard {
            rt, mgr, protocol, ..
        } = &mut *shard;
        f(rt, mgr, protocol.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GmacConfig, Protocol};
    use crate::error::GmacError;
    use crate::Gmac;
    use hetsim::{Category, DeviceId, LaunchDims, Platform};

    fn gmac(protocol: Protocol) -> Gmac {
        Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default().protocol(protocol),
        )
    }

    #[test]
    fn table1_calls_roundtrip() {
        for protocol in Protocol::ALL {
            let g = gmac(protocol);
            let s = g.session();
            let p = s.alloc(64 * 1024).unwrap();
            s.store_slice::<u32>(p, &(0..1024).collect::<Vec<_>>())
                .unwrap();
            let back: Vec<u32> = s.load_slice(p, 1024).unwrap();
            assert_eq!(back, (0..1024).collect::<Vec<_>>(), "{protocol}");
            s.free(p).unwrap();
        }
    }

    #[test]
    fn sync_without_call_errors() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        assert!(matches!(s.sync(), Err(GmacError::NothingToSync)));
        assert!(matches!(
            s.sync_device(DeviceId(0)),
            Err(GmacError::NothingToSync)
        ));
    }

    #[test]
    fn free_of_foreign_pointer_charges_no_time() {
        let g = gmac(Protocol::Rolling);
        let s = g.session();
        let p = s.alloc(4096).unwrap();
        s.free(p).unwrap();
        let before = g.ledger().get(Category::Free);
        assert!(matches!(s.free(p), Err(GmacError::NotShared(_))));
        assert_eq!(
            g.ledger().get(Category::Free),
            before,
            "failed free must not desync the ledger"
        );
    }

    #[test]
    fn free_while_call_pending_is_rejected() {
        // Regression: freeing an object referenced by an un-synced call used
        // to silently tear down the mapping (and charge free time anyway).
        let g = gmac(Protocol::Rolling);
        g.with_platform(|p| p.register_kernel(std::sync::Arc::new(crate::testutil::NopKernel)));
        let s = g.session();
        let p = s.alloc(8192).unwrap();
        s.store::<u32>(p, 5).unwrap();
        s.call(
            "nop",
            LaunchDims::for_elements(1, 1),
            &[crate::ptr::Param::Shared(p)],
        )
        .unwrap();
        let ledger_before = g.ledger().total();
        match s.free(p) {
            Err(GmacError::ObjectInUse { dev, owner, .. }) => {
                assert_eq!(dev, DeviceId(0));
                assert_eq!(owner, s.id(), "error names the session that must sync");
            }
            other => panic!("expected ObjectInUse, got {other:?}"),
        }
        assert_eq!(
            g.ledger().total(),
            ledger_before,
            "rejected free must charge nothing"
        );
        assert_eq!(g.object_count(), 1, "object must stay alive");
        s.sync().unwrap();
        s.free(p).unwrap();
        assert_eq!(g.object_count(), 0);
    }

    #[test]
    fn second_session_on_busy_device_gets_device_busy() {
        let g = gmac(Protocol::Rolling);
        g.with_platform(|p| p.register_kernel(std::sync::Arc::new(crate::testutil::NopKernel)));
        let a = g.session_on(DeviceId(0));
        let b = g.session_on(DeviceId(0));
        let p = a.alloc(4096).unwrap();
        a.call(
            "nop",
            LaunchDims::for_elements(1, 1),
            &[crate::ptr::Param::Shared(p)],
        )
        .unwrap();
        match b.call("nop", LaunchDims::for_elements(1, 1), &[]) {
            Err(GmacError::DeviceBusy { dev, owner, .. }) => {
                assert_eq!(dev, DeviceId(0));
                assert_eq!(owner, a.id());
            }
            other => panic!("expected DeviceBusy, got {other:?}"),
        }
        assert!(a.has_pending_call());
        assert!(!b.has_pending_call());
        a.sync().unwrap();
        // The device is free again.
        b.call("nop", LaunchDims::for_elements(1, 1), &[]).unwrap();
        b.sync().unwrap();
    }

    #[test]
    fn same_session_stacks_calls_on_one_device() {
        let g = gmac(Protocol::Rolling);
        g.with_platform(|p| p.register_kernel(std::sync::Arc::new(crate::testutil::NopKernel)));
        let s = g.session_on(DeviceId(0));
        s.call("nop", LaunchDims::for_elements(1, 1), &[]).unwrap();
        s.call("nop", LaunchDims::for_elements(1, 1), &[]).unwrap();
        assert_eq!(g.pending_devices(), vec![DeviceId(0)]);
        s.sync().unwrap();
        assert!(g.pending_devices().is_empty());
    }

    #[test]
    fn affinity_places_allocations() {
        let g = Gmac::new(Platform::desktop_multi_gpu(2), GmacConfig::default());
        let s1 = g.session_on(DeviceId(1));
        let p = s1.safe_alloc(4096).unwrap();
        assert_eq!(s1.object_at(p).unwrap().device(), DeviceId(1));
        s1.free(p).unwrap();
    }
}
