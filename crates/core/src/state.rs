//! Coherence states for shared memory (paper Figure 6).

use softmmu::Protection;

/// State of a shared memory range from the CPU's perspective.
///
/// The paper's definition (§4.3):
/// * **Invalid** — the up-to-date copy is only in accelerator memory; it must
///   be transferred back if the CPU reads it after the kernel returns.
/// * **Dirty** — the CPU holds an updated copy that must be transferred to
///   the accelerator before the next kernel call.
/// * **ReadOnly** — CPU and accelerator hold the same version; no transfer is
///   needed before the next call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockState {
    /// Accelerator copy is newer; CPU access must fetch.
    Invalid,
    /// Both copies identical.
    #[default]
    ReadOnly,
    /// CPU copy is newer; must flush before the next kernel call.
    Dirty,
}

impl BlockState {
    /// The page protection that *detects* the accesses this state cares
    /// about, exactly as GMAC drives `mprotect` (§4.3): invalid faults on
    /// everything, read-only faults on writes, dirty never faults.
    pub fn protection(self) -> Protection {
        match self {
            BlockState::Invalid => Protection::None,
            BlockState::ReadOnly => Protection::ReadOnly,
            BlockState::Dirty => Protection::ReadWrite,
        }
    }

    /// Label used in traces and tests.
    pub fn label(self) -> &'static str {
        match self {
            BlockState::Invalid => "invalid",
            BlockState::ReadOnly => "read-only",
            BlockState::Dirty => "dirty",
        }
    }
}

impl std::fmt::Display for BlockState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_mapping_matches_paper() {
        assert_eq!(BlockState::Invalid.protection(), Protection::None);
        assert_eq!(BlockState::ReadOnly.protection(), Protection::ReadOnly);
        assert_eq!(BlockState::Dirty.protection(), Protection::ReadWrite);
    }

    #[test]
    fn default_is_read_only() {
        // Paper: "Shared data structures are initialized to a read-only
        // state when they are allocated."
        assert_eq!(BlockState::default(), BlockState::ReadOnly);
    }

    #[test]
    fn labels() {
        assert_eq!(BlockState::Invalid.to_string(), "invalid");
        assert_eq!(BlockState::Dirty.label(), "dirty");
    }
}
