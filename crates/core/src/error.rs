//! Error type for the GMAC runtime.

use cudart::CudaError;
use hetsim::SimError;
use softmmu::{MmuError, VAddr};
use std::error::Error;
use std::fmt;

/// Errors raised by the ADSM runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GmacError {
    /// A pointer does not fall inside any live shared object.
    NotShared(VAddr),
    /// The unified-address `mmap` trick failed because the host range is
    /// taken (the multi-accelerator case of paper §4.2); use
    /// [`crate::Context::safe_alloc`] instead.
    AddressCollision(VAddr),
    /// Kernel parameters reference objects on different accelerators.
    MixedDevices,
    /// `sync()` called with no outstanding accelerator call.
    NothingToSync,
    /// An access spans beyond the end of a shared object.
    OutOfObjectBounds {
        /// Object start.
        base: VAddr,
        /// Offending offset.
        offset: u64,
        /// Access length.
        len: u64,
    },
    /// A protection fault could not be resolved by the coherence protocol
    /// (a runtime bug; faults must not occur in batch-update, for example).
    UnresolvedFault(String),
    /// Underlying accelerator-API failure.
    Cuda(CudaError),
    /// Underlying platform failure.
    Sim(SimError),
    /// Underlying MMU failure that is not a recoverable protection fault.
    Mmu(MmuError),
}

impl fmt::Display for GmacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmacError::NotShared(a) => write!(f, "pointer {a} is not in a shared object"),
            GmacError::AddressCollision(a) => {
                write!(f, "host range at {a} already in use; use safe_alloc")
            }
            GmacError::MixedDevices => f.write_str("kernel parameters span multiple accelerators"),
            GmacError::NothingToSync => f.write_str("no accelerator call outstanding"),
            GmacError::OutOfObjectBounds { base, offset, len } => {
                write!(
                    f,
                    "access at {base}+{offset} length {len} exceeds the shared object"
                )
            }
            GmacError::UnresolvedFault(msg) => write!(f, "unresolved protection fault: {msg}"),
            GmacError::Cuda(e) => write!(f, "accelerator error: {e}"),
            GmacError::Sim(e) => write!(f, "platform error: {e}"),
            GmacError::Mmu(e) => write!(f, "mmu error: {e}"),
        }
    }
}

impl Error for GmacError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GmacError::Cuda(e) => Some(e),
            GmacError::Sim(e) => Some(e),
            GmacError::Mmu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CudaError> for GmacError {
    fn from(e: CudaError) -> Self {
        GmacError::Cuda(e)
    }
}

impl From<SimError> for GmacError {
    fn from(e: SimError) -> Self {
        GmacError::Sim(e)
    }
}

impl From<MmuError> for GmacError {
    fn from(e: MmuError) -> Self {
        GmacError::Mmu(e)
    }
}

/// Result alias for GMAC operations.
pub type GmacResult<T> = Result<T, GmacError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            GmacError::NotShared(VAddr(0x10)).to_string(),
            "pointer 0x10 is not in a shared object"
        );
        assert!(GmacError::AddressCollision(VAddr(0x2000))
            .to_string()
            .contains("safe_alloc"));
        let e = GmacError::OutOfObjectBounds {
            base: VAddr(0x1000),
            offset: 4096,
            len: 8,
        };
        assert!(e.to_string().contains("0x1000+4096"));
    }

    #[test]
    fn sources_chain() {
        let e = GmacError::from(SimError::NoSuchDevice(2));
        assert!(e.source().is_some());
        let e = GmacError::NothingToSync;
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GmacError>();
    }
}
