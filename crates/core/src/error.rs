//! Error type for the GMAC runtime.

use crate::session::SessionId;
use cudart::CudaError;
use hetsim::{DeviceId, Nanos, SimError};
use softmmu::{MmuError, VAddr};
use std::error::Error;
use std::fmt;

/// Errors raised by the ADSM runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GmacError {
    /// A pointer does not fall inside any live shared object.
    NotShared(VAddr),
    /// The unified-address `mmap` trick failed because the host range is
    /// taken (the multi-accelerator case of paper §4.2); use
    /// [`crate::Context::safe_alloc`] instead.
    AddressCollision(VAddr),
    /// Kernel parameters reference objects on different accelerators.
    MixedDevices,
    /// `sync()` called with no outstanding accelerator call.
    NothingToSync,
    /// A kernel call targeted a device that already has a call in flight
    /// from a *different* session; each accelerator runs at most one
    /// un-synced call at a time, so the owner must sync first.
    ///
    /// With the [service layer](crate::service) on, this error never reaches
    /// clients: contention becomes queueing (or an explicit
    /// [`GmacError::Admission`]) instead.
    DeviceBusy {
        /// The busy accelerator.
        dev: DeviceId,
        /// The session whose call is in flight.
        owner: SessionId,
        /// Machine-readable backoff hint: how long the in-flight call is
        /// expected to take to drain.
        retry_after: Nanos,
    },
    /// The service layer refused a job at submit time (see
    /// [`crate::service::admission`]). Carries a machine-readable
    /// retry-after hint so clients can back off instead of hammering.
    Admission {
        /// Why the job was refused.
        reason: AdmissionReason,
        /// Suggested backoff before resubmitting.
        retry_after: Nanos,
    },
    /// `free()` targeted a shared object referenced by a still-pending
    /// accelerator call. Freeing it would tear the mapping out from under
    /// the kernel (and desynchronise the time ledger); sync first.
    ObjectInUse {
        /// Start address of the object.
        addr: VAddr,
        /// Device running the pending call that references it.
        dev: DeviceId,
        /// Session whose call holds the object (the one that must sync).
        owner: SessionId,
    },
    /// A device window genuinely cannot hold the requested allocation:
    /// either eviction is disabled ([`crate::GmacConfig::evict`] off) or
    /// every resident object was pinned (referenced by a pending call or
    /// with DMA in flight) and no unpinned victim could free enough room.
    /// With eviction on and unpinned victims available, allocations succeed
    /// by evicting instead of surfacing this error.
    DeviceOom {
        /// Bytes the allocation asked the device allocator for (rounded to
        /// the allocator's alignment granule).
        requested: u64,
        /// Free device bytes at the time of refusal (possibly fragmented).
        free: u64,
        /// The full device.
        device: DeviceId,
    },
    /// The coherence race detector ([`crate::GmacConfig::race_check`], error
    /// mode) caught an access the paper's consistency model (§3) forbids.
    /// The offending operation *completed* (the write landed / the launch
    /// was refused before charging, see [`crate::race`]); the error is the
    /// diagnostic. Sink mode ([`crate::GmacConfig::race_report`]) logs into
    /// [`crate::Report`] instead of raising this.
    RaceDetected {
        /// Start address of the shared object involved.
        object: VAddr,
        /// Byte offset of the offending range within the object.
        offset: u64,
        /// Length of the offending range in bytes.
        len: u64,
        /// The accelerator whose in-flight or refused call is involved.
        device: DeviceId,
        /// Violation kinds (non-empty; sorted).
        kinds: Vec<crate::race::RaceKind>,
    },
    /// An access spans beyond the end of a shared object.
    OutOfObjectBounds {
        /// Object start.
        base: VAddr,
        /// Offending offset.
        offset: u64,
        /// Access length.
        len: u64,
    },
    /// A protection fault could not be resolved by the coherence protocol
    /// (a runtime bug; faults must not occur in batch-update, for example).
    UnresolvedFault(String),
    /// Underlying accelerator-API failure.
    Cuda(CudaError),
    /// Underlying platform failure.
    Sim(SimError),
    /// Underlying MMU failure that is not a recoverable protection fault.
    Mmu(MmuError),
}

/// Why the service layer refused a job at admission
/// ([`GmacError::Admission`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionReason {
    /// The bounded service queue is at capacity
    /// ([`crate::GmacConfig::service_queue_depth`]); retry after the hint.
    QueueFull {
        /// Jobs queued at refusal time.
        queued: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The service is shutting down; resubmission will not succeed.
    Shutdown,
}

impl fmt::Display for AdmissionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionReason::QueueFull { queued, capacity } => {
                write!(f, "service queue full ({queued}/{capacity} jobs)")
            }
            AdmissionReason::Shutdown => f.write_str("service is shutting down"),
        }
    }
}

impl fmt::Display for GmacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmacError::NotShared(a) => write!(f, "pointer {a} is not in a shared object"),
            GmacError::AddressCollision(a) => {
                write!(f, "host range at {a} already in use; use safe_alloc")
            }
            GmacError::MixedDevices => f.write_str("kernel parameters span multiple accelerators"),
            GmacError::NothingToSync => f.write_str("no accelerator call outstanding"),
            GmacError::DeviceBusy {
                dev,
                owner,
                retry_after,
            } => {
                write!(
                    f,
                    "device {dev} already has a call in flight from {owner}; sync it first \
                     (retry after ~{}ns)",
                    retry_after.as_nanos()
                )
            }
            GmacError::Admission {
                reason,
                retry_after,
            } => {
                write!(
                    f,
                    "job refused at admission: {reason} (retry after ~{}ns)",
                    retry_after.as_nanos()
                )
            }
            GmacError::ObjectInUse { addr, dev, owner } => {
                write!(
                    f,
                    "shared object at {addr} is referenced by {owner}'s call in flight on \
                     device {dev}; sync before freeing"
                )
            }
            GmacError::DeviceOom {
                requested,
                free,
                device,
            } => {
                write!(
                    f,
                    "device {device} out of memory: requested {requested} bytes, {free} free \
                     and no evictable victim"
                )
            }
            GmacError::RaceDetected {
                object,
                offset,
                len,
                device,
                kinds,
            } => {
                write!(f, "race detected [")?;
                for (i, k) in kinds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(
                    f,
                    "]: object {object} bytes [{offset}, {}) conflict with device {device}'s \
                     call; sync before touching shared data a kernel may read",
                    offset + len
                )
            }
            GmacError::OutOfObjectBounds { base, offset, len } => {
                write!(
                    f,
                    "access at {base}+{offset} length {len} exceeds the shared object"
                )
            }
            GmacError::UnresolvedFault(msg) => write!(f, "unresolved protection fault: {msg}"),
            GmacError::Cuda(e) => write!(f, "accelerator error: {e}"),
            GmacError::Sim(e) => write!(f, "platform error: {e}"),
            GmacError::Mmu(e) => write!(f, "mmu error: {e}"),
        }
    }
}

impl Error for GmacError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GmacError::Cuda(e) => Some(e),
            GmacError::Sim(e) => Some(e),
            GmacError::Mmu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CudaError> for GmacError {
    fn from(e: CudaError) -> Self {
        GmacError::Cuda(e)
    }
}

impl From<SimError> for GmacError {
    fn from(e: SimError) -> Self {
        GmacError::Sim(e)
    }
}

impl From<MmuError> for GmacError {
    fn from(e: MmuError) -> Self {
        GmacError::Mmu(e)
    }
}

/// Result alias for GMAC operations.
pub type GmacResult<T> = Result<T, GmacError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            GmacError::NotShared(VAddr(0x10)).to_string(),
            "pointer 0x10 is not in a shared object"
        );
        assert!(GmacError::AddressCollision(VAddr(0x2000))
            .to_string()
            .contains("safe_alloc"));
        let e = GmacError::OutOfObjectBounds {
            base: VAddr(0x1000),
            offset: 4096,
            len: 8,
        };
        assert!(e.to_string().contains("0x1000+4096"));
    }

    #[test]
    fn sources_chain() {
        let e = GmacError::from(SimError::NoSuchDevice(2));
        assert!(e.source().is_some());
        let e = GmacError::NothingToSync;
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GmacError>();
    }

    #[test]
    fn session_variant_displays() {
        let e = GmacError::DeviceBusy {
            dev: DeviceId(1),
            owner: SessionId(3),
            retry_after: Nanos::from_micros(5),
        };
        assert_eq!(
            e.to_string(),
            "device gpu1 already has a call in flight from session #3; sync it first \
             (retry after ~5000ns)"
        );
        let e = GmacError::ObjectInUse {
            addr: VAddr(0x2_0000_0000),
            dev: DeviceId(0),
            owner: SessionId(7),
        };
        let text = e.to_string();
        assert!(text.contains("sync before freeing"));
        assert!(
            text.contains("session #7") && text.contains("gpu0"),
            "ObjectInUse must name the owning session and device: {text}"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn device_oom_names_device_and_sizes() {
        let e = GmacError::DeviceOom {
            requested: 1 << 20,
            free: 4096,
            device: DeviceId(2),
        };
        let text = e.to_string();
        assert!(
            text.contains("gpu2") && text.contains("1048576") && text.contains("4096"),
            "DeviceOom must name the device, request and free bytes: {text}"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn admission_carries_machine_readable_retry() {
        let e = GmacError::Admission {
            reason: AdmissionReason::QueueFull {
                queued: 3,
                capacity: 4,
            },
            retry_after: Nanos::from_micros(2),
        };
        match &e {
            GmacError::Admission {
                reason,
                retry_after,
            } => {
                assert_eq!(*retry_after, Nanos::from_micros(2));
                assert_eq!(reason.to_string(), "service queue full (3/4 jobs)");
            }
            _ => unreachable!(),
        }
        assert!(e.to_string().contains("2000ns"));
        assert!(e.source().is_none());
        assert_eq!(
            AdmissionReason::Shutdown.to_string(),
            "service is shutting down"
        );
    }

    #[test]
    fn every_variant_has_a_nonempty_display() {
        let variants = [
            GmacError::NotShared(VAddr(1)),
            GmacError::AddressCollision(VAddr(1)),
            GmacError::MixedDevices,
            GmacError::NothingToSync,
            GmacError::DeviceBusy {
                dev: DeviceId(0),
                owner: SessionId(1),
                retry_after: Nanos::ZERO,
            },
            GmacError::Admission {
                reason: AdmissionReason::QueueFull {
                    queued: 8,
                    capacity: 8,
                },
                retry_after: Nanos::from_nanos(1),
            },
            GmacError::Admission {
                reason: AdmissionReason::Shutdown,
                retry_after: Nanos::ZERO,
            },
            GmacError::ObjectInUse {
                addr: VAddr(1),
                dev: DeviceId(0),
                owner: SessionId(0),
            },
            GmacError::DeviceOom {
                requested: 4096,
                free: 0,
                device: DeviceId(0),
            },
            GmacError::RaceDetected {
                object: VAddr(1),
                offset: 0,
                len: 4,
                device: DeviceId(0),
                kinds: vec![crate::race::RaceKind::CpuWriteWhileKernelMayRead],
            },
            GmacError::OutOfObjectBounds {
                base: VAddr(1),
                offset: 0,
                len: 1,
            },
            GmacError::UnresolvedFault("x".into()),
            GmacError::Cuda(CudaError::InvalidDevice(9)),
            GmacError::Sim(SimError::NoSuchDevice(9)),
            GmacError::Mmu(MmuError::BadLength),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty(), "{v:?}");
        }
    }
}
