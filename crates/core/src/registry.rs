//! The shared-object **registry**: the read-mostly routing layer of the
//! sharded runtime.
//!
//! The registry is the only structure that spans devices. It records, for
//! every live shared object, the claimed host virtual range and the device
//! the object is homed on — nothing else. Everything mutable per access
//! (block states, page protections, host frames, protocol bookkeeping) lives
//! inside that device's [`crate::shard::DeviceShard`], so the hot
//! translate/load/store paths only take this registry's `RwLock` **for
//! reading** before locking exactly one shard.
//!
//! The registry also owns the two address-space-wide decisions the per-shard
//! MMUs cannot make on their own:
//!
//! * **collision detection** for the unified-address `mmap` trick (paper
//!   §4.2): two devices' memory windows may overlap, and the second unified
//!   allocation at a taken host range must fail with
//!   [`crate::GmacError::AddressCollision`] exactly as under the old global
//!   MMU;
//! * **placement of `adsmSafeAlloc` ranges**: the bump-allocation policy
//!   (guard page between regions) mirrors `softmmu`'s `map_anywhere`, so
//!   addresses are identical to the pre-shard runtime's.

use hetsim::DeviceId;
use softmmu::{VAddr, PAGE_SIZE, VADDR_LIMIT};
use std::collections::BTreeMap;

/// Base of the area used by safe-alloc (anywhere) claims, matching
/// `softmmu`'s anonymous-mmap base so safe allocations land at the same
/// addresses as under the old single address space.
const MMAP_BASE: u64 = 0x7000_0000_0000;

/// One claimed host range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Claim {
    /// One past the last byte of the claim.
    pub(crate) end: u64,
    /// Device the object is homed on (which shard owns it).
    pub(crate) dev: DeviceId,
}

/// Address-range → home-device routing map (see module docs).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    claims: BTreeMap<u64, Claim>,
    mmap_cursor: u64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            claims: BTreeMap::new(),
            mmap_cursor: MMAP_BASE,
        }
    }

    /// The claim containing `addr`: `(object start, home device)`.
    pub(crate) fn route(&self, addr: VAddr) -> Option<(VAddr, DeviceId)> {
        self.route_full(addr).map(|(start, _, dev)| (start, dev))
    }

    /// [`Self::route`] plus the claim's end — what a route memo needs to
    /// answer interior-pointer hits without re-searching.
    pub(crate) fn route_full(&self, addr: VAddr) -> Option<(VAddr, u64, DeviceId)> {
        self.claims
            .range(..=addr.0)
            .next_back()
            .filter(|(&start, c)| addr.0 >= start && addr.0 < c.end)
            .map(|(&start, c)| (VAddr(start), c.end, c.dev))
    }

    /// True when `[addr, addr+len)` intersects an existing claim.
    fn overlaps(&self, addr: VAddr, len: u64) -> bool {
        let end = addr.0 + len;
        self.claims
            .range(..end)
            .next_back()
            .map(|(_, c)| c.end > addr.0)
            .unwrap_or(false)
    }

    /// Claims `[addr, addr+len)` for `dev` (the unified-address path). `len`
    /// must already be page-rounded. Returns `false` on collision.
    pub(crate) fn claim_fixed(&mut self, addr: VAddr, len: u64, dev: DeviceId) -> bool {
        if self.overlaps(addr, len) {
            return false;
        }
        self.claims.insert(
            addr.0,
            Claim {
                end: addr.0 + len,
                dev,
            },
        );
        true
    }

    /// Claims `len` bytes at a registry-chosen address (the safe-alloc
    /// path), bump-allocating with a guard page exactly like the MMU's
    /// anonymous mmap. Returns `None` when the virtual space is exhausted.
    pub(crate) fn claim_anywhere(&mut self, len: u64, dev: DeviceId) -> Option<VAddr> {
        let len_rounded = VAddr(len).page_up().0;
        let mut addr = VAddr(self.mmap_cursor);
        while self.overlaps(addr, len_rounded) {
            let next = self
                .claims
                .range(addr.0..)
                .next()
                .map(|(_, c)| VAddr(c.end).page_up() + PAGE_SIZE)?;
            addr = next;
        }
        if addr.0 + len_rounded > VADDR_LIMIT {
            return None;
        }
        self.claims.insert(
            addr.0,
            Claim {
                end: addr.0 + len_rounded,
                dev,
            },
        );
        self.mmap_cursor = (addr + len_rounded + PAGE_SIZE).0;
        Some(addr)
    }

    /// Releases the claim starting exactly at `start`.
    pub(crate) fn release(&mut self, start: VAddr) {
        self.claims.remove(&start.0);
    }

    /// Number of live claims (== live shared objects).
    pub(crate) fn len(&self) -> usize {
        self.claims.len()
    }

    /// All claim start addresses in address order.
    pub(crate) fn addrs(&self) -> Vec<VAddr> {
        self.claims.keys().map(|&a| VAddr(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn routes_by_interior_pointer() {
        let mut r = Registry::new();
        assert!(r.claim_fixed(VAddr(0x10_0000), 8192, D0));
        assert!(r.claim_fixed(VAddr(0x20_0000), 4096, D1));
        assert_eq!(r.route(VAddr(0x10_0000)), Some((VAddr(0x10_0000), D0)));
        assert_eq!(r.route(VAddr(0x10_1FFF)), Some((VAddr(0x10_0000), D0)));
        assert_eq!(r.route(VAddr(0x10_2000)), None);
        assert_eq!(r.route(VAddr(0x20_0800)), Some((VAddr(0x20_0000), D1)));
        assert_eq!(r.len(), 2);
        r.release(VAddr(0x10_0000));
        assert_eq!(r.route(VAddr(0x10_0000)), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn fixed_claims_collide_across_devices() {
        // The §4.2 multi-accelerator case: overlapping device windows mean
        // the second unified claim at the same host range must fail even
        // though it belongs to a different device.
        let mut r = Registry::new();
        assert!(r.claim_fixed(VAddr(0x2_0000_0000), 16384, D0));
        assert!(!r.claim_fixed(VAddr(0x2_0000_0000), 4096, D1));
        assert!(
            !r.claim_fixed(VAddr(0x1_FFFF_F000), 8192, D1),
            "tail overlap"
        );
        assert!(r.claim_fixed(VAddr(0x2_0000_4000), 4096, D1), "adjacent ok");
    }

    #[test]
    fn anywhere_claims_bump_with_guard_pages() {
        let mut r = Registry::new();
        let a = r.claim_anywhere(10 * PAGE_SIZE, D0).unwrap();
        let b = r.claim_anywhere(PAGE_SIZE, D1).unwrap();
        assert_eq!(a, VAddr(MMAP_BASE));
        assert!(
            b.0 >= a.0 + 10 * PAGE_SIZE + PAGE_SIZE,
            "guard page between"
        );
        assert_eq!(r.route(b), Some((b, D1)));
    }
}
