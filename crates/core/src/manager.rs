//! The shared-memory manager: the registry of live shared objects.
//!
//! The paper's memory manager "keeps a list of the starting address and size
//! of allocated shared memory objects" and locates the faulting block in "a
//! balanced binary tree, which requires O(log2(n)) operations" (§5.2). Both
//! structures are implemented here — the ordered-tree registry (default) and
//! a linear scan (ablation baseline) — selected by
//! [`crate::config::LookupKind`].
//!
//! Since the shard redesign the runtime keeps **one manager per device
//! shard** ([`crate::shard::DeviceShard`]), holding only the objects homed
//! on that accelerator; cross-device routing happens in the runtime's
//! read-mostly registry before a shard (and its manager) is locked. The
//! fault-handler lookup-cost model ([`Manager::lookup_steps`]) therefore
//! walks the per-device tree — faults on one accelerator's objects pay for
//! that device's population, not the whole platform's.
//!
//! Objects live in a **slab** (`Vec<Option<SharedObject>>`) indexed by a
//! stable slot id; the tree/linear structures only map start addresses to
//! slots. [`Manager::locate`] performs the O(log n) search once, and
//! [`Manager::by_slot`] re-reaches the object in O(1) — the access-fast-path
//! memo in [`crate::shard::DeviceShard`] caches `(range, slot)` so tight
//! loops skip the search entirely. Slots are reused after removal, so a memo
//! must be invalidated whenever an object is inserted or removed.

use crate::config::LookupKind;
use crate::object::{ObjectId, SharedObject};
use softmmu::VAddr;
use std::collections::BTreeMap;

/// Registry of live shared objects, addressable by any interior pointer.
#[derive(Debug)]
pub struct Manager {
    kind: LookupKind,
    /// Slab of objects; `None` marks a free slot awaiting reuse.
    slots: Vec<Option<SharedObject>>,
    /// Free-slot indices for reuse.
    free: Vec<usize>,
    /// Tree variant: start address -> slot.
    tree: BTreeMap<u64, usize>,
    /// Linear variant: unsorted (start, slot) pairs.
    linear: Vec<(u64, usize)>,
    next_id: u64,
    total_blocks: usize,
}

impl Manager {
    /// Creates an empty registry using the given lookup structure.
    pub fn new(kind: LookupKind) -> Self {
        Manager {
            kind,
            slots: Vec::new(),
            free: Vec::new(),
            tree: BTreeMap::new(),
            linear: Vec::new(),
            next_id: 1,
            total_blocks: 0,
        }
    }

    /// Allocates the next object id.
    pub fn next_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Registers an object, returning its slab slot (stable until the
    /// object is removed; see [`Self::by_slot`]).
    ///
    /// # Panics
    /// Panics if the object's range overlaps a registered object (the
    /// allocator guarantees disjointness; overlap is a runtime bug).
    pub fn insert(&mut self, obj: SharedObject) -> usize {
        assert!(!self.overlaps(&obj), "overlapping shared objects");
        self.total_blocks += obj.block_count();
        let start = obj.addr().0;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(obj);
                slot
            }
            None => {
                self.slots.push(Some(obj));
                self.slots.len() - 1
            }
        };
        match self.kind {
            LookupKind::Tree => {
                self.tree.insert(start, slot);
            }
            LookupKind::Linear => self.linear.push((start, slot)),
        }
        slot
    }

    /// True when `obj`'s range intersects any registered object. Checking
    /// only the new range's two endpoints would miss an existing object
    /// strictly contained inside it, so the tree variant also inspects the
    /// first entry starting at-or-after the new start, and the linear
    /// variant scans everything.
    fn overlaps(&self, obj: &SharedObject) -> bool {
        match self.kind {
            LookupKind::Tree => {
                // Neighbour below: contains the new start?
                if self.find(obj.addr()).is_some() {
                    return true;
                }
                // Neighbour at/above: starts before the new end?
                self.tree
                    .range(obj.addr().0..)
                    .next()
                    .is_some_and(|(&start, _)| start < obj.end().0)
            }
            LookupKind::Linear => self
                .iter()
                .any(|o| o.addr() < obj.end() && obj.addr() < o.end()),
        }
    }

    /// Removes the object containing `addr`, returning it.
    pub fn remove(&mut self, addr: VAddr) -> Option<SharedObject> {
        let slot = self.locate(addr)?;
        let start = self.slots[slot].as_ref()?.addr().0;
        match self.kind {
            LookupKind::Tree => {
                self.tree.remove(&start);
            }
            LookupKind::Linear => {
                let idx = self.linear.iter().position(|&(s, _)| s == start)?;
                self.linear.swap_remove(idx);
            }
        }
        let obj = self.slots[slot].take()?;
        self.free.push(slot);
        self.total_blocks -= obj.block_count();
        Some(obj)
    }

    /// Slab slot of the object containing `addr` — the O(log n) (tree) or
    /// O(n) (linear) search the fault-handler cost model charges for.
    /// [`Self::by_slot`] then reaches the object in O(1); the shard-level
    /// memo caches the result to skip this search in tight loops.
    pub fn locate(&self, addr: VAddr) -> Option<usize> {
        match self.kind {
            LookupKind::Tree => self
                .tree
                .range(..=addr.0)
                .next_back()
                .map(|(_, &slot)| slot)
                .filter(|&slot| self.slots[slot].as_ref().is_some_and(|o| o.contains(addr))),
            LookupKind::Linear => self
                .linear
                .iter()
                .find(|&&(_, slot)| self.slots[slot].as_ref().is_some_and(|o| o.contains(addr)))
                .map(|&(_, slot)| slot),
        }
    }

    /// Object in slab slot `slot`, if live. O(1).
    pub fn by_slot(&self, slot: usize) -> Option<&SharedObject> {
        self.slots.get(slot)?.as_ref()
    }

    /// Object in slab slot `slot`, mutable. O(1).
    pub fn by_slot_mut(&mut self, slot: usize) -> Option<&mut SharedObject> {
        self.slots.get_mut(slot)?.as_mut()
    }

    /// The object containing `addr`, if any.
    pub fn find(&self, addr: VAddr) -> Option<&SharedObject> {
        let slot = self.locate(addr)?;
        self.slots[slot].as_ref()
    }

    /// The object containing `addr`, mutable.
    pub fn find_mut(&mut self, addr: VAddr) -> Option<&mut SharedObject> {
        let slot = self.locate(addr)?;
        self.slots[slot].as_mut()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        match self.kind {
            LookupKind::Tree => self.tree.len(),
            LookupKind::Linear => self.linear.len(),
        }
    }

    /// True when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of blocks across all objects (drives the fault-handler
    /// lookup-cost model).
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of steps the configured lookup structure needs to locate a
    /// block among `total_blocks` entries.
    ///
    /// This models the *paper's* fault-handler walk and is charged to
    /// virtual time on every fault-equivalent, whether or not the wall-clock
    /// search was skipped by the shard memo — the fast path changes how fast
    /// the simulator runs, never what it simulates.
    pub fn lookup_steps(&self) -> u64 {
        let n = self.total_blocks.max(1) as u64;
        match self.kind {
            // Balanced-tree walk: ceil(log2(n + 1)).
            LookupKind::Tree => 64 - n.leading_zeros() as u64,
            // Expected half-scan.
            LookupKind::Linear => (n / 2).max(1),
        }
    }

    /// Iterates over all objects (address order for the tree variant).
    pub fn iter(&self) -> Box<dyn Iterator<Item = &SharedObject> + '_> {
        match self.kind {
            LookupKind::Tree => Box::new(
                self.tree
                    .values()
                    .filter_map(|&slot| self.slots[slot].as_ref()),
            ),
            LookupKind::Linear => Box::new(
                self.linear
                    .iter()
                    .filter_map(|&(_, slot)| self.slots[slot].as_ref()),
            ),
        }
    }

    /// Start addresses of all objects (snapshot, avoids borrow conflicts in
    /// protocol loops; address order for the tree variant). For mutation
    /// loops, iterate this snapshot and go through [`Self::find_mut`] — a
    /// slab-backed `iter_mut` would yield slot order, silently diverging
    /// from [`Self::iter`]'s address order.
    pub fn addrs(&self) -> Vec<VAddr> {
        self.iter().map(|o| o.addr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::state::BlockState;
    use hetsim::{DevAddr, DeviceId};
    use softmmu::RegionId;

    fn obj(id: u64, addr: u64, size: u64) -> SharedObject {
        SharedObject::new(
            ObjectId(id),
            VAddr(addr),
            size,
            DeviceId(0),
            DevAddr(addr),
            RegionId(id),
            4096,
            BlockState::ReadOnly,
        )
    }

    fn both() -> [Manager; 2] {
        [
            Manager::new(LookupKind::Tree),
            Manager::new(LookupKind::Linear),
        ]
    }

    #[test]
    fn find_by_interior_pointer() {
        for mut m in both() {
            m.insert(obj(1, 0x10_0000, 8192));
            m.insert(obj(2, 0x20_0000, 4096));
            assert_eq!(m.find(VAddr(0x10_0000)).unwrap().id(), ObjectId(1));
            assert_eq!(m.find(VAddr(0x10_1FFF)).unwrap().id(), ObjectId(1));
            assert!(m.find(VAddr(0x10_2000)).is_none());
            assert_eq!(m.find(VAddr(0x20_0010)).unwrap().id(), ObjectId(2));
            assert!(m.find(VAddr(0x30_0000)).is_none());
            assert!(m.find(VAddr(0xF_FFFF)).is_none());
            assert_eq!(m.len(), 2);
        }
    }

    #[test]
    fn remove_by_interior_pointer() {
        for mut m in both() {
            m.insert(obj(1, 0x10_0000, 8192));
            let o = m.remove(VAddr(0x10_0100)).unwrap();
            assert_eq!(o.id(), ObjectId(1));
            assert!(m.is_empty());
            assert_eq!(m.total_blocks(), 0);
            assert!(m.remove(VAddr(0x10_0000)).is_none());
        }
    }

    #[test]
    fn locate_and_by_slot_reach_the_same_object() {
        for mut m in both() {
            let s1 = m.insert(obj(1, 0x10_0000, 8192));
            let s2 = m.insert(obj(2, 0x20_0000, 4096));
            assert_ne!(s1, s2);
            assert_eq!(m.locate(VAddr(0x10_1000)), Some(s1));
            assert_eq!(m.by_slot(s1).unwrap().id(), ObjectId(1));
            assert_eq!(m.by_slot_mut(s2).unwrap().id(), ObjectId(2));
            assert_eq!(m.locate(VAddr(0x30_0000)), None);
            // Removal frees the slot; a stale slot id observes None.
            m.remove(VAddr(0x10_0000)).unwrap();
            assert!(m.by_slot(s1).is_none());
            assert_eq!(m.locate(VAddr(0x10_0000)), None);
            // The freed slot is reused by the next insert.
            let s3 = m.insert(obj(3, 0x40_0000, 4096));
            assert_eq!(s3, s1, "slab reuses freed slots");
        }
    }

    #[test]
    fn total_blocks_tracks_inserts_and_removes() {
        for mut m in both() {
            m.insert(obj(1, 0x10_0000, 16384)); // 4 blocks of 4 KiB
            m.insert(obj(2, 0x20_0000, 4096)); // 1 block
            assert_eq!(m.total_blocks(), 5);
            m.remove(VAddr(0x10_0000));
            assert_eq!(m.total_blocks(), 1);
        }
    }

    #[test]
    fn lookup_steps_models() {
        let mut t = Manager::new(LookupKind::Tree);
        let mut l = Manager::new(LookupKind::Linear);
        for i in 0..16 {
            t.insert(obj(i + 1, 0x10_0000 + i * 0x10_000, 16384));
            l.insert(obj(i + 1, 0x10_0000 + i * 0x10_000, 16384));
        }
        // 64 blocks total: tree walks ~log2(64)=6..7 steps, linear ~32.
        assert!(t.lookup_steps() <= 8);
        assert!(l.lookup_steps() >= 30);
    }

    #[test]
    fn insert_rejects_contained_and_partial_overlaps() {
        // Regression: an existing object strictly inside the new range used
        // to slip past the endpoint-only check.
        for kind in [LookupKind::Tree, LookupKind::Linear] {
            let contained = std::panic::catch_unwind(|| {
                let mut m = Manager::new(kind);
                m.insert(obj(1, 0x10_4000, 4096)); // small object in the middle
                m.insert(obj(2, 0x10_0000, 0x10_000)); // new range strictly contains it
            });
            assert!(contained.is_err(), "containment must panic ({kind:?})");

            let partial = std::panic::catch_unwind(|| {
                let mut m = Manager::new(kind);
                m.insert(obj(1, 0x10_0000, 8192));
                m.insert(obj(2, 0x10_1000, 8192)); // overlaps the tail
            });
            assert!(partial.is_err(), "partial overlap must panic ({kind:?})");

            let identical = std::panic::catch_unwind(|| {
                let mut m = Manager::new(kind);
                m.insert(obj(1, 0x10_0000, 4096));
                m.insert(obj(2, 0x10_0000, 4096));
            });
            assert!(identical.is_err(), "identical range must panic ({kind:?})");
        }
    }

    #[test]
    fn insert_accepts_touching_neighbours() {
        for mut m in both() {
            m.insert(obj(1, 0x10_0000, 4096));
            // End-exclusive: a neighbour starting exactly at the end is fine.
            m.insert(obj(2, 0x10_1000, 4096));
            m.insert(obj(3, 0xF_F000, 4096)); // and one ending exactly at the start
            assert_eq!(m.len(), 3);
        }
    }

    #[test]
    fn find_mut_allows_state_changes() {
        for mut m in both() {
            m.insert(obj(1, 0x10_0000, 4096));
            m.find_mut(VAddr(0x10_0000))
                .unwrap()
                .set_state(0, BlockState::Dirty);
            assert_eq!(
                m.find(VAddr(0x10_0000)).unwrap().state(0),
                BlockState::Dirty
            );
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut m = Manager::new(LookupKind::Tree);
        let a = m.next_id();
        let b = m.next_id();
        assert_ne!(a, b);
    }

    #[test]
    fn addrs_snapshot_sorted_for_tree() {
        let mut m = Manager::new(LookupKind::Tree);
        m.insert(obj(1, 0x30_0000, 4096));
        m.insert(obj(2, 0x10_0000, 4096));
        assert_eq!(m.addrs(), vec![VAddr(0x10_0000), VAddr(0x30_0000)]);
    }
}
