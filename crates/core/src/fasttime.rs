//! Thread-local deferred virtual-time charging for the mmap fast path.
//!
//! The zero-instrumentation hit path ([`crate::fastview::ObjFastView`])
//! performs a raw host load/store without taking any runtime lock — but the
//! simulated platform still has to be charged the same per-access CPU touch
//! time the checked path charges ([`hetsim::Platform::cpu_touch`]), or the
//! two backends would diverge in virtual time. Paying that charge inline
//! would cost two atomic RMWs (clock + ledger) per access and dominate the
//! hit path; instead each access **accumulates** its pre-rounded charge in a
//! thread-local counter, and the total is settled with one
//! [`hetsim::Platform::spend`] at the next runtime entry point.
//!
//! # Flush points (the byte-identity argument)
//!
//! Ledger categories and the clock are commutative sums (`fetch_add`), so
//! deferring N charges and settling them as one changes no total — *as long
//! as* the settle happens before any other interaction with the clock
//! (a DMA reservation reads `now`; a fault charge must observe the touches
//! that preceded it). Three flush points guarantee that:
//!
//! * every runtime entry point — [`crate::gmac::Inner::gate`] runs a flush
//!   first, so faults, allocs, calls, syncs and bulk ops settle before they
//!   touch the clock;
//! * the ungated introspection reads (`ledger`/`elapsed`/`transfers`/
//!   `with_platform`) flush explicitly;
//! * thread exit — the destructor of the thread-local settles whatever is
//!   left, so joining a worker thread makes its touches visible.
//!
//! The counter is keyed by platform identity: a thread touching objects of
//! two runtimes settles the first runtime's balance before accumulating for
//! the second.

use hetsim::{Category, Nanos, Platform};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Weak};

/// Per-thread pending CPU-touch nanoseconds for one platform.
struct PendingTouch {
    /// Identity of the platform the balance belongs to
    /// (`Arc::as_ptr as usize`); 0 = empty.
    key: Cell<usize>,
    /// Accumulated charge, in integer nanoseconds (each access adds its
    /// already-rounded `touch_time`, so the settled sum is bit-identical to
    /// per-access charging).
    nanos: Cell<u64>,
    /// Keeps the settle possible from the thread-local destructor without
    /// keeping the platform alive.
    platform: RefCell<Weak<Platform>>,
}

impl PendingTouch {
    /// Settles the current balance against its platform, if any survives.
    fn settle(&self) {
        let pending = self.nanos.replace(0);
        if pending == 0 {
            return;
        }
        if let Some(platform) = self.platform.borrow().upgrade() {
            platform.spend(Category::Cpu, Nanos::from_nanos(pending));
        }
    }
}

impl Drop for PendingTouch {
    fn drop(&mut self) {
        self.settle();
    }
}

thread_local! {
    static PENDING: PendingTouch = const {
        PendingTouch {
            key: Cell::new(0),
            nanos: Cell::new(0),
            platform: RefCell::new(Weak::new()),
        }
    };
}

/// Accumulates `nanos` of CPU-touch time against `platform`, settling any
/// balance a different platform left behind first. Falls back to charging
/// directly when the thread-local is gone (thread teardown).
pub(crate) fn add(platform: &Arc<Platform>, nanos: u64) {
    let outcome = PENDING.try_with(|p| {
        let key = Arc::as_ptr(platform) as usize;
        if p.key.get() != key {
            p.settle();
            p.key.set(key);
            *p.platform.borrow_mut() = Arc::downgrade(platform);
        }
        p.nanos.set(p.nanos.get() + nanos);
    });
    if outcome.is_err() {
        platform.spend(Category::Cpu, Nanos::from_nanos(nanos));
    }
}

/// Settles this thread's pending balance for `platform` (a no-op for other
/// platforms' balances and when nothing is pending). Every runtime entry
/// point runs this before touching the clock or ledgers.
pub(crate) fn flush(platform: &Platform) {
    let _ = PENDING.try_with(|p| {
        if p.key.get() == platform as *const Platform as usize {
            p.settle();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Arc<Platform> {
        Arc::new(Platform::desktop_g280())
    }

    #[test]
    fn add_defers_and_flush_settles() {
        let p = platform();
        let before = p.ledger().get(Category::Cpu);
        add(&p, 3);
        add(&p, 4);
        assert_eq!(p.ledger().get(Category::Cpu), before, "charges deferred");
        flush(&p);
        assert_eq!(
            p.ledger().get(Category::Cpu).as_nanos() - before.as_nanos(),
            7
        );
        // Idempotent: a second flush settles nothing.
        flush(&p);
        assert_eq!(
            p.ledger().get(Category::Cpu).as_nanos() - before.as_nanos(),
            7
        );
    }

    #[test]
    fn switching_platforms_settles_the_first() {
        let a = platform();
        let b = platform();
        add(&a, 11);
        add(&b, 5); // settles a's balance first
        assert_eq!(a.ledger().get(Category::Cpu).as_nanos(), 11);
        assert_eq!(b.ledger().get(Category::Cpu).as_nanos(), 0);
        flush(&b);
        assert_eq!(b.ledger().get(Category::Cpu).as_nanos(), 5);
    }

    #[test]
    fn thread_exit_settles_the_balance() {
        let p = platform();
        let p2 = Arc::clone(&p);
        std::thread::spawn(move || add(&p2, 21)).join().unwrap();
        assert_eq!(p.ledger().get(Category::Cpu).as_nanos(), 21);
    }

    #[test]
    fn dead_platform_balance_is_dropped() {
        let a = platform();
        add(&a, 9);
        drop(a);
        let b = platform();
        add(&b, 2); // switching must not panic on the dead weak
        flush(&b);
        assert_eq!(b.ledger().get(Category::Cpu).as_nanos(), 2);
    }
}
