//! Batch-update: the pure write-invalidate protocol (paper Figure 6a).
//!
//! "On a kernel invocation the CPU invalidates all shared objects, whether or
//! not they are accessed by the accelerator. On method return, all shared
//! objects are transferred from accelerator memory to system memory and
//! marked as dirty." — §4.3
//!
//! No access detection is needed, so pages stay read-write and the protocol
//! never sees a fault. This "naive protocol mimics what programmers tend to
//! implement in the early stages of application implementation", and its cost
//! is exactly what Figures 7/8 show: every call/return moves everything.

use crate::config::{GmacConfig, Protocol};
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::CoherenceProtocol;
use crate::runtime::Runtime;
use crate::state::BlockState;
use crate::xfer::Purpose;
use hetsim::{CopyMode, DeviceId, Direction};
use softmmu::VAddr;

/// The batch-update protocol.
#[derive(Debug, Default)]
pub struct BatchUpdate {
    /// Annotation from the last release; bounds the acquire-side fetch.
    /// One protocol instance exists **per device shard** (see
    /// [`crate::shard::DeviceShard`]), so a single slot replaces the old
    /// cross-device `HashMap<DeviceId, _>` — overlapping calls on different
    /// accelerators live in different instances and cannot clobber each
    /// other's write sets. `None` means "no release yet / no annotation":
    /// the conservative fetch-everything acquire.
    last_writes: Option<Vec<VAddr>>,
}

impl BatchUpdate {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CoherenceProtocol for BatchUpdate {
    fn kind(&self) -> Protocol {
        Protocol::Batch
    }

    fn block_size_for(&self, _config: &GmacConfig, size: u64) -> u64 {
        // Whole-object granularity.
        size
    }

    fn initial_state(&self) -> BlockState {
        // The CPU produces the initial contents; everything is transferred at
        // the first call anyway.
        BlockState::Dirty
    }

    fn on_alloc(&mut self, rt: &mut Runtime, mgr: &mut Manager, addr: VAddr) -> GmacResult<()> {
        // Batch never uses protection faults: keep pages read-write.
        let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
        rt.protect_object(&obj, BlockState::Dirty)?;
        Ok(())
    }

    fn on_free(&mut self, _rt: &mut Runtime, _obj: &SharedObject) -> GmacResult<()> {
        Ok(())
    }

    fn release(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        dev: DeviceId,
        writes: Option<&[VAddr]>,
    ) -> GmacResult<()> {
        self.last_writes = writes.map(<[VAddr]>::to_vec);
        // Plan a transfer of *all* objects to the accelerator, even
        // unmodified ones — unless the host copy is itself invalid
        // (back-to-back calls with no intervening sync: system memory was
        // invalidated at the previous call, so there is nothing to push).
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
        for addr in mgr.addrs() {
            let obj = mgr.find(addr).expect("registered object").clone();
            if obj.device() != dev {
                continue;
            }
            // Evicted objects own no device window: the host copy stays
            // authoritative (Dirty) until a call argument re-homes them.
            if !obj.is_resident() {
                continue;
            }
            if obj.state(0) != BlockState::Invalid {
                plan.request(&obj, 0, obj.size());
            }
            mgr.find_mut(addr)
                .expect("registered object")
                .set_state(0, BlockState::Invalid);
            // Pages stay read-write: batch performs no detection.
        }
        rt.execute(&plan)?;
        Ok(())
    }

    fn acquire(&mut self, rt: &mut Runtime, mgr: &mut Manager, dev: DeviceId) -> GmacResult<()> {
        // Plan the transfer of everything back (bounded by the write
        // annotation when the caller provided one) and mark it dirty,
        // implicitly invalidating the accelerator copy.
        let writes = self.last_writes.take();
        let mut plan = rt.plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Fetch);
        for addr in mgr.addrs() {
            let obj = mgr.find(addr).expect("registered object").clone();
            if obj.device() != dev {
                continue;
            }
            // Evicted objects were never pushed to the device by the
            // matching release: nothing to fetch, already Dirty on host.
            if !obj.is_resident() {
                continue;
            }
            if crate::protocol::is_written(writes.as_deref(), addr) {
                plan.request(&obj, 0, obj.size());
            }
            mgr.find_mut(addr)
                .expect("registered object")
                .set_state(0, BlockState::Dirty);
        }
        rt.execute(&plan)?;
        Ok(())
    }

    fn prepare_read(
        &mut self,
        _rt: &mut Runtime,
        _mgr: &mut Manager,
        _addr: VAddr,
        _offset: u64,
        _len: u64,
    ) -> GmacResult<()> {
        // Pages are always accessible under batch-update.
        Ok(())
    }

    fn memset_through(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
        value: u8,
    ) -> GmacResult<()> {
        // Batch keeps the host copy authoritative and performs no access
        // detection: fill host memory directly (the naive programmer's
        // memset); everything moves at the next call anyway.
        let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
        Runtime::check_bounds(&obj, offset, len)?;
        rt.vm.fill(obj.addr() + offset, value, len)?;
        rt.platform.cpu_touch(len);
        mgr.find_mut(addr)
            .expect("registered object")
            .set_state(0, BlockState::Dirty);
        Ok(())
    }

    fn prepare_write(
        &mut self,
        _rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        _offset: u64,
        _len: u64,
    ) -> GmacResult<()> {
        // Writing makes the (single) block dirty again after a call.
        if let Some(obj) = mgr.find_mut(addr) {
            obj.set_state(0, BlockState::Dirty);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::harness;

    #[test]
    fn release_transfers_everything_even_clean_objects() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Batch, &[8192, 4096]);
        let before = rt.platform().transfers().h2d_bytes;
        p.release(&mut rt, &mut mgr, DeviceId(0), None).unwrap();
        let moved = rt.platform().transfers().h2d_bytes - before;
        assert_eq!(moved, 8192 + 4096, "all objects move, modified or not");
        for obj in mgr.iter() {
            assert_eq!(obj.state(0), BlockState::Invalid);
        }
    }

    #[test]
    fn acquire_fetches_everything_back_as_dirty() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Batch, &[8192]);
        p.release(&mut rt, &mut mgr, DeviceId(0), None).unwrap();
        let before = rt.platform().transfers().d2h_bytes;
        p.acquire(&mut rt, &mut mgr, DeviceId(0)).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes - before, 8192);
        for obj in mgr.iter() {
            assert_eq!(obj.state(0), BlockState::Dirty);
        }
    }

    #[test]
    fn write_annotation_bounds_the_acquire_fetch() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Batch, &[8192, 4096]);
        let addrs = mgr.addrs();
        // Only the first object is written by the kernel.
        p.release(&mut rt, &mut mgr, DeviceId(0), Some(&addrs[..1]))
            .unwrap();
        let before = rt.platform().transfers().d2h_bytes;
        p.acquire(&mut rt, &mut mgr, DeviceId(0)).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes - before, 8192);
    }

    #[test]
    fn never_faults_and_data_roundtrips() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Batch, &[8192]);
        let addr = mgr.addrs()[0];
        // CPU writes through the raw path (pages are RW; no faults occur).
        rt.vm
            .write_bytes(addr, &[0xAB; 8192])
            .expect("batch pages are writable");
        p.release(&mut rt, &mut mgr, DeviceId(0), None).unwrap();
        // Device received the data.
        let obj = mgr.find(addr).unwrap().clone();
        let dev_bytes = rt
            .platform()
            .device(DeviceId(0))
            .unwrap()
            .mem()
            .slice(obj.dev_addr(), 8192)
            .unwrap()
            .to_vec();
        assert!(dev_bytes.iter().all(|&b| b == 0xAB));
        assert_eq!(rt.counters().faults(), 0);
        assert_eq!(
            rt.vm().faults_observed(),
            0,
            "batch never triggers protection faults"
        );
    }

    #[test]
    fn dirty_block_accounting() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Batch, &[4096, 4096]);
        assert_eq!(p.dirty_blocks(&mgr), 2, "fresh batch objects are dirty");
        p.release(&mut rt, &mut mgr, DeviceId(0), None).unwrap();
        assert_eq!(p.dirty_blocks(&mgr), 0);
    }
}
