//! Rolling-update: the hybrid write-update/write-invalidate protocol (paper
//! Figure 6b including the dotted eager-eviction transition).
//!
//! Shared objects are divided into fixed-size blocks. Only a bounded number
//! of blocks — the *rolling size* — may be dirty at once; when the bound is
//! exceeded, the oldest dirty block is *asynchronously* transferred to the
//! accelerator and downgraded to read-only, overlapping DMA with ongoing CPU
//! computation. The rolling size grows adaptively by a fixed factor (default
//! 2 blocks) on every allocation (§4.3).
//!
//! One instance exists per device shard, so the dirty FIFO, the dirty count
//! and the adaptive rolling size are all **per-accelerator** state: heavy
//! write traffic against one device neither evicts nor grows the rolling
//! window of another.

use crate::config::{GmacConfig, Protocol};
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::{is_written, CoherenceProtocol};
use crate::runtime::Runtime;
use crate::state::BlockState;
use crate::xfer::Purpose;
use hetsim::{CopyMode, DeviceId, Direction};
use softmmu::VAddr;
use std::collections::VecDeque;

/// The rolling-update protocol.
#[derive(Debug)]
pub struct RollingUpdate {
    /// Dirty blocks in age order: (object start, block index). Entries whose
    /// block is no longer dirty are skipped lazily on pop.
    fifo: VecDeque<(VAddr, usize)>,
    /// Exact number of dirty blocks across all objects.
    dirty_count: usize,
    /// Current rolling size (maximum dirty blocks); grows adaptively unless
    /// the configuration pins it.
    limit: usize,
}

impl Default for RollingUpdate {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingUpdate {
    /// Creates the protocol with an empty dirty set.
    pub fn new() -> Self {
        RollingUpdate {
            fifo: VecDeque::new(),
            dirty_count: 0,
            limit: 0,
        }
    }

    /// Current rolling size.
    pub fn rolling_size(&self) -> usize {
        self.limit.max(1)
    }

    /// Marks `idx` of the object at `addr` dirty, enforcing the rolling
    /// bound by evicting the oldest dirty blocks.
    fn mark_dirty(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        idx: usize,
    ) -> GmacResult<()> {
        {
            let obj = mgr.find_mut(addr).ok_or(GmacError::NotShared(addr))?;
            if obj.state(idx) == BlockState::Dirty {
                return Ok(());
            }
            obj.set_state(idx, BlockState::Dirty);
            let obj = mgr.find(addr).expect("registered object").clone();
            rt.protect_block(&obj, idx, BlockState::Dirty)?;
        }
        self.fifo.push_back((addr, idx));
        self.dirty_count += 1;
        self.evict_overflow(rt, mgr)
    }

    /// Evicts oldest dirty blocks while the dirty set exceeds the rolling
    /// size. The freshly-dirtied block (FIFO back) is never the victim
    /// because eviction only triggers with at least two dirty blocks.
    fn evict_overflow(&mut self, rt: &mut Runtime, mgr: &mut Manager) -> GmacResult<()> {
        while self.dirty_count > self.rolling_size() {
            let Some((addr, idx)) = self.fifo.pop_front() else {
                debug_assert!(false, "dirty_count out of sync with fifo");
                break;
            };
            // Lazy deletion: the entry may be stale (block already evicted,
            // invalidated at a call, the whole object evicted from device
            // memory, or its object freed).
            let Some(obj) = mgr.find(addr) else { continue };
            if obj.state(idx) != BlockState::Dirty || !obj.is_resident() {
                continue;
            }
            let obj = obj.clone();
            let mode = if rt.config().eager_eviction {
                CopyMode::Async
            } else {
                CopyMode::Sync
            };
            let mut plan = rt.plan(Direction::HostToDevice, mode, Purpose::Eviction);
            plan.request_block(&obj, idx);
            rt.execute(&plan)?;
            rt.protect_block(&obj, idx, BlockState::ReadOnly)?;
            mgr.find_mut(addr)
                .expect("registered object")
                .set_state(idx, BlockState::ReadOnly);
            self.dirty_count -= 1;
        }
        Ok(())
    }

    fn recount_dirty(&mut self, mgr: &Manager) {
        // Evicted objects are host-authoritative (every block Dirty) but own
        // no device window: their blocks are not flushable and stay outside
        // the rolling accounting until re-fetch re-admits them.
        self.dirty_count = mgr
            .iter()
            .filter(|o| o.is_resident())
            .map(|o| o.count_in_state(BlockState::Dirty))
            .sum::<usize>();
        if self.dirty_count == 0 {
            self.fifo.clear();
        }
    }
}

impl CoherenceProtocol for RollingUpdate {
    fn kind(&self) -> Protocol {
        Protocol::Rolling
    }

    fn block_size_for(&self, config: &GmacConfig, _size: u64) -> u64 {
        config.block_size
    }

    fn initial_state(&self) -> BlockState {
        BlockState::ReadOnly
    }

    fn on_alloc(&mut self, rt: &mut Runtime, _mgr: &mut Manager, _addr: VAddr) -> GmacResult<()> {
        // Adaptive rolling size: "every time a new memory structure is
        // allocated, the rolling size is increased by a fixed factor
        // (default 2 blocks)" — unless pinned by configuration (Figure 12).
        match rt.config().rolling_size {
            Some(fixed) => self.limit = fixed,
            None => self.limit += rt.config().rolling_factor,
        }
        Ok(())
    }

    fn on_free(&mut self, _rt: &mut Runtime, obj: &SharedObject) -> GmacResult<()> {
        // Remove the object's dirty blocks from the accounting; stale FIFO
        // entries are skipped lazily. An evicted object's blocks are all
        // Dirty but already left the accounting at eviction time.
        if obj.is_resident() {
            self.dirty_count -= obj.count_in_state(BlockState::Dirty);
        }
        let addr = obj.addr();
        self.fifo.retain(|&(a, _)| a != addr);
        Ok(())
    }

    fn release(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        dev: DeviceId,
        writes: Option<&[VAddr]>,
    ) -> GmacResult<()> {
        // Plan a flush of every remaining dirty block. Adjacent dirty blocks
        // coalesce into single DMA jobs, and the jobs are asynchronous: they
        // pipeline behind any in-flight eager evictions. The explicit join
        // happens at the `adsmCall` boundary ([`crate::Context::call`]), not
        // here — callers driving the protocol directly can join through
        // [`Runtime::join_dma`] when they need the timeline drained.
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Async, Purpose::Release);
        for addr in mgr.addrs() {
            let obj = mgr.find(addr).expect("registered object").clone();
            if obj.device() != dev || !obj.is_resident() {
                continue;
            }
            // Runs of adjacent dirty blocks flush as single requests.
            for run in obj.runs_in(0, obj.size()) {
                if run.state == BlockState::Dirty {
                    plan.request(&obj, run.start, run.len());
                }
            }
        }
        rt.execute(&plan)?;
        // Invalidate (or downgrade) every block per the write annotation.
        // Evicted objects are skipped whole: the host copy is the only copy,
        // so invalidating it would lose bytes.
        for addr in mgr.addrs() {
            let obj = mgr.find(addr).expect("registered object").clone();
            if obj.device() != dev || !obj.is_resident() {
                continue;
            }
            let target = mgr.find_mut(addr).expect("registered object");
            if is_written(writes, addr) {
                for idx in 0..target.block_count() {
                    target.set_state(idx, BlockState::Invalid);
                }
                let snapshot = target.clone();
                rt.protect_object(&snapshot, BlockState::Invalid)?;
            } else {
                // Unwritten objects: dirty blocks were flushed above.
                for idx in 0..target.block_count() {
                    if target.state(idx) == BlockState::Dirty {
                        target.set_state(idx, BlockState::ReadOnly);
                    }
                }
                // One mprotect per equal-state run, not one per block.
                let snapshot = target.clone();
                for run in snapshot.runs_in(0, snapshot.size()) {
                    rt.protect_range(&snapshot, run.start, run.end, run.state)?;
                }
            }
        }
        self.recount_dirty(mgr);
        Ok(())
    }

    fn acquire(&mut self, _rt: &mut Runtime, _mgr: &mut Manager, _dev: DeviceId) -> GmacResult<()> {
        // Nothing moves at return; invalid blocks are fetched on demand.
        Ok(())
    }

    fn prepare_read(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
    ) -> GmacResult<()> {
        let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
        Runtime::check_bounds(&obj, offset, len)?;
        // Plan a fetch of *only the invalid blocks* — "rolling update also
        // reduces the amount of data transferred from accelerators when the
        // CPU reads the output kernel data in a scattered way" (§4.3). Runs
        // of adjacent invalid blocks fetch as single requests.
        let mut plan = rt.plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Fetch);
        let mut fetched = Vec::new();
        for run in obj.runs_in(offset, len) {
            if run.state == BlockState::Invalid {
                plan.request(&obj, run.start, run.len());
                fetched.push(run);
            }
        }
        rt.execute(&plan)?;
        for run in fetched {
            rt.protect_range(&obj, run.start, run.end, BlockState::ReadOnly)?;
            let target = mgr.find_mut(addr).expect("registered object");
            for idx in run.blocks.clone() {
                target.set_state(idx, BlockState::ReadOnly);
            }
        }
        Ok(())
    }

    fn prepare_write(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
    ) -> GmacResult<()> {
        let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
        Runtime::check_bounds(&obj, offset, len)?;
        for idx in obj.blocks_overlapping(offset, len) {
            let block = obj.block(idx);
            if block.state == BlockState::Invalid {
                // A partial overwrite of an invalid block must merge with the
                // accelerator's bytes; a full overwrite needs no fetch.
                let fully_covered =
                    offset <= block.offset && offset + len >= block.offset + block.len;
                if !fully_covered {
                    let mut plan = rt.plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Fetch);
                    plan.request_block(&obj, idx);
                    rt.execute(&plan)?;
                }
            }
            self.mark_dirty(rt, mgr, addr, idx)?;
        }
        Ok(())
    }

    fn dirty_blocks(&self, _mgr: &Manager) -> usize {
        self.dirty_count
    }

    fn on_evict(&mut self, _rt: &mut Runtime, mgr: &mut Manager, addr: VAddr) -> GmacResult<()> {
        // Mirror of on_free: the object's dirty blocks leave the rolling
        // accounting (the evictor is about to mark every block Dirty on the
        // host side, but those are not flushable until re-fetch).
        if let Some(obj) = mgr.find(addr) {
            self.dirty_count -= obj.count_in_state(BlockState::Dirty);
        }
        self.fifo.retain(|&(a, _)| a != addr);
        Ok(())
    }

    fn on_resident(&mut self, _rt: &mut Runtime, mgr: &mut Manager, addr: VAddr) -> GmacResult<()> {
        // The re-homed object comes back with every block Dirty (host
        // authoritative). Re-admit them into the rolling accounting, oldest
        // first, so subsequent overflow evictions stream them out to the
        // fresh window instead of leaking dirty blocks past the bound. No
        // flush happens here — the next release/overflow pays it.
        if let Some(obj) = mgr.find(addr) {
            for idx in 0..obj.block_count() {
                self.fifo.push_back((addr, idx));
            }
            self.dirty_count += obj.count_in_state(BlockState::Dirty);
        }
        Ok(())
    }

    fn memset_through(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
        value: u8,
    ) -> GmacResult<()> {
        crate::protocol::memset_device_side(rt, mgr, addr, offset, len, value)?;
        // Blocks forced out of Dirty must leave the rolling accounting.
        self.recount_dirty(mgr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmacConfig;
    use crate::testutil::{harness, harness_with_config};

    const DEV: DeviceId = DeviceId(0);
    const BS: u64 = 256 * 1024;

    fn rolling(cfg: GmacConfig, sizes: &[u64]) -> (Runtime, Manager, Box<dyn CoherenceProtocol>) {
        harness_with_config(cfg.protocol(Protocol::Rolling), sizes)
    }

    #[test]
    fn adaptive_rolling_size_grows_per_allocation() {
        let (_rt, _mgr, p) = harness(Protocol::Rolling, &[BS * 4, BS * 4, BS * 4]);
        // Default factor 2, three allocations.
        let p = p as Box<dyn CoherenceProtocol>;
        // Access via dirty bound behaviour: we can't downcast easily, so use
        // a fixed-size config in the remaining tests; here just ensure no
        // panic occurred and the harness built three objects.
        assert_eq!(p.kind(), Protocol::Rolling);
    }

    #[test]
    fn dirty_set_is_bounded_and_evicts_oldest() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(2);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 8]);
        let addr = mgr.addrs()[0];
        // Dirty three blocks; the first must be evicted.
        for i in 0..3 {
            p.prepare_write(&mut rt, &mut mgr, addr, i * BS, 8).unwrap();
        }
        let obj = mgr.find(addr).unwrap();
        assert_eq!(obj.block(0).state, BlockState::ReadOnly, "oldest evicted");
        assert_eq!(obj.block(1).state, BlockState::Dirty);
        assert_eq!(obj.block(2).state, BlockState::Dirty);
        assert_eq!(p.dirty_blocks(&mgr), 2);
        assert_eq!(rt.counters().eager_evictions, 1, "eviction used async DMA");
    }

    #[test]
    fn eviction_is_eager_and_overlaps() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(1);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 4]);
        let addr = mgr.addrs()[0];
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 8).unwrap();
        let t_before = rt.platform().now();
        p.prepare_write(&mut rt, &mut mgr, addr, BS, 8).unwrap(); // evicts block 0
        let elapsed = rt.platform().now().since(t_before);
        // The eviction DMA does not block the CPU (only fault bookkeeping
        // time passes, far below the ~58us a 256 KiB PCIe transfer takes).
        assert!(
            elapsed < hetsim::Nanos::from_micros(20),
            "eager eviction must not block the CPU (elapsed {elapsed})"
        );
    }

    #[test]
    fn sync_eviction_blocks_when_eager_disabled() {
        let cfg = GmacConfig::new()
            .block_size(BS)
            .rolling_size(1)
            .eager_eviction(false);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 4]);
        let addr = mgr.addrs()[0];
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 8).unwrap();
        let t_before = rt.platform().now();
        p.prepare_write(&mut rt, &mut mgr, addr, BS, 8).unwrap();
        assert!(
            rt.platform().now().since(t_before) > hetsim::Nanos::from_micros(20),
            "synchronous eviction blocks for the transfer"
        );
        assert_eq!(rt.counters().eager_evictions, 0);
    }

    #[test]
    fn release_flushes_dirty_and_invalidates_all() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(8);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 4]);
        let addr = mgr.addrs()[0];
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 8).unwrap();
        p.prepare_write(&mut rt, &mut mgr, addr, 2 * BS, 8).unwrap();
        let before = rt.platform().transfers().h2d_bytes;
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        // Exactly the two dirty blocks moved.
        assert_eq!(rt.platform().transfers().h2d_bytes - before, 2 * BS);
        let obj = mgr.find(addr).unwrap();
        assert!(obj.blocks().all(|b| b.state == BlockState::Invalid));
        assert_eq!(p.dirty_blocks(&mgr), 0);
    }

    #[test]
    fn scattered_read_fetches_single_blocks() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(8);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 8]);
        let addr = mgr.addrs()[0];
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        let before = rt.platform().transfers().d2h_bytes;
        // Read one byte in block 5: only that block comes back.
        p.prepare_read(&mut rt, &mut mgr, addr, 5 * BS + 17, 1)
            .unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes - before, BS);
        let obj = mgr.find(addr).unwrap();
        assert_eq!(obj.block(5).state, BlockState::ReadOnly);
        assert_eq!(obj.block(4).state, BlockState::Invalid);
    }

    #[test]
    fn full_block_overwrite_skips_fetch() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(8);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 2]);
        let addr = mgr.addrs()[0];
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        let before_d2h = rt.platform().transfers().d2h_bytes;
        p.prepare_write(&mut rt, &mut mgr, addr, 0, BS).unwrap(); // whole block
        assert_eq!(
            rt.platform().transfers().d2h_bytes,
            before_d2h,
            "no fetch needed"
        );
        // Partial overwrite of an invalid block must fetch.
        p.prepare_write(&mut rt, &mut mgr, addr, BS, 8).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes - before_d2h, BS);
    }

    #[test]
    fn tail_block_has_short_length() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(8);
        // 2.5 blocks worth of data (page-rounded).
        let size = BS * 2 + 40960;
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[size]);
        let addr = mgr.addrs()[0];
        let obj = mgr.find(addr).unwrap();
        assert_eq!(obj.block_count(), 3);
        assert_eq!(obj.block(2).len, 40960);
        // Dirtying + flushing the tail moves only the short length.
        p.prepare_write(&mut rt, &mut mgr, addr, 2 * BS, 8).unwrap();
        let before = rt.platform().transfers().h2d_bytes;
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        assert_eq!(rt.platform().transfers().h2d_bytes - before, 40960);
    }

    #[test]
    fn annotation_preserves_unwritten_objects() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(8);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 2, BS * 2]);
        let addrs = mgr.addrs();
        p.prepare_write(&mut rt, &mut mgr, addrs[1], 0, 8).unwrap();
        p.release(&mut rt, &mut mgr, DEV, Some(&addrs[..1]))
            .unwrap();
        let written = mgr.find(addrs[0]).unwrap();
        assert!(written.blocks().all(|b| b.state == BlockState::Invalid));
        let unwritten = mgr.find(addrs[1]).unwrap();
        assert!(unwritten.blocks().all(|b| b.state == BlockState::ReadOnly));
    }

    #[test]
    fn rewrite_after_eviction_redirties() {
        let cfg = GmacConfig::new().block_size(BS).rolling_size(1);
        let (mut rt, mut mgr, mut p) = rolling(cfg, &[BS * 4]);
        let addr = mgr.addrs()[0];
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 8).unwrap();
        p.prepare_write(&mut rt, &mut mgr, addr, BS, 8).unwrap(); // evicts 0
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 8).unwrap(); // evicts 1, redirties 0
        let obj = mgr.find(addr).unwrap();
        assert_eq!(obj.block(0).state, BlockState::Dirty);
        assert_eq!(obj.block(1).state, BlockState::ReadOnly);
        assert_eq!(p.dirty_blocks(&mgr), 1);
    }
}
