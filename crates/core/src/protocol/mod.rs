//! Memory-coherence protocols (paper §3.3/§4.3, Figure 6).
//!
//! All protocols are defined *from the CPU perspective*: every transition is
//! driven by the host at allocation, fault, call and return boundaries; the
//! accelerator performs no coherence actions at all. That asymmetry is the
//! core of ADSM — it is what allows simple accelerators.
//!
//! Three protocols are provided, each a refinement of the previous one:
//!
//! | protocol | granularity | detection | transfers |
//! |---|---|---|---|
//! | [`batch`]   | object | none (everything moves) | all objects, both ways |
//! | [`lazy`]    | object | page faults | dirty objects at call, faulted objects after return |
//! | [`rolling`] | block  | page faults | dirty blocks, eagerly evicted as the CPU writes |

pub mod batch;
pub mod lazy;
pub mod rolling;

use crate::config::{GmacConfig, Protocol};
use crate::error::GmacResult;
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::runtime::Runtime;
use crate::state::BlockState;
use hetsim::DeviceId;
use softmmu::VAddr;

/// A host-driven coherence protocol.
///
/// Implementations must uphold the release-consistency obligations of §3.3:
/// after [`Self::release`] the accelerator's memory holds every byte the CPU
/// wrote; after [`Self::acquire`] + [`Self::prepare_read`] the CPU observes
/// every byte the kernel wrote.
///
/// Protocols do not move data imperatively: they *plan* the block ranges
/// that must move ([`crate::xfer::TransferPlan`]) and hand the plan to
/// [`Runtime::execute`], which coalesces adjacent ranges into DMA jobs.
/// Asynchronous release flushes are joined at the `adsmCall` boundary by the
/// caller ([`Runtime::join_dma`]), not inside the protocol.
///
/// Since the shard redesign the runtime instantiates **one protocol per
/// device shard** ([`crate::shard::DeviceShard`]): the manager passed in
/// holds only that device's objects, rolling-update's dirty FIFO and
/// adaptive rolling size are per-accelerator, and batch-update's release
/// annotation needs no cross-device keying. The `dev` parameter of
/// [`Self::release`]/[`Self::acquire`] therefore always names the owning
/// shard's device; standalone harnesses driving one instance across several
/// devices must partition their managers the same way. Protocols are `Send`
/// because they live behind their shard's mutex.
pub trait CoherenceProtocol: std::fmt::Debug + Send {
    /// Which protocol this is.
    fn kind(&self) -> Protocol;

    /// Block granularity for a new object of `size` bytes (object-granular
    /// protocols return `size`; rolling-update returns the configured block
    /// size).
    fn block_size_for(&self, config: &GmacConfig, size: u64) -> u64;

    /// Initial state of a fresh object's blocks.
    fn initial_state(&self) -> BlockState;

    /// Hook after the object starting at `addr` has been registered.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn on_alloc(&mut self, rt: &mut Runtime, mgr: &mut Manager, addr: VAddr) -> GmacResult<()>;

    /// Hook after an object has been removed from the registry (but before
    /// its mappings are destroyed).
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn on_free(&mut self, rt: &mut Runtime, obj: &SharedObject) -> GmacResult<()>;

    /// Release side of `adsmCall`: make every object hosted on `dev`
    /// consistent in accelerator memory.
    ///
    /// `writes` optionally names the objects the kernel will write (the
    /// paper's §4.3 annotation): when given, only those objects are
    /// invalidated; the rest keep a CPU-readable state, avoiding the
    /// transfer-back deficiency the paper describes.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn release(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        dev: DeviceId,
        writes: Option<&[VAddr]>,
    ) -> GmacResult<()>;

    /// Acquire side of `adsmSync`, after the kernel has completed.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn acquire(&mut self, rt: &mut Runtime, mgr: &mut Manager, dev: DeviceId) -> GmacResult<()>;

    /// Makes `[offset, offset+len)` of the object at `addr` readable by the
    /// CPU (fetching invalid data as needed). This is the body of the
    /// paper's read-fault handler.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn prepare_read(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
    ) -> GmacResult<()>;

    /// Makes the range writable and marks it dirty. This is the body of the
    /// paper's write-fault handler. Callers must write the prepared bytes
    /// before preparing further ranges (rolling-update may evict older
    /// blocks during this call).
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn prepare_write(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
    ) -> GmacResult<()>;

    /// Number of blocks currently dirty (rolling-update bookkeeping; other
    /// protocols derive it from object states).
    fn dirty_blocks(&self, mgr: &Manager) -> usize {
        mgr.iter()
            .map(|o| o.count_in_state(BlockState::Dirty))
            .sum()
    }

    /// Hook just before the object at `addr` is evicted from device memory
    /// (the shard has already fetched device-only bytes to host and will
    /// set every block Dirty). Protocols with bookkeeping tied to the
    /// device copy (rolling-update's dirty FIFO) drop the object here;
    /// object-granular protocols need nothing.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn on_evict(&mut self, _rt: &mut Runtime, _mgr: &mut Manager, _addr: VAddr) -> GmacResult<()> {
        Ok(())
    }

    /// Hook just after the evicted object at `addr` has been re-homed in a
    /// fresh device window (every block Dirty, host authoritative — the
    /// next release flushes it whole). Rolling-update re-admits the blocks
    /// into its dirty FIFO here.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn on_resident(
        &mut self,
        _rt: &mut Runtime,
        _mgr: &mut Manager,
        _addr: VAddr,
    ) -> GmacResult<()> {
        Ok(())
    }

    /// Interposed `memset` (paper §4.4): fill the range *device-side*
    /// (`cudaMemset`) instead of faulting page by page on the host, then
    /// invalidate the covered blocks so later CPU reads fetch the fill.
    ///
    /// Partially-covered dirty blocks are flushed first so pending host
    /// bytes outside the fill range are not lost.
    ///
    /// # Errors
    /// Propagates transfer/MMU failures.
    fn memset_through(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        offset: u64,
        len: u64,
        value: u8,
    ) -> GmacResult<()> {
        memset_device_side(rt, mgr, addr, offset, len, value)
    }
}

/// The shared body of [`CoherenceProtocol::memset_through`]: plan a flush of
/// partially-covered dirty blocks, fill the range device-side, then
/// invalidate the covered blocks. Rolling-update wraps this with its
/// dirty-set recount.
pub(crate) fn memset_device_side(
    rt: &mut Runtime,
    mgr: &mut Manager,
    addr: VAddr,
    offset: u64,
    len: u64,
    value: u8,
) -> GmacResult<()> {
    use crate::error::GmacError;
    use crate::xfer::Purpose;
    use hetsim::{CopyMode, Direction};
    let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
    Runtime::check_bounds(&obj, offset, len)?;
    let mut plan = rt.plan(
        Direction::HostToDevice,
        CopyMode::Sync,
        Purpose::MemsetFlush,
    );
    for idx in obj.blocks_overlapping(offset, len) {
        let block = obj.block(idx);
        let fully = offset <= block.offset && offset + len >= block.offset + block.len;
        if block.state == BlockState::Dirty && !fully {
            plan.request_block(&obj, idx);
        }
    }
    rt.execute(&plan)?;
    rt.dev_fill(&obj, offset, len, value)?;
    // The covered blocks form one contiguous span: one mprotect + one state
    // sweep instead of a per-block loop.
    let covered = obj.blocks_overlapping(offset, len);
    let span_lo = covered.start as u64 * obj.block_size();
    let span_hi = (covered.end as u64 * obj.block_size()).min(obj.size());
    rt.protect_range(&obj, span_lo, span_hi, BlockState::Invalid)?;
    let target = mgr.find_mut(addr).expect("registered object");
    for idx in covered {
        target.set_state(idx, BlockState::Invalid);
    }
    Ok(())
}

/// Instantiates the protocol selected by `kind`.
pub fn make(kind: Protocol) -> Box<dyn CoherenceProtocol> {
    match kind {
        Protocol::Batch => Box::new(batch::BatchUpdate::new()),
        Protocol::Lazy => Box::new(lazy::LazyUpdate::new()),
        Protocol::Rolling => Box::new(rolling::RollingUpdate::new()),
    }
}

/// Applies the §4.3 write-annotation rule shared by lazy and rolling
/// release paths: returns true when the object at `addr` must be invalidated.
pub(crate) fn is_written(writes: Option<&[VAddr]>, addr: VAddr) -> bool {
    match writes {
        None => true, // no annotation: conservatively invalidate everything
        Some(list) => list.contains(&addr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for kind in Protocol::ALL {
            let p = make(kind);
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn write_annotation_rule() {
        let a = VAddr(0x1000);
        let b = VAddr(0x2000);
        assert!(is_written(None, a), "no annotation invalidates everything");
        assert!(is_written(Some(&[a]), a));
        assert!(!is_written(Some(&[a]), b));
        assert!(!is_written(Some(&[]), a));
    }
}
