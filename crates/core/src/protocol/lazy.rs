//! Lazy-update: page-protection detection at object granularity (paper
//! Figure 6b without the dotted rolling transition).
//!
//! "Lazy-update improves upon batch-update by detecting CPU modifications to
//! objects in read-only state and any CPU read or write access to objects in
//! invalid state. [...] On a kernel invocation all shared data structures are
//! invalidated and those in the dirty state are transferred from system
//! memory to accelerator memory. On kernel return no data transfer is done."
//! — §4.3
//!
//! Lazy-update keeps no protocol-level state of its own: all per-object
//! state lives in the object's block records, which since the shard redesign
//! are owned by the home device's shard (one protocol instance per shard).

use crate::config::{GmacConfig, Protocol};
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::{is_written, CoherenceProtocol};
use crate::runtime::Runtime;
use crate::state::BlockState;
use crate::xfer::Purpose;
use hetsim::{CopyMode, DeviceId, Direction};
use softmmu::VAddr;

/// The lazy-update protocol.
#[derive(Debug, Default)]
pub struct LazyUpdate {
    _priv: (),
}

impl LazyUpdate {
    /// Creates the protocol.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transitions the whole object out of `Invalid` by fetching it from the
    /// accelerator, then sets `target` state and protection.
    fn make_valid(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        target: BlockState,
    ) -> GmacResult<()> {
        let obj = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.clone();
        if obj.state(0) == BlockState::Invalid {
            // Whole-object transfer: the defining cost of lazy-update
            // compared to rolling-update (Figure 9).
            let mut plan = rt.plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Fetch);
            plan.request(&obj, 0, obj.size());
            rt.execute(&plan)?;
        }
        rt.protect_object(&obj, target)?;
        mgr.find_mut(addr)
            .expect("registered object")
            .set_state(0, target);
        Ok(())
    }
}

impl CoherenceProtocol for LazyUpdate {
    fn kind(&self) -> Protocol {
        Protocol::Lazy
    }

    fn block_size_for(&self, _config: &GmacConfig, size: u64) -> u64 {
        // Whole-object granularity.
        size
    }

    fn initial_state(&self) -> BlockState {
        // "Shared data structures are initialized to a read-only state when
        // they are allocated, so read accesses do not trigger a page fault."
        BlockState::ReadOnly
    }

    fn on_alloc(&mut self, _rt: &mut Runtime, _mgr: &mut Manager, _addr: VAddr) -> GmacResult<()> {
        Ok(())
    }

    fn on_free(&mut self, _rt: &mut Runtime, _obj: &SharedObject) -> GmacResult<()> {
        Ok(())
    }

    fn release(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        dev: DeviceId,
        writes: Option<&[VAddr]>,
    ) -> GmacResult<()> {
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
        for addr in mgr.addrs() {
            let obj = mgr.find(addr).expect("registered object").clone();
            if obj.device() != dev {
                continue;
            }
            // Evicted objects own no device window: the host copy stays
            // authoritative (Dirty, pages read-write) until re-fetch.
            if !obj.is_resident() {
                continue;
            }
            let state = obj.state(0);
            // Only objects modified by the CPU move (first benefit in §4.3).
            if state == BlockState::Dirty {
                plan.request(&obj, 0, obj.size());
            }
            let new_state = if is_written(writes, addr) {
                BlockState::Invalid
            } else {
                // Annotated read-only for the kernel: the CPU copy stays
                // valid, avoiding the paper's transfer-back deficiency.
                match state {
                    BlockState::Dirty => BlockState::ReadOnly,
                    other => other,
                }
            };
            rt.protect_object(&obj, new_state)?;
            mgr.find_mut(addr)
                .expect("registered object")
                .set_state(0, new_state);
        }
        rt.execute(&plan)?;
        Ok(())
    }

    fn acquire(&mut self, _rt: &mut Runtime, _mgr: &mut Manager, _dev: DeviceId) -> GmacResult<()> {
        // "On kernel return no data transfer is done and all shared data
        // objects remain in invalid state."
        Ok(())
    }

    fn prepare_read(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        _offset: u64,
        _len: u64,
    ) -> GmacResult<()> {
        let state = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.state(0);
        match state {
            BlockState::Invalid => self.make_valid(rt, mgr, addr, BlockState::ReadOnly),
            _ => Ok(()),
        }
    }

    fn prepare_write(
        &mut self,
        rt: &mut Runtime,
        mgr: &mut Manager,
        addr: VAddr,
        _offset: u64,
        _len: u64,
    ) -> GmacResult<()> {
        let state = mgr.find(addr).ok_or(GmacError::NotShared(addr))?.state(0);
        match state {
            BlockState::Dirty => Ok(()),
            // Invalid -> fetch then dirty; ReadOnly -> just dirty.
            _ => self.make_valid(rt, mgr, addr, BlockState::Dirty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::harness;

    const DEV: DeviceId = DeviceId(0);

    #[test]
    fn only_dirty_objects_move_at_release() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[8192, 4096]);
        let addrs = mgr.addrs();
        // Dirty the first object only.
        p.prepare_write(&mut rt, &mut mgr, addrs[0], 0, 1).unwrap();
        let before = rt.platform().transfers().h2d_bytes;
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        assert_eq!(
            rt.platform().transfers().h2d_bytes - before,
            8192,
            "clean object not transferred (first benefit of lazy-update)"
        );
        for obj in mgr.iter() {
            assert_eq!(obj.state(0), BlockState::Invalid);
        }
    }

    #[test]
    fn acquire_transfers_nothing() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[8192]);
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        let before = rt.platform().transfers().d2h_bytes;
        p.acquire(&mut rt, &mut mgr, DEV).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes, before);
    }

    #[test]
    fn read_of_invalid_object_fetches_whole_object() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[16384]);
        let addr = mgr.addrs()[0];
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        let before = rt.platform().transfers().d2h_bytes;
        // CPU touches one byte: lazy fetches the *entire* object.
        p.prepare_read(&mut rt, &mut mgr, addr, 5, 1).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes - before, 16384);
        assert_eq!(mgr.find(addr).unwrap().state(0), BlockState::ReadOnly);
        // Subsequent reads are free.
        let before = rt.platform().transfers().d2h_bytes;
        p.prepare_read(&mut rt, &mut mgr, addr, 6000, 64).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes, before);
    }

    #[test]
    fn write_to_invalid_object_fetches_then_dirties() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[8192]);
        let addr = mgr.addrs()[0];
        p.release(&mut rt, &mut mgr, DEV, None).unwrap();
        p.prepare_write(&mut rt, &mut mgr, addr, 0, 4).unwrap();
        assert_eq!(mgr.find(addr).unwrap().state(0), BlockState::Dirty);
        assert_eq!(rt.counters().blocks_fetched, 1);
        // Host pages are now read-write: stores succeed.
        rt.vm.write_bytes(addr, &[1, 2, 3, 4]).unwrap();
    }

    #[test]
    fn write_to_read_only_dirties_without_transfer() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[8192]);
        let addr = mgr.addrs()[0];
        let before = rt.platform().transfers().total_bytes();
        p.prepare_write(&mut rt, &mut mgr, addr, 100, 4).unwrap();
        assert_eq!(
            rt.platform().transfers().total_bytes(),
            before,
            "no data motion"
        );
        assert_eq!(mgr.find(addr).unwrap().state(0), BlockState::Dirty);
    }

    #[test]
    fn annotation_keeps_unwritten_objects_valid() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[8192, 4096]);
        let addrs = mgr.addrs();
        p.prepare_write(&mut rt, &mut mgr, addrs[1], 0, 1).unwrap();
        // Kernel writes only object 0.
        p.release(&mut rt, &mut mgr, DEV, Some(&addrs[..1]))
            .unwrap();
        assert_eq!(mgr.find(addrs[0]).unwrap().state(0), BlockState::Invalid);
        // Object 1 was dirty, got flushed, and stays CPU-readable.
        assert_eq!(mgr.find(addrs[1]).unwrap().state(0), BlockState::ReadOnly);
        // Reading it costs no transfer.
        let before = rt.platform().transfers().d2h_bytes;
        p.prepare_read(&mut rt, &mut mgr, addrs[1], 0, 64).unwrap();
        assert_eq!(rt.platform().transfers().d2h_bytes, before);
    }

    #[test]
    fn foreign_address_is_error() {
        let (mut rt, mut mgr, mut p) = harness(Protocol::Lazy, &[4096]);
        let bogus = VAddr(0xDEAD_0000);
        assert!(matches!(
            p.prepare_read(&mut rt, &mut mgr, bogus, 0, 1),
            Err(GmacError::NotShared(_))
        ));
    }
}
