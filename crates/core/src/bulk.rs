//! Bulk memory operation interposition (paper §4.4).
//!
//! GMAC overloads `memset()` and `memcpy()` so operations touching shared
//! objects avoid page-fault storms: the runtime already knows the operation's
//! full extent, so it resolves each block once (charging a single
//! fault-equivalent) and streams the bytes, instead of faulting page by page.
//! Operations on private memory are forwarded verbatim (in Rust terms: plain
//! slice operations — nothing to interpose).
//!
//! The public surface lives on [`crate::Session`] (and the deprecated
//! [`crate::Context`] shim); this module holds the shared implementation.

use crate::config::Protocol;
use crate::error::GmacResult;
use crate::ptr::SharedPtr;
use crate::shard::DeviceShard;

impl DeviceShard {
    /// Interposed `memset(ptr, value, len)` over shared memory: performed
    /// device-side (`cudaMemset`), exactly as the paper's overloaded memset
    /// (§4.4) — no page faults, no host staging copy. Runs under this
    /// shard's lock; the `memcpy` family lives on [`crate::gmac::Inner`]
    /// because a shared-to-shared copy may span two shards.
    pub(crate) fn memset_locked(&mut self, ptr: SharedPtr, value: u8, len: u64) -> GmacResult<()> {
        // The device-side fill needs a device window; an evicted target is
        // re-homed first. Batch-update fills host-side instead and its
        // evicted objects stay host-authoritative, so it skips the re-fetch.
        if self.protocol.kind() != Protocol::Batch {
            self.ensure_resident(ptr.addr(), &[])?;
        }
        let (start, _) = self.locate(ptr.addr())?;
        let offset = ptr.addr() - start;
        self.protocol
            .memset_through(&mut self.rt, &mut self.mgr, start, offset, len, value)?;
        // The fill is a program write to shared data (even though it lands
        // device-side): the race detector must see it.
        self.race_note_write(ptr.addr(), len)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GmacConfig, Protocol};
    use crate::{Gmac, Session};
    use hetsim::Platform;

    fn session(protocol: Protocol) -> Session {
        Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(protocol)
                .block_size(64 * 1024),
        )
        .session()
    }

    #[test]
    fn memset_fills_shared_memory() {
        for protocol in Protocol::ALL {
            let s = session(protocol);
            let p = s.alloc(200_000).unwrap();
            s.memset(p, 0xEE, 200_000).unwrap();
            let out = s.load_slice::<u8>(p, 200_000).unwrap();
            assert!(out.iter().all(|&b| b == 0xEE), "{protocol}");
        }
    }

    #[test]
    fn memcpy_in_out_roundtrip() {
        for protocol in Protocol::ALL {
            let s = session(protocol);
            let p = s.alloc(100_000).unwrap();
            let data: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
            s.memcpy_in(p, &data).unwrap();
            let mut out = vec![0u8; 100_000];
            s.memcpy_out(&mut out, p).unwrap();
            assert_eq!(out, data, "{protocol}");
        }
    }

    #[test]
    fn shared_to_shared_copy_across_objects() {
        let s = session(Protocol::Rolling);
        let a = s.alloc(128 * 1024).unwrap();
        let b = s.alloc(128 * 1024).unwrap();
        s.memset(a, 0x3D, 128 * 1024).unwrap();
        s.memcpy(b, a, 128 * 1024).unwrap();
        let out = s.load_slice::<u8>(b, 128 * 1024).unwrap();
        assert!(out.iter().all(|&x| x == 0x3D));
    }

    #[test]
    fn bulk_ops_fault_once_per_block_not_per_page() {
        let s = session(Protocol::Rolling); // 64 KiB blocks = 16 pages each
        let p = s.alloc(256 * 1024).unwrap(); // 4 blocks, 64 pages
        s.memcpy_in(p, &vec![1u8; 256 * 1024]).unwrap();
        let faults = s.counters().faults();
        assert_eq!(faults, 4, "one fault-equivalent per block, not 64 per page");
    }

    #[test]
    fn memset_is_device_side_and_fault_free() {
        // The §4.4 interposition: memset becomes cudaMemset — no page
        // faults, no host->device payload transfer.
        let s = session(Protocol::Rolling);
        let p = s.alloc(256 * 1024).unwrap();
        s.memset(p, 0x7F, 256 * 1024).unwrap();
        assert_eq!(s.counters().faults(), 0);
        assert_eq!(s.transfers().h2d_bytes, 0);
        // Blocks are invalid: the first CPU read fetches the fill back.
        let v: u8 = s.load(p).unwrap();
        assert_eq!(v, 0x7F);
        assert!(s.transfers().d2h_bytes > 0);
    }

    #[test]
    fn misaligned_subrange_copy() {
        let s = session(Protocol::Rolling);
        let p = s.alloc(256 * 1024).unwrap();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 91) as u8).collect();
        // Straddles a block boundary at 64 KiB.
        let off = 64 * 1024 - 500;
        s.memcpy_in(p.byte_add(off), &data).unwrap();
        let mut out = vec![0u8; 1000];
        s.memcpy_out(&mut out, p.byte_add(off)).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let s = session(Protocol::Rolling);
        let p = s.alloc(4096).unwrap();
        assert!(s.memset(p, 0, 8192).is_err());
        assert!(s.memcpy_in(p.byte_add(4000), &[0u8; 200]).is_err());
    }
}
