//! Lock-free per-object view backing the zero-instrumentation hit path.
//!
//! With the mmap backend the softmmu hands out a raw host pointer for an
//! object whose bytes are contiguous in the host reservation
//! ([`softmmu::AddressSpace::fast_base`]). An [`ObjFastView`] pairs that
//! pointer with a lock-free mirror of the object's per-block coherence
//! states, published from the single mutation point
//! ([`crate::SharedObject::set_state`]). A typed access on a block whose
//! state permits it then needs **no lock, no route, no page-table walk and
//! no protection check** — the real `mprotect`-managed mapping *is* the
//! protection — just a plain load/store plus one relaxed state probe. Time
//! is charged through the deferred thread-local accumulator
//! ([`crate::fasttime`]), keeping virtual time byte-identical to the
//! checked path.
//!
//! Anything the fast path cannot prove safe — invalid block, non-dirty
//! block on a write, out-of-bounds offset, retired object — reports a miss
//! and the caller falls back to the fully-checked shard path, which raises
//! and resolves the fault exactly as before.
//!
//! # Races under ADSM-contract violations
//!
//! The probe and the access are not atomic together. A *data-race-free* ADSM
//! program (the paper's contract: the CPU does not touch objects released to
//! an in-flight kernel) never observes the window; a racy program may — and
//! because the user view carries real page protection, the access then takes
//! a real `SIGSEGV` and crashes instead of corrupting simulation state. The
//! table-walk backend turns the same race into an `UnresolvedFault` error;
//! neither backend is ever silently wrong.

use crate::fasttime;
use crate::state::BlockState;
use hetsim::Platform;
use softmmu::Scalar;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

/// Raw host pointer into the softmmu user view.
///
/// SAFETY: the pointee is the per-object slice of the mmap backing's user
/// view, which stays mapped (though possibly `PROT_NONE`) for the life of
/// the owning `AddressSpace`; all cross-thread access synchronisation is the
/// ADSM contract itself (see the module docs).
#[derive(Debug, Clone, Copy)]
struct SendPtr(*mut u8);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

const INVALID: u8 = 0;
const READ_ONLY: u8 = 1;
const DIRTY: u8 = 2;

fn encode(state: BlockState) -> u8 {
    match state {
        BlockState::Invalid => INVALID,
        BlockState::ReadOnly => READ_ONLY,
        BlockState::Dirty => DIRTY,
    }
}

/// Lock-free fast-path view of one shared object (see the module docs).
///
/// Created by the shard when an object qualifies (mmap backend active,
/// host-contiguous, power-of-two block size divisible by every scalar
/// size); shared between the owning [`crate::SharedObject`] (which
/// publishes state transitions into it) and the [`crate::Shared`] handles
/// that consume it.
#[derive(Debug)]
pub(crate) struct ObjFastView {
    base: SendPtr,
    size: u64,
    /// `log2(block_size)`; the creator guarantees a power of two.
    block_shift: u32,
    /// Mirror of the object's compact state vector, one atomic byte per
    /// block, written only from `SharedObject::set_state` under the shard
    /// lock; read lock-free here.
    states: Box<[AtomicU8]>,
    /// Set on free: every subsequent probe misses, so a stale handle falls
    /// through to the checked path and gets the same `NotShared` error it
    /// always did.
    retired: AtomicBool,
    platform: Arc<Platform>,
    /// Pre-rounded per-access charge for scalar sizes 1, 2, 4 and 8 bytes
    /// (indexed by `log2(size)`) — exactly what
    /// [`hetsim::Platform::cpu_touch`] would spend, accumulated instead via
    /// [`crate::fasttime`].
    touch_ns: [u64; 4],
}

impl ObjFastView {
    /// Builds a view over `size` bytes at host pointer `base`, with blocks
    /// of `1 << block_shift` bytes starting in `states`.
    pub(crate) fn new(
        base: *mut u8,
        size: u64,
        block_shift: u32,
        states: &[BlockState],
        platform: Arc<Platform>,
    ) -> Arc<Self> {
        let touch_ns =
            [1u64, 2, 4, 8].map(|bytes| platform.cpu().touch_time(bytes as f64).as_nanos());
        Arc::new(ObjFastView {
            base: SendPtr(base),
            size,
            block_shift,
            states: states.iter().map(|&s| AtomicU8::new(encode(s))).collect(),
            retired: AtomicBool::new(false),
            platform,
            touch_ns,
        })
    }

    /// Publishes a block-state transition (called from the single mutation
    /// point, under the shard lock).
    pub(crate) fn publish(&self, idx: usize, state: BlockState) {
        self.states[idx].store(encode(state), Ordering::Release);
    }

    /// Marks the object freed: every later probe misses.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Race-detector epoch boundary: demotes every Dirty mirror entry to
    /// ReadOnly **in the mirror only** — the softmmu page protection is
    /// untouched, so the next fast write per block misses into the checked
    /// path, succeeds there without a fault, is recorded by the detector,
    /// and re-publishes Dirty to restore the warm path. Blocks the epoch
    /// never writes again stay demoted at zero cost.
    pub(crate) fn downgrade_dirty(&self) {
        for state in self.states.iter() {
            let _ = state.compare_exchange(DIRTY, READ_ONLY, Ordering::AcqRel, Ordering::Relaxed);
        }
    }

    /// Probes whether a `len`-byte access at `offset` may go straight to the
    /// host mapping, requiring at least `floor` block state. Returns `None`
    /// on any doubt.
    #[inline]
    fn probe(&self, offset: u64, len: u64, floor: u8) -> Option<()> {
        if self.retired.load(Ordering::Acquire) {
            return None;
        }
        let end = offset.checked_add(len)?;
        if end > self.size {
            return None;
        }
        // Scalar sizes divide the block size (gated at creation), so an
        // element access never straddles blocks: one probe suffices.
        let idx = (offset >> self.block_shift) as usize;
        (self.states[idx].load(Ordering::Acquire) >= floor).then_some(())
    }

    /// Fast typed load: a plain host load when the block is CPU-readable
    /// (ReadOnly or Dirty). `None` = fall back to the checked path.
    #[inline]
    pub(crate) fn read<T: Scalar>(&self, offset: u64) -> Option<T> {
        self.probe(offset, T::SIZE as u64, READ_ONLY)?;
        // SAFETY: the offset is in bounds of the object's live host mapping
        // and T is RAW_COMPAT (caller-gated): any bit pattern is valid and
        // the in-memory representation is the encoding.
        let value = unsafe {
            self.base
                .0
                .add(offset as usize)
                .cast::<T>()
                .read_unaligned()
        };
        fasttime::add(
            &self.platform,
            self.touch_ns[T::SIZE.trailing_zeros() as usize],
        );
        Some(value)
    }

    /// Fast typed store: a plain host store when the block is already Dirty
    /// (the only state a checked store leaves unchanged). `false` = fall
    /// back to the checked path.
    #[inline]
    pub(crate) fn write<T: Scalar>(&self, offset: u64, value: T) -> bool {
        if self.probe(offset, T::SIZE as u64, DIRTY).is_none() {
            return false;
        }
        // SAFETY: in-bounds of the live host mapping; RAW_COMPAT `T`
        // (caller-gated) writes its exact encoding.
        unsafe {
            self.base
                .0
                .add(offset as usize)
                .cast::<T>()
                .write_unaligned(value);
        }
        fasttime::add(
            &self.platform,
            self.touch_ns[T::SIZE.trailing_zeros() as usize],
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(size: u64, states: &[BlockState]) -> (Arc<ObjFastView>, Vec<u8>) {
        let mut bytes = vec![0u8; size as usize];
        let platform = Arc::new(Platform::desktop_g280());
        let v = ObjFastView::new(bytes.as_mut_ptr(), size, 12, states, platform);
        (v, bytes)
    }

    #[test]
    fn read_needs_readable_write_needs_dirty() {
        let states = [BlockState::Invalid, BlockState::ReadOnly, BlockState::Dirty];
        let (v, _keep) = view(3 * 4096, &states);
        assert_eq!(v.read::<u32>(0), None, "invalid block");
        assert_eq!(v.read::<u32>(4096), Some(0), "read-only block reads");
        assert!(!v.write::<u32>(4096, 1), "read-only block rejects writes");
        assert!(v.write::<u32>(2 * 4096 + 8, 0xDEAD_BEEF));
        assert_eq!(v.read::<u32>(2 * 4096 + 8), Some(0xDEAD_BEEF));
    }

    #[test]
    fn publish_flips_the_probe() {
        let (v, _keep) = view(4096, &[BlockState::Invalid]);
        assert_eq!(v.read::<u64>(0), None);
        v.publish(0, BlockState::Dirty);
        assert!(v.write::<u64>(8, 7));
        v.publish(0, BlockState::ReadOnly);
        assert!(!v.write::<u64>(8, 8), "downgrade re-arms write detection");
        assert_eq!(v.read::<u64>(8), Some(7));
    }

    #[test]
    fn downgrade_dirty_demotes_only_dirty_blocks() {
        let states = [BlockState::Invalid, BlockState::ReadOnly, BlockState::Dirty];
        let (v, _keep) = view(3 * 4096, &states);
        v.downgrade_dirty();
        assert_eq!(v.read::<u32>(0), None, "invalid stays invalid");
        assert_eq!(
            v.read::<u32>(2 * 4096),
            Some(0),
            "demoted block still reads"
        );
        assert!(!v.write::<u32>(2 * 4096, 1), "demoted block misses writes");
        v.publish(2, BlockState::Dirty);
        assert!(
            v.write::<u32>(2 * 4096, 1),
            "republish re-arms the warm path"
        );
    }

    #[test]
    fn bounds_and_retire_miss() {
        let (v, _keep) = view(4096, &[BlockState::Dirty]);
        assert_eq!(v.read::<u64>(4089), None, "tail straddles the end");
        assert_eq!(v.read::<u64>(u64::MAX - 3), None, "offset overflow");
        v.retire();
        assert_eq!(v.read::<u32>(0), None);
        assert!(!v.write::<u32>(0, 1));
    }
}
