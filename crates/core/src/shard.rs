//! Per-device runtime shards.
//!
//! A [`DeviceShard`] owns **everything the runtime mutates on behalf of one
//! accelerator**: the manager slice holding that device's shared objects
//! (including per-block coherence state), the host-side MMU regions
//! mirroring those objects, the device's own coherence-protocol instance
//! (rolling-update's dirty FIFO, batch-update's write-set annotation), the
//! pending kernel call, the asynchronous-DMA queue and the event counters.
//!
//! The ADSM model makes this split sound: coherence work happens only at
//! acquire/release boundaries driven by the host thread attached to the
//! accelerator (paper §3.2/§3.3), and a kernel's parameters must all live on
//! its own device ([`crate::GmacError::MixedDevices`]), so between
//! boundaries the state of two shards is independent. Cross-device
//! operations (`memcpy` between objects homed on different accelerators,
//! `sync` across all devices) are explicit multi-shard transactions that
//! lock shards **one at a time, in device-id order** — see the lock-order
//! invariant below.
//!
//! # Lock-order invariant
//!
//! The sharded runtime has three lock families, acquired strictly in this
//! order:
//!
//! 1. the **registry** `RwLock` (address → home-device routing; read-mostly),
//! 2. at most **one shard** mutex at a time (never shard → shard),
//! 3. platform-internal leaf locks (device mutexes, clock, ledgers) below
//!    any shard lock.
//!
//! In practice the registry guard is dropped *before* the shard mutex is
//! taken (routing returns plain values), so no gmac-level locks ever nest;
//! multi-shard transactions stage data through host buffers between shard
//! acquisitions instead of holding two shards at once.

use crate::config::GmacConfig;
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::{ObjectId, SharedObject};
use crate::protocol::{make, CoherenceProtocol};
use crate::ptr::SharedPtr;
use crate::runtime::Runtime;
use crate::session::{SessionId, SessionView};
use crate::state::BlockState;
use hetsim::{Category, DevAddr, DeviceId, Platform, StreamId};
use softmmu::{AccessKind, MmuError, Scalar, VAddr};
use std::sync::Arc;

/// An outstanding accelerator call awaiting a `sync`.
#[derive(Debug, Clone)]
pub(crate) struct PendingCall {
    /// Session that issued the call (only it may sync or stack more calls).
    pub(crate) session: SessionId,
    /// Stream the kernel was launched on.
    pub(crate) stream: StreamId,
    /// Start addresses of the shared objects the call references; `free` on
    /// any of them fails with [`GmacError::ObjectInUse`] until the sync.
    pub(crate) objects: Vec<VAddr>,
}

/// The independently-lockable runtime state of one accelerator.
///
/// One `DeviceShard` exists per platform device, each behind its own mutex
/// inside the shared [`crate::Gmac`] runtime. An operation acquires exactly
/// the shards it names (almost always one, found by routing the pointer
/// through the read-mostly registry), so sessions driving different
/// accelerators run concurrently in wall-clock terms — the property the
/// `contention` benchmark measures against the global-lock ablation mode
/// ([`crate::GmacConfig::sharding`]).
///
/// See the [module docs](self) for the lock-order invariant.
#[derive(Debug)]
pub struct DeviceShard {
    pub(crate) dev: DeviceId,
    /// Per-shard runtime: shared platform handle + this shard's MMU regions,
    /// DMA queue and counters.
    pub(crate) rt: Runtime,
    /// Registry slice: the shared objects homed on this device, including
    /// their per-block coherence state.
    pub(crate) mgr: Manager,
    /// This device's own protocol instance (per-device dirty FIFO, rolling
    /// size, release annotations).
    pub(crate) protocol: Box<dyn CoherenceProtocol>,
    /// The at-most-one un-synced kernel call on this accelerator.
    pub(crate) pending: Option<PendingCall>,
}

impl DeviceShard {
    pub(crate) fn new(dev: DeviceId, platform: Arc<Platform>, config: &GmacConfig) -> Self {
        DeviceShard {
            dev,
            rt: Runtime::from_shared(platform, config.clone()),
            mgr: Manager::new(config.lookup),
            protocol: make(config.protocol),
            pending: None,
        }
    }

    // ----- allocation -------------------------------------------------------

    /// Maps and registers a freshly device-allocated object (the tail of
    /// `adsmAlloc`/`adsmSafeAlloc`; the registry claim already succeeded).
    pub(crate) fn install_object(
        &mut self,
        id: ObjectId,
        dev_addr: DevAddr,
        addr: VAddr,
        size: u64,
    ) -> GmacResult<SharedPtr> {
        let initial = self.protocol.initial_state();
        let region = self.rt.vm.map_fixed(addr, size, initial.protection())?;
        let block_size = self.protocol.block_size_for(&self.rt.config, size);
        let obj = SharedObject::new(
            id, addr, size, self.dev, dev_addr, region, block_size, initial,
        );
        self.mgr.insert(obj);
        self.protocol.on_alloc(&mut self.rt, &mut self.mgr, addr)?;
        Ok(SharedPtr::new(addr))
    }

    /// `adsmFree` under this shard's lock. `id` gates the free on allocation
    /// identity (the RAII [`crate::Shared`] path). Returns the freed start
    /// address and device range **without** returning the latter to the
    /// device allocator: the caller must release the registry claim first
    /// and only then `dev_free` the returned range, so a concurrent alloc
    /// can never be handed a first-fit device address whose host claim is
    /// still registered (a spurious `AddressCollision`).
    ///
    /// Failure paths charge **nothing** (a failed free must not desync the
    /// time ledger), and objects referenced by a still-pending call are
    /// rejected with [`GmacError::ObjectInUse`].
    pub(crate) fn free_locked(
        &mut self,
        ptr: SharedPtr,
        id: Option<ObjectId>,
    ) -> GmacResult<(VAddr, DevAddr)> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        if let Some(expect) = id {
            if obj.id() != expect {
                return Err(GmacError::NotShared(ptr.addr()));
            }
        }
        let addr = obj.addr();
        if let Some(call) = &self.pending {
            if call.objects.contains(&addr) {
                return Err(GmacError::ObjectInUse {
                    addr,
                    dev: self.dev,
                    owner: call.session,
                });
            }
        }
        let free_base = self.rt.config.costs.free_base;
        self.rt.charge(Category::Free, free_base);
        let obj = self.mgr.remove(addr).expect("object found above");
        self.protocol.on_free(&mut self.rt, &obj)?;
        self.rt.vm.unmap_region(obj.region())?;
        Ok((addr, obj.dev_addr()))
    }

    // ----- kernel execution -------------------------------------------------

    /// Joins the pending call on this shard (session already checked).
    pub(crate) fn sync_one(&mut self) -> GmacResult<()> {
        let call = self.pending.take().ok_or(GmacError::NothingToSync)?;
        let sync_base = self.rt.config.costs.sync_base;
        self.rt.charge(Category::Sync, sync_base);
        self.rt.platform.sync_stream(self.dev, call.stream)?;
        self.protocol
            .acquire(&mut self.rt, &mut self.mgr, self.dev)?;
        Ok(())
    }

    /// Records a launched call (stacking same-session calls: the pending
    /// entry accumulates the union of referenced objects so `free` stays
    /// guarded for all of them).
    pub(crate) fn note_pending(
        &mut self,
        view: SessionView,
        stream: StreamId,
        objects: Vec<VAddr>,
    ) {
        let entry = self.pending.get_or_insert(PendingCall {
            session: view.id,
            stream,
            objects: Vec::new(),
        });
        for addr in objects {
            if !entry.objects.contains(&addr) {
                entry.objects.push(addr);
            }
        }
    }

    /// `adsmSafe(address)`.
    pub(crate) fn translate(&self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        Ok(obj.translate(ptr.addr()))
    }

    // ----- transparent CPU access -------------------------------------------

    pub(crate) fn load<T: Scalar>(&mut self, ptr: SharedPtr) -> GmacResult<T> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Read)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.load::<T>(ptr.addr())?)
    }

    pub(crate) fn store<T: Scalar>(&mut self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Write)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.store(ptr.addr(), value)?)
    }

    pub(crate) fn load_slice<T: Scalar>(&mut self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        let bytes = self.shared_read(ptr, n as u64 * T::SIZE as u64)?;
        Ok(softmmu::from_bytes(&bytes))
    }

    pub(crate) fn store_slice<T: Scalar>(
        &mut self,
        ptr: SharedPtr,
        values: &[T],
    ) -> GmacResult<()> {
        self.shared_write(ptr, &softmmu::to_bytes(values))
    }

    /// Single checked access with the fault-retry loop (the paper's signal
    /// handler protocol, §4.3).
    fn access_checked(&mut self, ptr: SharedPtr, len: u64, kind: AccessKind) -> GmacResult<()> {
        // One fault can occur per block the access spans; anything beyond
        // that means the protocol failed to make progress.
        let mut budget = 4 + len / softmmu::PAGE_SIZE;
        loop {
            match self.rt.vm.check(ptr.addr(), len, kind) {
                Ok(()) => return Ok(()),
                Err(MmuError::Fault(fault)) => {
                    if budget == 0 {
                        return Err(GmacError::UnresolvedFault(fault.to_string()));
                    }
                    budget -= 1;
                    self.handle_fault(fault.addr, kind)?;
                }
                Err(MmuError::Unmapped(a)) => return Err(GmacError::NotShared(a)),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The "signal handler": charge delivery + lookup, then let the protocol
    /// resolve the faulting block.
    fn handle_fault(&mut self, fault_addr: VAddr, kind: AccessKind) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(fault_addr)
            .ok_or(GmacError::NotShared(fault_addr))?;
        let start = obj.addr();
        let offset = fault_addr - start;
        let steps = self.mgr.lookup_steps();
        self.rt.charge_signal(steps, kind == AccessKind::Write);
        match kind {
            AccessKind::Read => {
                self.protocol
                    .prepare_read(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
            AccessKind::Write => {
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
        }
    }

    /// Shared read used by slice loads, bulk ops and I/O: pay one fault per
    /// touched block that is not readable, resolve the whole range through
    /// the protocol in a single batched call (runs of adjacent invalid
    /// blocks coalesce into single DMA jobs), then copy.
    pub(crate) fn shared_read(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        self.resolve_read_range(ptr, len)?;
        self.read_resolved(ptr, len)
    }

    /// Copies `[ptr, ptr+len)` out of system memory, assuming the caller
    /// already made the range readable via [`Self::resolve_read_range`]
    /// (the I/O interposition resolves a whole operation's extent once,
    /// then drains it chunk by chunk through this).
    pub(crate) fn read_resolved(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        let mut out = vec![0u8; len as usize];
        self.rt.vm.read_raw(start + base_offset, &mut out)?;
        // The application's own CPU time to traverse the range.
        self.rt.platform.cpu_touch(len);
        Ok(out)
    }

    /// Makes `[ptr, ptr+len)` CPU-readable: charges one fault-equivalent per
    /// invalid block the range touches (an element loop would fault on the
    /// first touch of each), then lets the protocol fetch them all in one
    /// planned, coalesced batch.
    pub(crate) fn resolve_read_range(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let invalid = obj
            .blocks_overlapping(base_offset, len)
            .filter(|&idx| obj.block(idx).state == BlockState::Invalid)
            .count();
        if invalid > 0 {
            let steps = self.mgr.lookup_steps();
            for _ in 0..invalid {
                self.rt.charge_signal(steps, false);
            }
            self.protocol
                .prepare_read(&mut self.rt, &mut self.mgr, start, base_offset, len)?;
        }
        Ok(())
    }

    /// Block-chunked shared write used by slice stores, bulk ops and I/O:
    /// per touched block, pay one fault if the block is not writable,
    /// prepare it, then immediately land the bytes (required ordering — see
    /// [`CoherenceProtocol::prepare_write`]).
    pub(crate) fn shared_write(&mut self, ptr: SharedPtr, bytes: &[u8]) -> GmacResult<()> {
        let len = bytes.len() as u64;
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let blocks = obj.blocks_overlapping(base_offset, len);
        for idx in blocks {
            let obj = self.mgr.find(start).expect("object lives across loop");
            let block = *obj.block(idx);
            let lo = block.offset.max(base_offset);
            let hi = (block.offset + block.len).min(base_offset + len);
            if block.state != BlockState::Dirty {
                let steps = self.mgr.lookup_steps();
                self.rt.charge_signal(steps, true);
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, lo, hi - lo)?;
            }
            let src = &bytes[(lo - base_offset) as usize..(hi - base_offset) as usize];
            self.rt.vm.write_raw(start + lo, src)?;
            // The application's own CPU time to produce/copy the chunk.
            self.rt.platform.cpu_touch(hi - lo);
        }
        Ok(())
    }

    // ----- introspection ----------------------------------------------------

    pub(crate) fn dirty_block_count(&self) -> usize {
        self.protocol.dirty_blocks(&self.mgr)
    }
}
