//! Per-device runtime shards.
//!
//! A [`DeviceShard`] owns **everything the runtime mutates on behalf of one
//! accelerator**: the manager slice holding that device's shared objects
//! (including per-block coherence state), the host-side MMU regions
//! mirroring those objects, the device's own coherence-protocol instance
//! (rolling-update's dirty FIFO, batch-update's write-set annotation), the
//! pending kernel call, the asynchronous-DMA queue and the event counters.
//!
//! The ADSM model makes this split sound: coherence work happens only at
//! acquire/release boundaries driven by the host thread attached to the
//! accelerator (paper §3.2/§3.3), and a kernel's parameters must all live on
//! its own device ([`crate::GmacError::MixedDevices`]), so between
//! boundaries the state of two shards is independent. Cross-device
//! operations (`memcpy` between objects homed on different accelerators,
//! `sync` across all devices) are explicit multi-shard transactions that
//! lock shards **one at a time, in device-id order** — see the lock-order
//! invariant below.
//!
//! # Lock-order invariant
//!
//! The sharded runtime has four lock families, acquired strictly in this
//! order:
//!
//! 1. the **registry** `RwLock` (address → home-device routing; read-mostly),
//! 2. at most **one shard** mutex at a time (never shard → shard),
//! 3. the **DMA engine** queue mutexes ([`crate::xfer::DmaEngine`]) — a
//!    shard may submit to or join the engine while locked; engine workers
//!    never take a shard lock (debug-asserted in the worker path via
//!    `shard_locks_held`),
//! 4. platform-internal leaf locks (device mutexes, clock, ledgers) below
//!    any shard or engine lock.
//!
//! In practice the registry guard is dropped *before* the shard mutex is
//! taken (routing returns plain values), so no gmac-level locks ever nest;
//! multi-shard transactions stage data through host buffers between shard
//! acquisitions instead of holding two shards at once. Every shard-mutex
//! acquisition goes through `lock_shard`, which maintains the per-thread
//! held count backing the worker-path assertion.

use crate::config::GmacConfig;
use crate::error::{GmacError, GmacResult};
use crate::evict::EvictState;
use crate::fastview::ObjFastView;
use crate::manager::Manager;
use crate::object::{ObjectId, SharedObject};
use crate::protocol::{make, CoherenceProtocol};
use crate::ptr::SharedPtr;
use crate::race::RaceDetector;
use crate::runtime::Runtime;
use crate::service::LoadBoard;
use crate::session::{SessionId, SessionView};
use crate::state::BlockState;
use crate::xfer::{DmaEngine, Purpose};
use hetsim::{Category, CopyMode, DevAddr, DeviceId, Direction, Platform, SimError, StreamId};
use softmmu::{AccessKind, MmuError, Scalar, VAddr};
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

thread_local! {
    /// How many [`DeviceShard`] mutexes the current thread holds. Backs the
    /// debug assertion that no shard lock is held while a DMA worker
    /// executes a job (tier 3 of the lock order never re-enters tier 2).
    static SHARD_LOCKS_HELD: Cell<u32> = const { Cell::new(0) };
}

/// Shard mutexes held by the current thread (see [`SHARD_LOCKS_HELD`]).
pub(crate) fn shard_locks_held() -> u32 {
    SHARD_LOCKS_HELD.with(Cell::get)
}

/// Guard for a [`DeviceShard`] mutex that keeps the per-thread held count
/// accurate. All shard acquisitions must go through [`lock_shard`] so the
/// count — and the lock-order assertion built on it — stays trustworthy.
#[derive(Debug)]
pub(crate) struct ShardGuard<'a>(MutexGuard<'a, DeviceShard>);

impl Deref for ShardGuard<'_> {
    type Target = DeviceShard;
    fn deref(&self) -> &DeviceShard {
        &self.0
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut DeviceShard {
        &mut self.0
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        SHARD_LOCKS_HELD.with(|c| c.set(c.get() - 1));
    }
}

/// Disk-tier spill file name for the evicted image of the object at `addr`
/// (the unified start address is unique for an object's lifetime).
pub(crate) fn spill_name(addr: VAddr) -> String {
    format!("gmac-spill-{:#x}", addr.0)
}

/// Acquires a shard mutex (poison-tolerant) and counts the hold.
pub(crate) fn lock_shard(slot: &Mutex<DeviceShard>) -> ShardGuard<'_> {
    let guard = slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    SHARD_LOCKS_HELD.with(|c| c.set(c.get() + 1));
    ShardGuard(guard)
}

/// An outstanding accelerator call awaiting a `sync`.
#[derive(Debug, Clone)]
pub(crate) struct PendingCall {
    /// Session that issued the call (only it may sync or stack more calls).
    pub(crate) session: SessionId,
    /// Stream the kernel was launched on.
    pub(crate) stream: StreamId,
    /// Start addresses of the shared objects the call references; `free` on
    /// any of them fails with [`GmacError::ObjectInUse`] until the sync.
    pub(crate) objects: Vec<VAddr>,
}

/// One-entry object memo: the last successfully routed `(range, slab slot)`
/// of this shard's manager. A hit turns the per-access B-tree search into a
/// range compare + O(1) slab access.
///
/// # Invalidation invariant
///
/// The memo MUST be cleared whenever the manager's population changes
/// (object installed or freed): slab slots are reused, so a stale memo
/// could otherwise route an old range to a stranger's object. Block-*state*
/// changes never move objects, so protocol transitions need no
/// invalidation. Gated by [`crate::GmacConfig::tlb`] like every access
/// fast-path cache.
#[derive(Debug, Clone, Copy)]
struct ObjMemo {
    start: VAddr,
    end: u64,
    slot: usize,
}

/// The independently-lockable runtime state of one accelerator.
///
/// One `DeviceShard` exists per platform device, each behind its own mutex
/// inside the shared [`crate::Gmac`] runtime. An operation acquires exactly
/// the shards it names (almost always one, found by routing the pointer
/// through the read-mostly registry), so sessions driving different
/// accelerators run concurrently in wall-clock terms — the property the
/// `contention` benchmark measures against the global-lock ablation mode
/// ([`crate::GmacConfig::sharding`]).
///
/// See the [module docs](self) for the lock-order invariant.
#[derive(Debug)]
pub struct DeviceShard {
    pub(crate) dev: DeviceId,
    /// Per-shard runtime: shared platform handle + this shard's MMU regions,
    /// DMA queue and counters.
    pub(crate) rt: Runtime,
    /// Registry slice: the shared objects homed on this device, including
    /// their per-block coherence state.
    pub(crate) mgr: Manager,
    /// This device's own protocol instance (per-device dirty FIFO, rolling
    /// size, release annotations).
    pub(crate) protocol: Box<dyn CoherenceProtocol>,
    /// The at-most-one un-synced kernel call on this accelerator.
    pub(crate) pending: Option<PendingCall>,
    /// Device-memory-as-a-cache bookkeeping: touch stamps, clock bits and
    /// the host-tier image ledger (see [`crate::evict`]).
    pub(crate) evict: EvictState,
    /// Shared load board: this shard reports its resident device bytes so
    /// the service placer can prefer devices with free capacity.
    loads: Arc<LoadBoard>,
    /// Shared coherence race detector ([`crate::GmacConfig::race_check`]);
    /// `None` when detection is off, so the disabled mode pays nothing on
    /// any access path. Lock order: the detector mutex is a leaf below this
    /// shard's lock.
    race: Option<Arc<RaceDetector>>,
    /// Access-fast-path memo (see [`ObjMemo`]).
    obj_memo: Option<ObjMemo>,
}

impl DeviceShard {
    pub(crate) fn new(
        dev: DeviceId,
        platform: Arc<Platform>,
        config: &GmacConfig,
        engine: Option<Arc<DmaEngine>>,
        loads: Arc<LoadBoard>,
        race: Option<Arc<RaceDetector>>,
    ) -> Self {
        DeviceShard {
            dev,
            rt: Runtime::from_shared(platform, config.clone(), engine),
            mgr: Manager::new(config.lookup),
            protocol: make(config.protocol),
            pending: None,
            evict: EvictState::new(config.evict_policy),
            loads,
            race,
            obj_memo: None,
        }
    }

    // ----- object routing (the shard-level fast path) -----------------------

    /// Resolves `addr` to `(object start, slab slot)`: memo hit when the
    /// fast path is enabled and `addr` falls in the last routed range,
    /// otherwise one counted manager search (`Counters::obj_lookups`).
    ///
    /// The wall-clock saving never touches virtual time: the simulated
    /// fault-handler lookup cost is charged per fault via
    /// [`Manager::lookup_steps`] regardless of how the host found the
    /// object.
    pub(crate) fn locate(&mut self, addr: VAddr) -> GmacResult<(VAddr, usize)> {
        if self.rt.config.tlb {
            if let Some(memo) = self.obj_memo {
                if addr >= memo.start && addr.0 < memo.end {
                    self.rt.counters.obj_memo_hits += 1;
                    self.evict.touch(memo.slot);
                    return Ok((memo.start, memo.slot));
                }
            }
        }
        self.rt.counters.obj_lookups += 1;
        let slot = self.mgr.locate(addr).ok_or(GmacError::NotShared(addr))?;
        let obj = self.mgr.by_slot(slot).expect("located slot is live");
        let (start, end) = (obj.addr(), obj.end().0);
        if self.rt.config.tlb {
            self.obj_memo = Some(ObjMemo { start, end, slot });
        }
        self.evict.touch(slot);
        Ok((start, slot))
    }

    /// Invalidation half of the memo invariant: called on every insert or
    /// remove in this shard's manager.
    fn invalidate_memo(&mut self) {
        self.obj_memo = None;
    }

    // ----- allocation -------------------------------------------------------

    /// Maps and registers a freshly device-allocated object (the tail of
    /// `adsmAlloc`/`adsmSafeAlloc`; the registry claim already succeeded).
    /// With `want_fast`, also builds and returns the object's
    /// zero-instrumentation fast view when it qualifies for one (see
    /// [`Self::make_fast_view`]), for embedding in the typed handle. Raw
    /// `SharedPtr` allocations pass `false`: no raw pointer ever escapes
    /// for them, so building a view would pointlessly arm the range and
    /// put real `mprotect` on every block transition.
    pub(crate) fn install_object(
        &mut self,
        id: ObjectId,
        dev_addr: DevAddr,
        addr: VAddr,
        size: u64,
        want_fast: bool,
    ) -> GmacResult<(SharedPtr, Option<Arc<ObjFastView>>)> {
        let initial = self.protocol.initial_state();
        let region = self.rt.vm.map_fixed(addr, size, initial.protection())?;
        let block_size = self.protocol.block_size_for(&self.rt.config, size);
        let mut obj = SharedObject::new(
            id, addr, size, self.dev, dev_addr, region, block_size, initial,
        );
        let fast = if want_fast {
            self.make_fast_view(addr, size, block_size)
        } else {
            None
        };
        if let Some(fast) = &fast {
            obj.attach_fast(Arc::clone(fast));
        }
        let slot = self.mgr.insert(obj);
        // Slab slots are reused: clear any stale stamp, then count the
        // allocation itself as the first touch (a fresh object is warm).
        self.evict.forget(slot);
        self.evict.touch(slot);
        self.loads.add_resident(self.dev, size);
        self.invalidate_memo();
        self.protocol.on_alloc(&mut self.rt, &mut self.mgr, addr)?;
        Ok((SharedPtr::new(addr), fast))
    }

    /// Builds the lock-free fast view for a just-mapped object, when every
    /// precondition holds:
    ///
    /// * the access fast paths are enabled (`tlb`; turning them off is the
    ///   instrumented-baseline ablation) and the runtime is sharded (the
    ///   global-lock ablation serialises *all* accesses by design, which a
    ///   lock-free path would bypass);
    /// * the softmmu hands out a stable host pointer for the whole object
    ///   ([`softmmu::AddressSpace::fast_base`]: mmap backend + contiguous);
    /// * the block size is a power of two and a multiple of every scalar
    ///   size, so an element access never straddles a block boundary and the
    ///   per-access probe is one shift + one atomic load.
    fn make_fast_view(
        &mut self,
        addr: VAddr,
        size: u64,
        block_size: u64,
    ) -> Option<Arc<ObjFastView>> {
        if !(self.rt.config.tlb && self.rt.config.sharding) {
            return None;
        }
        if !block_size.is_power_of_two() || !block_size.is_multiple_of(8) {
            return None;
        }
        let base = self.rt.vm.fast_base(addr, size)?;
        let states = vec![self.protocol.initial_state(); size.div_ceil(block_size) as usize];
        Some(ObjFastView::new(
            base,
            size,
            block_size.trailing_zeros(),
            &states,
            Arc::clone(&self.rt.platform),
        ))
    }

    /// `adsmFree` under this shard's lock. `id` gates the free on allocation
    /// identity (the RAII [`crate::Shared`] path). Returns the freed start
    /// address and, for resident objects, the device range **without**
    /// returning the latter to the device allocator: the caller must release
    /// the registry claim first and only then `dev_free` the returned range,
    /// so a concurrent alloc can never be handed a first-fit device address
    /// whose host claim is still registered (a spurious `AddressCollision`).
    /// Evicted objects own no device range (`None`); their host image — and
    /// any disk-tier spill file — is retired here.
    ///
    /// Failure paths charge **nothing** (a failed free must not desync the
    /// time ledger), and objects referenced by a still-pending call are
    /// rejected with [`GmacError::ObjectInUse`].
    pub(crate) fn free_locked(
        &mut self,
        ptr: SharedPtr,
        id: Option<ObjectId>,
    ) -> GmacResult<(VAddr, Option<DevAddr>)> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        if let Some(expect) = id {
            if obj.id() != expect {
                return Err(GmacError::NotShared(ptr.addr()));
            }
        }
        let addr = obj.addr();
        if let Some(call) = &self.pending {
            if call.objects.contains(&addr) {
                return Err(GmacError::ObjectInUse {
                    addr,
                    dev: self.dev,
                    owner: call.session,
                });
            }
        }
        // Wall-clock pin: queued engine jobs may still target this object's
        // device range. Let them land before the range can be unmapped and
        // handed back to the allocator — a realloc must never race a stale
        // byte landing. (The staging buffers are engine-owned, so there is
        // no use-after-free either way; this gates the device range.)
        self.rt.join_object(self.dev, addr)?;
        let free_base = self.rt.config.costs.free_base;
        self.rt.charge(Category::Free, free_base);
        let slot = self.mgr.locate(addr).expect("object found above");
        let obj = self.mgr.remove(addr).expect("object found above");
        if obj.is_resident() {
            self.loads.sub_resident(self.dev, obj.size());
        } else if self.evict.release_image(slot) {
            // Freeing an evicted-and-spilled object retires its spill file;
            // the write-behind copy is simply dropped, never read back.
            self.rt.platform.fs_mut().remove(&spill_name(addr));
        }
        self.evict.forget(slot);
        if let Some(fast) = obj.fast_view() {
            // Stale typed handles must miss from here on; the checked path
            // then reports `NotShared` exactly as it always did.
            fast.retire();
        }
        self.invalidate_memo();
        if let Some(race) = &self.race {
            // First-fit reuses addresses: stale stamps on a freed range
            // would flag an unrelated future object.
            race.note_free(addr);
        }
        self.protocol.on_free(&mut self.rt, &obj)?;
        self.rt.vm.unmap_region(obj.region())?;
        Ok((addr, obj.is_resident().then(|| obj.dev_addr())))
    }

    // ----- device memory as a cache (eviction, §tentpole) -------------------

    /// Allocates `size` device bytes on this shard's accelerator, treating
    /// device memory as a cache over host memory: when the first-fit
    /// allocator cannot satisfy the request, cold resident objects are
    /// evicted back to host (their device ranges released) until a
    /// large-enough contiguous free block exists, then the allocation is
    /// retried. Objects named in `pinned` or referenced by the pending call
    /// are never victims; objects with in-flight DMA are victims of last
    /// resort — they are only evicted when the quiescent candidates did not
    /// free enough space, and their transfers are joined first so no object
    /// is ever evicted while a transfer is in flight.
    ///
    /// With [`GmacConfig::evict`] off, or when every resident object is
    /// pinned and the request still does not fit, fails with
    /// [`GmacError::DeviceOom`].
    pub(crate) fn alloc_device_range(
        &mut self,
        size: u64,
        pinned: &[VAddr],
    ) -> GmacResult<DevAddr> {
        match self.rt.platform.dev_alloc(self.dev, size) {
            Ok(dev_addr) => return Ok(dev_addr),
            Err(SimError::OutOfDeviceMemory { requested, free }) => {
                if !self.rt.config.evict {
                    return Err(GmacError::DeviceOom {
                        requested,
                        free,
                        device: self.dev,
                    });
                }
                self.evict_until_fits(requested, pinned)?;
            }
            Err(e) => return Err(e.into()),
        }
        // `evict_until_fits` only returns Ok once the allocator holds a
        // contiguous free region of at least the rounded request, so the
        // first-fit retry cannot fail.
        Ok(self.rt.platform.dev_alloc(self.dev, size)?)
    }

    /// Evicts unpinned resident objects, coldest first per the configured
    /// policy, until the device allocator's largest contiguous free block
    /// can hold `requested` (already rounded) bytes.
    fn evict_until_fits(&mut self, requested: u64, pinned: &[VAddr]) -> GmacResult<()> {
        let mut candidates = Vec::new();
        let mut deferred = Vec::new();
        for addr in self.mgr.addrs() {
            let slot = self.mgr.locate(addr).expect("registered object");
            let obj = self.mgr.by_slot(slot).expect("registered object");
            if !obj.is_resident() {
                continue;
            }
            let call_pinned = self
                .pending
                .as_ref()
                .is_some_and(|call| call.objects.contains(&addr));
            if pinned.contains(&addr) || call_pinned {
                self.rt.counters.pin_saves += 1;
                continue;
            }
            if self.rt.object_dma_busy(self.dev, addr) {
                // Victim of last resort: preferred over failing the alloc,
                // but only after quiescent candidates (evict_object joins
                // the object's transfers before touching its range).
                deferred.push(slot);
                continue;
            }
            candidates.push(slot);
        }
        for slot in self.evict.order(&candidates) {
            if self.largest_free_dev_block() >= requested {
                break;
            }
            self.evict_object(slot)?;
        }
        for slot in self.evict.order(&deferred) {
            if self.largest_free_dev_block() >= requested {
                self.rt.counters.pin_saves += 1;
                continue;
            }
            self.evict_object(slot)?;
        }
        if self.largest_free_dev_block() >= requested {
            Ok(())
        } else {
            Err(GmacError::DeviceOom {
                requested,
                free: self
                    .rt
                    .platform
                    .device(self.dev)
                    .map(|d| d.mem().free_bytes())
                    .unwrap_or(0),
                device: self.dev,
            })
        }
    }

    /// True when an **evicted** object of this shard still claims host
    /// addresses overlapping `[addr, addr + size)`. The unified-allocation
    /// path uses this to tell a recycled device window (the evicted owner
    /// keeps its host range; fall back to a non-unified claim) from a
    /// genuine cross-device collision (surface `AddressCollision`).
    pub(crate) fn evicted_overlaps(&self, addr: VAddr, size: u64) -> bool {
        self.mgr
            .iter()
            .any(|obj| !obj.is_resident() && obj.addr().0 < addr.0 + size && obj.end() > addr)
    }

    /// Largest contiguous free block of this device's first-fit allocator
    /// (the device mutex is a leaf lock — legal under the shard lock).
    fn largest_free_dev_block(&self) -> u64 {
        self.rt
            .platform
            .device(self.dev)
            .map(|d| d.mem().largest_free_block())
            .unwrap_or(0)
    }

    /// Evicts the resident object in `slot` back to host memory and returns
    /// its device range to the allocator.
    ///
    /// Device-authoritative bytes (Invalid runs) are fetched home through
    /// the ordinary D2H plan machinery; afterwards the host mirror is the
    /// only copy, so every block goes Dirty with pages read-write — which
    /// is exactly what makes the later re-fetch free of data movement (the
    /// next release flushes the whole object H2D through the normal path).
    fn evict_object(&mut self, slot: usize) -> GmacResult<()> {
        let obj = self
            .mgr
            .by_slot(slot)
            .expect("eviction candidate is live")
            .clone();
        let addr = obj.addr();
        // Queued engine landings must commit before the range is read back
        // and handed to the allocator — no object is ever evicted while a
        // transfer on it is in flight.
        self.rt.join_object(self.dev, addr)?;
        let mut plan = self
            .rt
            .plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Eviction);
        for run in obj.runs_in(0, obj.size()) {
            if run.state == BlockState::Invalid {
                plan.request(&obj, run.start, run.len());
            }
        }
        self.rt.execute(&plan)?;
        // Protocol bookkeeping tied to the device copy (rolling-update's
        // dirty FIFO) drops the object before its blocks are re-stated.
        self.protocol.on_evict(&mut self.rt, &mut self.mgr, addr)?;
        self.rt.protect_object(&obj, BlockState::Dirty)?;
        {
            let live = self
                .mgr
                .by_slot_mut(slot)
                .expect("eviction candidate is live");
            for idx in 0..live.block_count() {
                live.set_state(idx, BlockState::Dirty);
            }
            if self.race.is_some() {
                // The set_state loop re-published Dirty into the fast-view
                // mirror, which would re-arm warm writes a race_downgrade
                // had suspended — and eviction/re-fetch is runtime traffic,
                // not an access, so it must not change what the detector
                // observes. Re-suspend.
                if let Some(fast) = live.fast_view() {
                    fast.downgrade_dirty();
                }
            }
            live.mark_evicted();
        }
        self.rt.platform.dev_free(self.dev, obj.dev_addr())?;
        self.rt.counters.evictions += 1;
        self.rt.counters.evicted_bytes += obj.size();
        self.evict.note_evicted(slot, obj.size());
        self.loads.sub_resident(self.dev, obj.size());
        self.spill_overflow()
    }

    /// Write-behind spill: brings the host-tier image ledger back under the
    /// configured budget ([`GmacConfig::host_capacity`]) by copying the
    /// coldest evicted images to the disk tier (priced `IoWrite`). The host
    /// bytes stay live and authoritative — the softmmu cannot drop pages —
    /// so the spill file is a priced shadow copy that is never read back
    /// into host memory (CPU writes to a spilled object cannot be clobbered
    /// by stale file content).
    fn spill_overflow(&mut self) -> GmacResult<()> {
        let Some(budget) = self.rt.config.host_capacity else {
            return Ok(());
        };
        for (slot, bytes) in self.evict.overflow(budget) {
            let obj = self.mgr.by_slot(slot).expect("spilled slot is live");
            let (addr, size) = (obj.addr(), obj.size());
            debug_assert_eq!(size, bytes, "spill ledger disagrees with object");
            let image = self.rt.vm.gather(addr, size)?;
            self.rt.platform.file_write(&spill_name(addr), 0, &image)?;
            self.rt.counters.disk_spills += 1;
        }
        Ok(())
    }

    /// Re-homes the object containing `addr` in a fresh device window if it
    /// was evicted; a no-op for resident objects. `pinned` objects survive
    /// any eviction this re-fetch itself triggers. The re-fetch moves **no
    /// data**: eviction left every block Dirty (host authoritative), so the
    /// next release flushes the whole object H2D through the normal path.
    pub(crate) fn ensure_resident(&mut self, addr: VAddr, pinned: &[VAddr]) -> GmacResult<()> {
        let (start, slot) = self.locate(addr)?;
        let size = {
            let obj = self.mgr.by_slot(slot).expect("located slot is live");
            if obj.is_resident() {
                return Ok(());
            }
            obj.size()
        };
        let dev_addr = self.alloc_device_range(size, pinned)?;
        self.mgr
            .by_slot_mut(slot)
            .expect("located slot is live")
            .mark_resident(dev_addr);
        self.protocol
            .on_resident(&mut self.rt, &mut self.mgr, start)?;
        self.rt.counters.refetches += 1;
        self.rt.counters.refetch_bytes += size;
        if self.evict.release_image(slot) {
            // The spilled shadow copy pays its disk read-back and retires;
            // the host image stayed live and authoritative throughout, so
            // the bytes themselves are discarded.
            let mut scratch = vec![0u8; size as usize];
            self.rt
                .platform
                .file_read(&spill_name(start), 0, &mut scratch)?;
            self.rt.platform.fs_mut().remove(&spill_name(start));
        }
        self.loads.add_resident(self.dev, size);
        if self.race.is_some() {
            // Re-fetch is runtime traffic, not an access: any block states
            // the protocol re-published into the fast-view mirror must not
            // re-arm warm writes the detector still wants to see.
            self.race_downgrade(&[start]);
        }
        Ok(())
    }

    // ----- race detection hooks ---------------------------------------------

    /// Hook: a program CPU write of `[addr, addr + len)` landed through this
    /// shard (scalar store, slice/bulk write, I/O interposition). No-op
    /// unless [`crate::GmacConfig::race_check`] is on. Stamps the covered
    /// blocks with the writing session's epoch, checks against the in-flight
    /// call, and re-publishes Dirty into the fast-view mirror for the
    /// checked blocks — restoring the zero-instrumentation warm path that
    /// [`Self::race_downgrade`] suspended at the last epoch boundary.
    ///
    /// In error mode the violation is returned *after* the bytes landed and
    /// the touch time was charged: detection is diagnostic, not
    /// transactional — virtual time stays byte-identical to a run without
    /// the error.
    pub(crate) fn race_note_write(&mut self, addr: VAddr, len: u64) -> GmacResult<()> {
        let Some(race) = self.race.clone() else {
            return Ok(());
        };
        if len == 0 {
            return Ok(());
        }
        let slot = self.race_locate(addr)?;
        let obj = self.mgr.by_slot(slot).expect("located slot is live");
        let start = obj.addr();
        let offset = addr - start;
        let violation = race.note_cpu_write(self.dev, start, obj.block_size(), offset, len);
        if let Some(fast) = obj.fast_view() {
            for idx in obj.blocks_overlapping(offset, len) {
                if obj.state(idx) == BlockState::Dirty {
                    fast.publish(idx, BlockState::Dirty);
                }
            }
        }
        match violation {
            Some(v) => Err(v.into_error()),
            None => Ok(()),
        }
    }

    /// Hook: `launcher` is about to launch a call referencing `objects` on
    /// this device. Runs **before** the launch charge and the protocol
    /// release, so an error-mode detection charges nothing and flushes
    /// nothing (mirroring the failed-call-charges-nothing invariant).
    pub(crate) fn race_check_launch(
        &mut self,
        launcher: SessionId,
        objects: &[VAddr],
    ) -> GmacResult<()> {
        let Some(race) = self.race.clone() else {
            return Ok(());
        };
        let mut described = Vec::with_capacity(objects.len());
        for &addr in objects {
            let slot = self.race_locate(addr)?;
            let obj = self.mgr.by_slot(slot).expect("located slot is live");
            described.push((obj.addr(), obj.block_size()));
        }
        match race.check_launch(launcher, self.dev, &described) {
            Some(v) => Err(v.into_error()),
            None => Ok(()),
        }
    }

    /// Hook: the launch succeeded (after [`Self::note_pending`]). Advances
    /// the epochs and suspends the referenced objects' fast-path warm
    /// writes so the first post-launch write per block goes through the
    /// detector.
    pub(crate) fn race_note_launched(&mut self, launcher: SessionId, objects: &[VAddr]) {
        let Some(race) = self.race.clone() else {
            return;
        };
        race.note_launched(launcher, self.dev, objects);
        self.race_downgrade(objects);
    }

    /// Downgrades the fast-view mirrors of `objects` (mirror only — softmmu
    /// protection is untouched, so the forced slow-path re-entry succeeds
    /// without a fault and charges exactly the same touch time the fast
    /// path would have deferred). The first write per block per epoch then
    /// misses into [`Self::race_note_write`], which re-arms the warm path.
    fn race_downgrade(&mut self, objects: &[VAddr]) {
        for &addr in objects {
            if let Ok(slot) = self.race_locate(addr) {
                if let Some(fast) = self.mgr.by_slot(slot).and_then(|obj| obj.fast_view()) {
                    fast.downgrade_dirty();
                }
            }
        }
    }

    /// Counter-free object resolution for the detector hooks: bypasses the
    /// object memo, the lookup counters and the eviction touch stamps, so a
    /// race-checked run keeps its counters and its victim order
    /// byte-identical to the same run with detection off.
    fn race_locate(&mut self, addr: VAddr) -> GmacResult<usize> {
        self.mgr.locate(addr).ok_or(GmacError::NotShared(addr))
    }

    // ----- kernel execution -------------------------------------------------

    /// Joins the pending call on this shard (session already checked).
    pub(crate) fn sync_one(&mut self) -> GmacResult<()> {
        let call = self.pending.take().ok_or(GmacError::NothingToSync)?;
        let sync_base = self.rt.config.costs.sync_base;
        self.rt.charge(Category::Sync, sync_base);
        self.rt.platform.sync_stream(self.dev, call.stream)?;
        self.protocol
            .acquire(&mut self.rt, &mut self.mgr, self.dev)?;
        if let Some(race) = self.race.clone() {
            // Sync is an acquire/release boundary: clear the in-flight call,
            // advance the session's epoch, and force first-touch-per-block
            // of the synced objects back through the detector.
            race.note_sync(call.session, self.dev);
            self.race_downgrade(&call.objects);
        }
        Ok(())
    }

    /// Records a launched call (stacking same-session calls: the pending
    /// entry accumulates the union of referenced objects so `free` stays
    /// guarded for all of them).
    pub(crate) fn note_pending(
        &mut self,
        view: SessionView,
        stream: StreamId,
        objects: Vec<VAddr>,
    ) {
        let entry = self.pending.get_or_insert(PendingCall {
            session: view.id,
            stream,
            objects: Vec::new(),
        });
        for addr in objects {
            if !entry.objects.contains(&addr) {
                entry.objects.push(addr);
            }
        }
    }

    /// `adsmSafe(address)`. A device address only exists for resident
    /// objects, so an evicted target is re-homed first.
    pub(crate) fn translate(&mut self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        self.ensure_resident(ptr.addr(), &[])?;
        let (_, slot) = self.locate(ptr.addr())?;
        let obj = self.mgr.by_slot(slot).expect("located slot is live");
        Ok(obj.translate(ptr.addr()))
    }

    // ----- transparent CPU access -------------------------------------------

    /// Scalar load with the fault-retry loop (the paper's signal-handler
    /// protocol, §4.3): the access itself *is* the protection check — on a
    /// TLB hit it is a single probe + frame copy; a fault is resolved by
    /// the protocol and the access retried, exactly like re-executing the
    /// faulting instruction.
    pub(crate) fn load<T: Scalar>(&mut self, ptr: SharedPtr) -> GmacResult<T> {
        let mut budget = Self::fault_budget(T::SIZE as u64);
        loop {
            match self.rt.vm.load::<T>(ptr.addr()) {
                Ok(value) => {
                    self.rt.platform.cpu_touch(T::SIZE as u64);
                    return Ok(value);
                }
                Err(e) => self.retry_fault(e, AccessKind::Read, &mut budget)?,
            }
        }
    }

    /// Scalar store, mirroring [`Self::load`].
    pub(crate) fn store<T: Scalar>(&mut self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        let mut budget = Self::fault_budget(T::SIZE as u64);
        loop {
            match self.rt.vm.store(ptr.addr(), value) {
                Ok(()) => {
                    self.rt.platform.cpu_touch(T::SIZE as u64);
                    self.race_note_write(ptr.addr(), T::SIZE as u64)?;
                    return Ok(());
                }
                Err(e) => self.retry_fault(e, AccessKind::Write, &mut budget)?,
            }
        }
    }

    /// One fault can occur per block an access spans; anything beyond that
    /// means the protocol failed to make progress.
    fn fault_budget(len: u64) -> u64 {
        4 + len / softmmu::PAGE_SIZE
    }

    /// Shared fault-resolution step of the scalar retry loops: resolve a
    /// protection fault through the protocol (spending `budget`), translate
    /// MMU errors, propagate everything else.
    fn retry_fault(&mut self, err: MmuError, kind: AccessKind, budget: &mut u64) -> GmacResult<()> {
        match err {
            MmuError::Fault(fault) => {
                if *budget == 0 {
                    return Err(GmacError::UnresolvedFault(fault.to_string()));
                }
                *budget -= 1;
                self.handle_fault(fault.addr, kind)
            }
            MmuError::Unmapped(a) => Err(GmacError::NotShared(a)),
            e => Err(e.into()),
        }
    }

    pub(crate) fn load_slice<T: Scalar>(&mut self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        let bytes = self.shared_read(ptr, n as u64 * T::SIZE as u64)?;
        Ok(softmmu::from_bytes(&bytes))
    }

    pub(crate) fn store_slice<T: Scalar>(
        &mut self,
        ptr: SharedPtr,
        values: &[T],
    ) -> GmacResult<()> {
        self.shared_write(ptr, &softmmu::to_bytes(values))
    }

    /// The "signal handler": charge delivery + lookup, then let the protocol
    /// resolve the faulting block. The charge models the paper's
    /// balanced-tree walk and is identical whether the host-side resolution
    /// came from the memo or a real search.
    fn handle_fault(&mut self, fault_addr: VAddr, kind: AccessKind) -> GmacResult<()> {
        let (start, _) = self.locate(fault_addr)?;
        let offset = fault_addr - start;
        let steps = self.mgr.lookup_steps();
        self.rt.charge_signal(steps, kind == AccessKind::Write);
        match kind {
            AccessKind::Read => {
                self.protocol
                    .prepare_read(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
            AccessKind::Write => {
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
        }
    }

    /// Shared read used by slice loads, bulk ops and I/O: pay one fault per
    /// touched block that is not readable, resolve the whole range through
    /// the protocol in a single batched call (runs of adjacent invalid
    /// blocks coalesce into single DMA jobs), then copy.
    pub(crate) fn shared_read(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        self.resolve_read_range(ptr, len)?;
        self.read_resolved(ptr, len)
    }

    /// Copies `[ptr, ptr+len)` out of system memory, assuming the caller
    /// already made the range readable via [`Self::resolve_read_range`]
    /// (the I/O interposition resolves a whole operation's extent once,
    /// then drains it chunk by chunk through this). The copy lands in the
    /// vector's spare capacity — no zero-fill pass, so a multi-MB read
    /// touches each destination byte once, not twice.
    pub(crate) fn read_resolved(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        let (start, _) = self.locate(ptr.addr())?;
        let base_offset = ptr.addr() - start;
        let mut out = Vec::with_capacity(len as usize);
        self.rt
            .vm
            .read_raw_into(start + base_offset, len, &mut out)?;
        // The application's own CPU time to traverse the range.
        self.rt.platform.cpu_touch(len);
        Ok(out)
    }

    /// Makes `[ptr, ptr+len)` CPU-readable: charges one fault-equivalent per
    /// invalid block the range touches (an element loop would fault on the
    /// first touch of each), then lets the protocol fetch them all in one
    /// planned, coalesced batch. Counts invalid blocks by iterating state
    /// runs, not per-block indices.
    pub(crate) fn resolve_read_range(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<()> {
        let (start, slot) = self.locate(ptr.addr())?;
        let base_offset = ptr.addr() - start;
        let invalid = {
            let obj = self.mgr.by_slot(slot).expect("located slot is live");
            Runtime::check_bounds(obj, base_offset, len)?;
            obj.runs_in(base_offset, len)
                .filter(|run| run.state == BlockState::Invalid)
                .map(|run| run.blocks.len() as u64)
                .sum::<u64>()
        };
        if invalid > 0 {
            let steps = self.mgr.lookup_steps();
            for _ in 0..invalid {
                self.rt.charge_signal(steps, false);
            }
            self.protocol
                .prepare_read(&mut self.rt, &mut self.mgr, start, base_offset, len)?;
        }
        Ok(())
    }

    /// Run-chunked shared write used by slice stores, bulk ops and I/O.
    ///
    /// The object is resolved **once** (the historical per-block
    /// `mgr.find` re-lookup is gone — `Counters::obj_lookups` proves it);
    /// the loop then walks equal-state runs of a snapshot of the compact
    /// state vector:
    ///
    /// * **dirty runs** land their bytes in one raw write — no protocol
    ///   interaction at all;
    /// * **non-dirty runs** keep the strict per-block `fault → prepare →
    ///   write` ordering, because rolling-update's `prepare_write` may evict
    ///   older dirty blocks *within the same call* — bytes must be landed
    ///   before the next block is prepared (see
    ///   [`CoherenceProtocol::prepare_write`]).
    ///
    /// The snapshot is refreshed whenever the protocol flushed anything
    /// (`blocks_flushed` moved): an eviction downgrades some Dirty block —
    /// possibly one still ahead of the cursor — to ReadOnly, and writing it
    /// without re-dirtying would strand the bytes on the host.
    pub(crate) fn shared_write(&mut self, ptr: SharedPtr, bytes: &[u8]) -> GmacResult<()> {
        let len = bytes.len() as u64;
        let (start, slot) = self.locate(ptr.addr())?;
        let base_offset = ptr.addr() - start;
        let (block_size, size, touched) = {
            let obj = self.mgr.by_slot(slot).expect("located slot is live");
            Runtime::check_bounds(obj, base_offset, len)?;
            (
                obj.block_size(),
                obj.size(),
                obj.blocks_overlapping(base_offset, len),
            )
        };
        if touched.is_empty() {
            return Ok(());
        }
        let steps = self.mgr.lookup_steps();
        let clamp = |blocks: std::ops::Range<usize>| {
            let lo = (blocks.start as u64 * block_size).max(base_offset);
            let hi = (blocks.end as u64 * block_size)
                .min(size)
                .min(base_offset + len);
            (lo, hi)
        };
        // One snapshot of the touched window; refreshes re-read only the
        // blocks still ahead of the cursor (evictions can't matter behind
        // it), so an eviction-heavy write stays O(blocks), not O(blocks²).
        let mut states = self
            .mgr
            .by_slot(slot)
            .expect("located slot is live")
            .states()[touched.clone()]
        .to_vec();
        let mut flush_mark = self.rt.counters.blocks_flushed;
        let mut idx = touched.start;
        while idx < touched.end {
            if self.rt.counters.blocks_flushed != flush_mark {
                let live = self
                    .mgr
                    .by_slot(slot)
                    .expect("located slot is live")
                    .states();
                let ahead = idx - touched.start;
                states[ahead..].copy_from_slice(&live[idx..touched.end]);
                flush_mark = self.rt.counters.blocks_flushed;
            }
            let dirty = states[idx - touched.start] == BlockState::Dirty;
            let mut end = idx + 1;
            while end < touched.end && (states[end - touched.start] == BlockState::Dirty) == dirty {
                end += 1;
            }
            if dirty {
                let (lo, hi) = clamp(idx..end);
                let src = &bytes[(lo - base_offset) as usize..(hi - base_offset) as usize];
                self.rt.vm.write_raw(start + lo, src)?;
                // The application's own CPU time to produce/copy the chunk.
                self.rt.platform.cpu_touch(hi - lo);
            } else {
                for block in idx..end {
                    let (lo, hi) = clamp(block..block + 1);
                    self.rt.charge_signal(steps, true);
                    self.protocol
                        .prepare_write(&mut self.rt, &mut self.mgr, start, lo, hi - lo)?;
                    let src = &bytes[(lo - base_offset) as usize..(hi - base_offset) as usize];
                    self.rt.vm.write_raw(start + lo, src)?;
                    self.rt.platform.cpu_touch(hi - lo);
                }
            }
            idx = end;
        }
        self.race_note_write(ptr.addr(), len)
    }

    // ----- introspection ----------------------------------------------------

    pub(crate) fn dirty_block_count(&self) -> usize {
        self.protocol.dirty_blocks(&self.mgr)
    }
}
