//! Kernel/allocation scheduling across accelerators.
//!
//! The paper's kernel scheduler "selects the most appropriate accelerator for
//! execution of a given kernel" (§4.1) and defers detailed policies to
//! Jimenez et al. \[29\]. This module provides the three policies the
//! experiments need: pinning everything to one device (the single-GPU
//! platform of §5), round-robin placement for multi-accelerator tests, and
//! load-aware placement fed by the service layer's
//! [`LoadBoard`](crate::service::LoadBoard).

use hetsim::DeviceId;

/// Placement policy for new shared objects (kernels follow their data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// All allocations on one device.
    Fixed(DeviceId),
    /// Rotate allocations across all devices.
    RoundRobin,
    /// Route each allocation to the least-loaded device per the live
    /// `(queued jobs, in-flight bytes)` pairs on the service layer's
    /// [`LoadBoard`](crate::service::LoadBoard); degrades to round-robin
    /// when every device is idle (or no load data is supplied), so an
    /// unloaded system keeps rotating instead of piling onto device 0.
    LeastLoaded,
}

/// The allocation/kernel scheduler.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedPolicy,
    device_count: usize,
    next: usize,
}

impl Scheduler {
    /// Creates a scheduler for a platform with `device_count` accelerators.
    pub fn new(policy: SchedPolicy, device_count: usize) -> Self {
        assert!(device_count > 0, "scheduler needs at least one device");
        Scheduler {
            policy,
            device_count,
            next: 0,
        }
    }

    /// Active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of accelerators the scheduler places across (surfaced as
    /// [`crate::Gmac::device_count`]). Session affinities bypass the
    /// policy; a bogus affinity device surfaces as `NoSuchDevice` at the
    /// first allocation or call, charged nothing.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Replaces the policy.
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    /// Round-robin rotation that **skips** devices the filter excludes,
    /// advancing `next` past them — the counter can never hand out an
    /// excluded device, and it does not stall on one either (the pre-filter
    /// counter naively returned `next % device_count` even when a session's
    /// affinity excluded that device). If the filter rejects every device,
    /// the unfiltered rotation choice is returned as a fallback.
    fn rotate(&mut self, allowed: impl Fn(DeviceId) -> bool) -> DeviceId {
        for _ in 0..self.device_count {
            let dev = DeviceId(self.next % self.device_count);
            self.next += 1;
            if allowed(dev) {
                return dev;
            }
        }
        let dev = DeviceId(self.next % self.device_count);
        self.next += 1;
        dev
    }

    /// Chooses the device for a new allocation (no load information:
    /// [`SchedPolicy::LeastLoaded`] degrades to round-robin).
    pub fn device_for_alloc(&mut self) -> DeviceId {
        self.device_for_alloc_loaded(&[])
    }

    /// Chooses the device for a new allocation given the live per-device
    /// `(queued jobs, in-flight bytes)` pairs (the service layer's
    /// [`LoadBoard`](crate::service::LoadBoard) snapshot, in id order).
    /// Only [`SchedPolicy::LeastLoaded`] consults the loads; a stale or
    /// missing snapshot (length mismatch, all idle) falls back to the
    /// round-robin rotation so placement keeps making progress.
    pub fn device_for_alloc_loaded(&mut self, loads: &[(u64, u64)]) -> DeviceId {
        match self.policy {
            SchedPolicy::Fixed(dev) => dev,
            SchedPolicy::RoundRobin => self.rotate(|_| true),
            SchedPolicy::LeastLoaded => {
                if loads.len() == self.device_count && loads.iter().any(|&(q, b)| q > 0 || b > 0) {
                    let (idx, _) = loads
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &(q, b))| (q, b, i))
                        .expect("at least one device");
                    DeviceId(idx)
                } else {
                    self.rotate(|_| true)
                }
            }
        }
    }

    /// Chooses the device for a new allocation among the devices `allowed`
    /// admits (a session affinity restricted to a subset of accelerators).
    /// Rotating policies advance their counter *past* excluded devices;
    /// [`SchedPolicy::Fixed`] falls back to the first
    /// allowed device when its pin is excluded (or keeps the pin when
    /// nothing is allowed, surfacing the affinity conflict downstream).
    pub fn device_for_alloc_where(&mut self, allowed: impl Fn(DeviceId) -> bool) -> DeviceId {
        match self.policy {
            SchedPolicy::Fixed(dev) => {
                if allowed(dev) {
                    dev
                } else {
                    (0..self.device_count)
                        .map(DeviceId)
                        .find(|&d| allowed(d))
                        .unwrap_or(dev)
                }
            }
            SchedPolicy::RoundRobin | SchedPolicy::LeastLoaded => self.rotate(allowed),
        }
    }

    /// Device used for kernels that reference no shared objects.
    pub fn default_device(&self) -> DeviceId {
        match self.policy {
            SchedPolicy::Fixed(dev) => dev,
            SchedPolicy::RoundRobin | SchedPolicy::LeastLoaded => DeviceId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_always_same_device() {
        let mut s = Scheduler::new(SchedPolicy::Fixed(DeviceId(1)), 2);
        assert_eq!(s.device_for_alloc(), DeviceId(1));
        assert_eq!(s.device_for_alloc(), DeviceId(1));
        assert_eq!(s.default_device(), DeviceId(1));
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 3);
        let seq: Vec<_> = (0..6).map(|_| s.device_for_alloc().0).collect();
        assert_eq!(seq, [0, 1, 2, 0, 1, 2]);
        assert_eq!(s.default_device(), DeviceId(0));
    }

    #[test]
    fn round_robin_skips_excluded_devices() {
        // A session whose affinity excludes device 1 must never be handed
        // device 1, and the counter must advance past it rather than stall.
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 3);
        let seq: Vec<_> = (0..4)
            .map(|_| s.device_for_alloc_where(|d| d.0 != 1).0)
            .collect();
        assert_eq!(seq, [0, 2, 0, 2]);
        // The shared counter advanced past the skipped slots (6 consumed
        // over 4 placements): an unfiltered call continues the rotation
        // from there instead of replaying one.
        assert_eq!(s.device_for_alloc(), DeviceId(0));
        assert_eq!(s.device_for_alloc(), DeviceId(1));
    }

    #[test]
    fn fully_excluded_rotation_still_places() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 2);
        // Nothing allowed: fall back to the plain rotation (placement must
        // make progress; the bogus choice surfaces downstream).
        let dev = s.device_for_alloc_where(|_| false);
        assert!(dev.0 < 2);
    }

    #[test]
    fn fixed_policy_respects_exclusion_when_possible() {
        let mut s = Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), 3);
        assert_eq!(s.device_for_alloc_where(|d| d.0 != 0), DeviceId(1));
        assert_eq!(s.device_for_alloc_where(|_| false), DeviceId(0));
    }

    #[test]
    fn least_loaded_picks_min_and_breaks_ties_by_bytes() {
        let mut s = Scheduler::new(SchedPolicy::LeastLoaded, 3);
        assert_eq!(
            s.device_for_alloc_loaded(&[(2, 0), (1, 500), (1, 100)]),
            DeviceId(2),
            "equal queue depth: fewer in-flight bytes wins"
        );
        assert_eq!(
            s.device_for_alloc_loaded(&[(0, 0), (3, 0), (1, 0)]),
            DeviceId(0)
        );
    }

    #[test]
    fn least_loaded_idles_into_round_robin() {
        let mut s = Scheduler::new(SchedPolicy::LeastLoaded, 3);
        let idle = [(0, 0); 3];
        let seq: Vec<_> = (0..6).map(|_| s.device_for_alloc_loaded(&idle).0).collect();
        assert_eq!(seq, [0, 1, 2, 0, 1, 2], "idle board keeps rotating");
        // Missing/mismatched load data also degrades to rotation.
        assert_eq!(s.device_for_alloc_loaded(&[(5, 5)]), DeviceId(0));
        assert_eq!(s.default_device(), DeviceId(0));
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let mut s = Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), 2);
        s.set_policy(SchedPolicy::RoundRobin);
        assert_eq!(s.policy(), SchedPolicy::RoundRobin);
        s.set_policy(SchedPolicy::LeastLoaded);
        assert_eq!(s.policy(), SchedPolicy::LeastLoaded);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        Scheduler::new(SchedPolicy::RoundRobin, 0);
    }
}
