//! Kernel/allocation scheduling across accelerators.
//!
//! The paper's kernel scheduler "selects the most appropriate accelerator for
//! execution of a given kernel" (§4.1) and defers detailed policies to
//! Jimenez et al. \[29\]. This module provides the two policies the
//! experiments need: pinning everything to one device (the single-GPU
//! platform of §5) and round-robin placement for multi-accelerator tests.

use hetsim::DeviceId;

/// Placement policy for new shared objects (kernels follow their data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// All allocations on one device.
    Fixed(DeviceId),
    /// Rotate allocations across all devices.
    RoundRobin,
}

/// The allocation/kernel scheduler.
#[derive(Debug)]
pub struct Scheduler {
    policy: SchedPolicy,
    device_count: usize,
    next: usize,
}

impl Scheduler {
    /// Creates a scheduler for a platform with `device_count` accelerators.
    pub fn new(policy: SchedPolicy, device_count: usize) -> Self {
        assert!(device_count > 0, "scheduler needs at least one device");
        Scheduler {
            policy,
            device_count,
            next: 0,
        }
    }

    /// Active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of accelerators the scheduler places across (surfaced as
    /// [`crate::Gmac::device_count`]). Session affinities bypass the
    /// policy; a bogus affinity device surfaces as `NoSuchDevice` at the
    /// first allocation or call, charged nothing.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Replaces the policy.
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    /// Chooses the device for a new allocation.
    pub fn device_for_alloc(&mut self) -> DeviceId {
        match self.policy {
            SchedPolicy::Fixed(dev) => dev,
            SchedPolicy::RoundRobin => {
                let dev = DeviceId(self.next % self.device_count);
                self.next += 1;
                dev
            }
        }
    }

    /// Device used for kernels that reference no shared objects.
    pub fn default_device(&self) -> DeviceId {
        match self.policy {
            SchedPolicy::Fixed(dev) => dev,
            SchedPolicy::RoundRobin => DeviceId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_always_same_device() {
        let mut s = Scheduler::new(SchedPolicy::Fixed(DeviceId(1)), 2);
        assert_eq!(s.device_for_alloc(), DeviceId(1));
        assert_eq!(s.device_for_alloc(), DeviceId(1));
        assert_eq!(s.default_device(), DeviceId(1));
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 3);
        let seq: Vec<_> = (0..6).map(|_| s.device_for_alloc().0).collect();
        assert_eq!(seq, [0, 1, 2, 0, 1, 2]);
        assert_eq!(s.default_device(), DeviceId(0));
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let mut s = Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), 2);
        s.set_policy(SchedPolicy::RoundRobin);
        assert_eq!(s.policy(), SchedPolicy::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        Scheduler::new(SchedPolicy::RoundRobin, 0);
    }
}
