//! The GMAC application-programming interface (paper Table 1 plus the
//! `adsmSafeAlloc`/`adsmSafe` extension of §4.2).
//!
//! | paper call | method |
//! |---|---|
//! | `adsmAlloc(size)` | [`Context::alloc`] |
//! | `adsmFree(addr)` | [`Context::free`] |
//! | `adsmCall(kernel)` | [`Context::call`] |
//! | `adsmSync()` | [`Context::sync`] |
//! | `adsmSafeAlloc(size)` | [`Context::safe_alloc`] |
//! | `adsmSafe(address)` | [`Context::translate`] |

use crate::config::{AalLayer, GmacConfig};
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::{make, CoherenceProtocol};
use crate::ptr::{Param, SharedPtr};
use crate::runtime::{Counters, Runtime};
use crate::sched::{SchedPolicy, Scheduler};
use crate::state::BlockState;
use hetsim::{
    Category, DevAddr, DeviceId, KernelArg, LaunchDims, Platform, StreamId, TimeLedger,
    TransferLedger,
};
use softmmu::{AccessKind, MmuError, Scalar, VAddr};

/// An outstanding accelerator call awaiting [`Context::sync`].
#[derive(Debug, Clone, Copy)]
struct Pending {
    dev: DeviceId,
    stream: StreamId,
}

/// A GMAC context: one shared logical address space between the host CPU and
/// all accelerators of a platform.
///
/// The context owns the simulated platform, the software MMU and the
/// coherence protocol; applications interact exclusively through shared
/// pointers and the Table 1 calls.
#[derive(Debug)]
pub struct Context {
    pub(crate) rt: Runtime,
    pub(crate) mgr: Manager,
    pub(crate) protocol: Box<dyn CoherenceProtocol>,
    scheduler: Scheduler,
    pending: Option<Pending>,
    cuda_initialized: bool,
}

impl Context {
    /// Creates a context over `platform` with the given configuration.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        let device_count = platform.device_count();
        let protocol = make(config.protocol);
        let mgr = Manager::new(config.lookup);
        Context {
            rt: Runtime::new(platform, config),
            mgr,
            protocol,
            scheduler: Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), device_count),
            pending: None,
            cuda_initialized: false,
        }
    }

    fn ensure_cuda_init(&mut self) {
        if !self.cuda_initialized {
            self.cuda_initialized = true;
            if self.rt.config.aal == AalLayer::Runtime {
                // The CUDA run-time layer pays a one-time context
                // initialisation; the driver layer lets us "discard CUDA
                // initialization time" (paper §5).
                let cost = self.rt.config.costs.cuda_init;
                self.rt.charge(Category::CudaMalloc, cost);
            }
        }
    }

    // ----- allocation (Table 1) --------------------------------------------

    /// `adsmAlloc(size)`: allocates a shared object and returns the single
    /// pointer valid on both the CPU and the accelerator.
    ///
    /// # Errors
    /// [`GmacError::AddressCollision`] when the host virtual range matching
    /// the accelerator range is taken (use [`Self::safe_alloc`]); propagates
    /// device out-of-memory.
    pub fn alloc(&mut self, size: u64) -> GmacResult<SharedPtr> {
        let dev = self.scheduler.device_for_alloc();
        self.alloc_on(dev, size)
    }

    /// [`Self::alloc`] pinned to a specific accelerator.
    ///
    /// # Errors
    /// Same as [`Self::alloc`].
    pub fn alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.ensure_cuda_init();
        let alloc_base = self.rt.config.costs.alloc_base;
        self.rt.charge(Category::Malloc, alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        // 1. Accelerator memory first (its allocator dictates the address).
        let dev_addr = self.rt.platform.dev_alloc(dev, size)?;
        // 2. Mirror the same numeric range in system memory — the paper's
        //    fixed-address mmap trick (§4.2).
        let addr = VAddr(dev_addr.0);
        let initial = self.protocol.initial_state();
        let region = match self.rt.vm.map_fixed(addr, size, initial.protection()) {
            Ok(region) => region,
            Err(MmuError::Overlap { .. }) => {
                self.rt.platform.dev_free(dev, dev_addr)?;
                return Err(GmacError::AddressCollision(addr));
            }
            Err(e) => return Err(e.into()),
        };
        self.finish_alloc(dev, dev_addr, addr, size, region, initial)
    }

    /// `adsmSafeAlloc(size)`: allocates a shared object whose CPU pointer is
    /// *not* numerically equal to the accelerator address — the fallback for
    /// platforms where device ranges collide (multi-GPU, §4.2). Kernels need
    /// [`Self::translate`] (the runtime performs it automatically for
    /// [`Param::Shared`] parameters).
    ///
    /// # Errors
    /// Propagates device out-of-memory and MMU failures.
    pub fn safe_alloc(&mut self, size: u64) -> GmacResult<SharedPtr> {
        let dev = self.scheduler.device_for_alloc();
        self.safe_alloc_on(dev, size)
    }

    /// [`Self::safe_alloc`] pinned to a specific accelerator.
    ///
    /// # Errors
    /// Same as [`Self::safe_alloc`].
    pub fn safe_alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.ensure_cuda_init();
        let alloc_base = self.rt.config.costs.alloc_base;
        self.rt.charge(Category::Malloc, alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        let dev_addr = self.rt.platform.dev_alloc(dev, size)?;
        let initial = self.protocol.initial_state();
        let (region, addr) = self.rt.vm.map_anywhere(size, initial.protection())?;
        self.finish_alloc(dev, dev_addr, addr, size, region, initial)
    }

    fn finish_alloc(
        &mut self,
        dev: DeviceId,
        dev_addr: DevAddr,
        addr: VAddr,
        size: u64,
        region: softmmu::RegionId,
        initial: BlockState,
    ) -> GmacResult<SharedPtr> {
        let block_size = self.protocol.block_size_for(&self.rt.config, size);
        let id = self.mgr.next_id();
        let obj = SharedObject::new(id, addr, size, dev, dev_addr, region, block_size, initial);
        self.mgr.insert(obj);
        self.protocol.on_alloc(&mut self.rt, &mut self.mgr, addr)?;
        Ok(SharedPtr::new(addr))
    }

    /// `adsmFree(addr)`: releases a shared object.
    ///
    /// # Errors
    /// [`GmacError::NotShared`] if `ptr` is not a live shared object.
    pub fn free(&mut self, ptr: SharedPtr) -> GmacResult<()> {
        let free_base = self.rt.config.costs.free_base;
        self.rt.charge(Category::Free, free_base);
        let obj = self
            .mgr
            .remove(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        self.protocol.on_free(&mut self.rt, &obj)?;
        self.rt.vm.unmap_region(obj.region())?;
        self.rt.platform.dev_free(obj.device(), obj.dev_addr())?;
        Ok(())
    }

    // ----- kernel execution (Table 1) ----------------------------------------

    /// `adsmCall(kernel)`: releases shared objects to the accelerator and
    /// launches `kernel` asynchronously. Shared-pointer parameters are
    /// translated to device addresses automatically.
    ///
    /// # Errors
    /// Fails for unknown kernels, foreign pointers, or parameters whose
    /// objects live on different accelerators.
    pub fn call(&mut self, kernel: &str, dims: LaunchDims, params: &[Param]) -> GmacResult<()> {
        self.call_annotated(kernel, dims, params, None)
    }

    /// [`Self::call`] with the §4.3 write-set annotation: `writes` names the
    /// shared objects the kernel may write. Objects *not* listed keep a
    /// CPU-valid state across the call, so reading them after [`Self::sync`]
    /// costs no transfer (the paper's suggested interprocedural-analysis /
    /// programmer-annotation optimisation).
    ///
    /// # Errors
    /// Same as [`Self::call`].
    pub fn call_annotated(
        &mut self,
        kernel: &str,
        dims: LaunchDims,
        params: &[Param],
        writes: Option<&[SharedPtr]>,
    ) -> GmacResult<()> {
        self.ensure_cuda_init();
        // Resolve the target accelerator from the parameter objects.
        let mut dev: Option<DeviceId> = None;
        let mut args = Vec::with_capacity(params.len());
        for param in params {
            match param {
                Param::Shared(ptr) => {
                    let obj = self
                        .mgr
                        .find(ptr.addr())
                        .ok_or(GmacError::NotShared(ptr.addr()))?;
                    match dev {
                        None => dev = Some(obj.device()),
                        Some(d) if d == obj.device() => {}
                        Some(_) => return Err(GmacError::MixedDevices),
                    }
                    args.push(KernelArg::Ptr(obj.translate(ptr.addr())));
                }
                scalar => args.push(scalar.to_scalar_arg().expect("scalar param")),
            }
        }
        let dev = dev.unwrap_or_else(|| self.scheduler.default_device());

        // Release-consistency: the CPU releases shared objects at the call
        // boundary (§3.3).
        let call_cost = self.rt.config.costs.call_per_object * self.mgr.len() as u64;
        self.rt.charge(Category::Launch, call_cost);
        let writes: Option<Vec<VAddr>> = writes.map(|ptrs| {
            ptrs.iter()
                .filter_map(|p| self.mgr.find(p.addr()).map(|o| o.addr()))
                .collect()
        });
        self.protocol
            .release(&mut self.rt, &mut self.mgr, dev, writes.as_deref())?;
        // Explicit join point: eager evictions and the release flush run as
        // asynchronous DMA jobs; the kernel must not start until the device
        // holds every byte the CPU wrote.
        self.rt.join_dma(dev)?;

        self.rt
            .platform
            .launch(dev, StreamId(0), kernel, dims, &args)?;
        self.pending = Some(Pending {
            dev,
            stream: StreamId(0),
        });
        Ok(())
    }

    /// `adsmSync()`: blocks until the outstanding accelerator call finishes
    /// and acquires the shared objects back for the CPU.
    ///
    /// # Errors
    /// [`GmacError::NothingToSync`] when no call is outstanding.
    pub fn sync(&mut self) -> GmacResult<()> {
        let pending = self.pending.take().ok_or(GmacError::NothingToSync)?;
        let sync_base = self.rt.config.costs.sync_base;
        self.rt.charge(Category::Sync, sync_base);
        self.rt.platform.sync_stream(pending.dev, pending.stream)?;
        self.protocol
            .acquire(&mut self.rt, &mut self.mgr, pending.dev)?;
        Ok(())
    }

    /// `adsmSafe(address)`: translates a shared pointer to the accelerator
    /// address space (identity for unified allocations).
    ///
    /// # Errors
    /// [`GmacError::NotShared`] for foreign pointers.
    pub fn translate(&self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        Ok(obj.translate(ptr.addr()))
    }

    // ----- transparent CPU access ---------------------------------------------

    /// Typed load through the shared address space. Faults are resolved by
    /// the coherence protocol exactly like the paper's `SIGSEGV` handler.
    ///
    /// # Errors
    /// [`GmacError::NotShared`] for foreign pointers; propagates transfer
    /// failures.
    pub fn load<T: Scalar>(&mut self, ptr: SharedPtr) -> GmacResult<T> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Read)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.load::<T>(ptr.addr())?)
    }

    /// Typed store through the shared address space.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn store<T: Scalar>(&mut self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Write)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.store(ptr.addr(), value)?)
    }

    /// Loads `n` consecutive scalars. Equivalent to an element loop on the
    /// CPU: the first touch of each invalid block faults once and fetches
    /// that block.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn load_slice<T: Scalar>(&mut self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        let bytes = self.shared_read(ptr, n as u64 * T::SIZE as u64)?;
        Ok(softmmu::from_bytes(&bytes))
    }

    /// Stores consecutive scalars. Equivalent to an element loop on the CPU:
    /// the first touch of each non-dirty block faults once.
    ///
    /// # Errors
    /// Same as [`Self::load`].
    pub fn store_slice<T: Scalar>(&mut self, ptr: SharedPtr, values: &[T]) -> GmacResult<()> {
        self.shared_write(ptr, &softmmu::to_bytes(values))
    }

    /// Single checked access with the fault-retry loop (the paper's signal
    /// handler protocol, §4.3).
    fn access_checked(&mut self, ptr: SharedPtr, len: u64, kind: AccessKind) -> GmacResult<()> {
        // One fault can occur per block the access spans; anything beyond
        // that means the protocol failed to make progress.
        let mut budget = 4 + len / softmmu::PAGE_SIZE;
        loop {
            match self.rt.vm.check(ptr.addr(), len, kind) {
                Ok(()) => return Ok(()),
                Err(MmuError::Fault(fault)) => {
                    if budget == 0 {
                        return Err(GmacError::UnresolvedFault(fault.to_string()));
                    }
                    budget -= 1;
                    self.handle_fault(fault.addr, kind)?;
                }
                Err(MmuError::Unmapped(a)) => return Err(GmacError::NotShared(a)),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The "signal handler": charge delivery + lookup, then let the protocol
    /// resolve the faulting block.
    fn handle_fault(&mut self, fault_addr: VAddr, kind: AccessKind) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(fault_addr)
            .ok_or(GmacError::NotShared(fault_addr))?;
        let start = obj.addr();
        let offset = fault_addr - start;
        let steps = self.mgr.lookup_steps();
        self.rt.charge_signal(steps, kind == AccessKind::Write);
        match kind {
            AccessKind::Read => {
                self.protocol
                    .prepare_read(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
            AccessKind::Write => {
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
        }
    }

    /// Shared read used by slice loads, bulk ops and I/O: pay one fault per
    /// touched block that is not readable, resolve the whole range through
    /// the protocol in a single batched call (runs of adjacent invalid
    /// blocks coalesce into single DMA jobs), then copy.
    pub(crate) fn shared_read(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        self.resolve_read_range(ptr, len)?;
        self.read_resolved(ptr, len)
    }

    /// Copies `[ptr, ptr+len)` out of system memory, assuming the caller
    /// already made the range readable via [`Self::resolve_read_range`]
    /// (the I/O interposition resolves a whole operation's extent once,
    /// then drains it chunk by chunk through this).
    pub(crate) fn read_resolved(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        let mut out = vec![0u8; len as usize];
        self.rt.vm.read_raw(start + base_offset, &mut out)?;
        // The application's own CPU time to traverse the range.
        self.rt.platform.cpu_touch(len);
        Ok(out)
    }

    /// Makes `[ptr, ptr+len)` CPU-readable: charges one fault-equivalent per
    /// invalid block the range touches (an element loop would fault on the
    /// first touch of each), then lets the protocol fetch them all in one
    /// planned, coalesced batch. Used by [`Self::shared_read`] and by the
    /// I/O interposition to resolve an operation's full extent up front.
    pub(crate) fn resolve_read_range(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let invalid = obj
            .blocks_overlapping(base_offset, len)
            .filter(|&idx| obj.block(idx).state == BlockState::Invalid)
            .count();
        if invalid > 0 {
            let steps = self.mgr.lookup_steps();
            for _ in 0..invalid {
                self.rt.charge_signal(steps, false);
            }
            self.protocol
                .prepare_read(&mut self.rt, &mut self.mgr, start, base_offset, len)?;
        }
        Ok(())
    }

    /// Block-chunked shared write used by slice stores, bulk ops and I/O:
    /// per touched block, pay one fault if the block is not writable,
    /// prepare it, then immediately land the bytes (required ordering — see
    /// [`CoherenceProtocol::prepare_write`]).
    pub(crate) fn shared_write(&mut self, ptr: SharedPtr, bytes: &[u8]) -> GmacResult<()> {
        let len = bytes.len() as u64;
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let blocks = obj.blocks_overlapping(base_offset, len);
        for idx in blocks {
            let obj = self.mgr.find(start).expect("object lives across loop");
            let block = *obj.block(idx);
            let lo = block.offset.max(base_offset);
            let hi = (block.offset + block.len).min(base_offset + len);
            if block.state != BlockState::Dirty {
                let steps = self.mgr.lookup_steps();
                self.rt.charge_signal(steps, true);
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, lo, hi - lo)?;
            }
            let src = &bytes[(lo - base_offset) as usize..(hi - base_offset) as usize];
            self.rt.vm.write_raw(start + lo, src)?;
            // The application's own CPU time to produce/copy the chunk.
            self.rt.platform.cpu_touch(hi - lo);
        }
        Ok(())
    }

    // ----- introspection --------------------------------------------------------

    /// The simulated platform (clock, devices, filesystem).
    pub fn platform(&self) -> &Platform {
        self.rt.platform()
    }

    /// The simulated platform, mutable (kernel registration, file setup).
    pub fn platform_mut(&mut self) -> &mut Platform {
        self.rt.platform_mut()
    }

    /// Consumes the context, returning the platform (final measurements).
    pub fn into_platform(self) -> Platform {
        self.rt.platform
    }

    /// Execution-time ledger (Figure 10 categories).
    pub fn ledger(&self) -> &TimeLedger {
        self.rt.platform().ledger()
    }

    /// Transfer ledger (Figure 8 input).
    pub fn transfers(&self) -> &TransferLedger {
        self.rt.platform().transfers()
    }

    /// Runtime event counters (faults, fetches, evictions).
    pub fn counters(&self) -> Counters {
        self.rt.counters()
    }

    /// Active configuration.
    pub fn config(&self) -> &GmacConfig {
        self.rt.config()
    }

    /// Number of live shared objects.
    pub fn object_count(&self) -> usize {
        self.mgr.len()
    }

    /// The shared object containing `ptr` (diagnostics/tests).
    pub fn object_at(&self, ptr: SharedPtr) -> Option<&SharedObject> {
        self.mgr.find(ptr.addr())
    }

    /// Start addresses of all live shared objects, in address order.
    pub fn object_addrs(&self) -> Vec<VAddr> {
        self.mgr.addrs()
    }

    /// Number of blocks currently dirty, per the protocol's bookkeeping.
    pub fn dirty_block_count(&self) -> usize {
        self.protocol.dirty_blocks(&self.mgr)
    }

    /// Changes the allocation-placement policy.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.scheduler.set_policy(policy);
    }

    /// Whether an accelerator call is outstanding.
    pub fn has_pending_call(&self) -> bool {
        self.pending.is_some()
    }

    /// Direct access to runtime internals (protocol ablation harnesses and
    /// tests). Not part of the stable API.
    #[doc(hidden)]
    pub fn parts(&mut self) -> (&mut Runtime, &mut Manager, &mut dyn CoherenceProtocol) {
        (&mut self.rt, &mut self.mgr, self.protocol.as_mut())
    }
}
