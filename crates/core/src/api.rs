//! Deprecated single-threaded compatibility shim over the redesigned
//! [`Gmac`](crate::Gmac)/[`Session`](crate::Session) API.
//!
//! [`Context`] predates the split of the runtime into a shared [`Gmac`]
//! plus per-thread [`Session`] handles: it owns a private runtime and acts
//! as its single session, so every legacy call forwards 1:1 (see the
//! migration table in the README). New code should create a `Gmac` and
//! sessions instead — a `Context` can never be shared across threads and
//! cannot hand out typed [`Shared<T>`](crate::Shared) buffers.
//!
//! [`Gmac`]: crate::Gmac
//! [`Session`]: crate::Session

#![allow(deprecated)]

use crate::config::GmacConfig;
use crate::error::GmacResult;
use crate::gmac::{Inner, RouteCache};
use crate::object::SharedObject;
use crate::ptr::{Param, SharedPtr};
use crate::runtime::Counters;
use crate::sched::SchedPolicy;
use crate::session::{SessionId, SessionView};
use hetsim::{DevAddr, DeviceId, LaunchDims, Platform, TimeLedger, TransferLedger};
use softmmu::{Scalar, VAddr};

/// A GMAC context: one privately-owned runtime plus its single session.
///
/// Deprecated compatibility shim — use [`crate::Gmac`] +
/// [`crate::Session`]; see the README migration guide.
#[deprecated(
    since = "0.1.0",
    note = "use `Gmac::new(..)` and per-thread `Session` handles (README migration guide)"
)]
#[derive(Debug)]
pub struct Context {
    inner: Inner,
    view: SessionView,
    routes: RouteCache,
}

impl Context {
    /// Creates a context over `platform` with the given configuration.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        let inner = Inner::new(platform, config);
        let id = inner.next_session_id();
        Context {
            inner,
            view: SessionView { id, affinity: None },
            routes: RouteCache::default(),
        }
    }

    /// Compat for [`crate::Session::alloc`] (`adsmAlloc`).
    ///
    /// # Errors
    /// See [`crate::Session::alloc`].
    pub fn alloc(&mut self, size: u64) -> GmacResult<SharedPtr> {
        self.inner.alloc(self.view, size)
    }

    /// Compat for [`crate::Session::alloc_on`].
    ///
    /// # Errors
    /// See [`crate::Session::alloc_on`].
    pub fn alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.inner.alloc_on(dev, size)
    }

    /// Compat for [`crate::Session::safe_alloc`] (`adsmSafeAlloc`).
    ///
    /// # Errors
    /// See [`crate::Session::safe_alloc`].
    pub fn safe_alloc(&mut self, size: u64) -> GmacResult<SharedPtr> {
        self.inner.safe_alloc(self.view, size)
    }

    /// Compat for [`crate::Session::safe_alloc_on`].
    ///
    /// # Errors
    /// See [`crate::Session::safe_alloc_on`].
    pub fn safe_alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.inner.safe_alloc_on(dev, size)
    }

    /// Compat for [`crate::Session::free`] (`adsmFree`).
    ///
    /// # Errors
    /// See [`crate::Session::free`].
    pub fn free(&mut self, ptr: SharedPtr) -> GmacResult<()> {
        self.inner.free(ptr)
    }

    /// Compat for [`crate::Session::call`] (`adsmCall`).
    ///
    /// # Errors
    /// See [`crate::Session::call`].
    pub fn call(&mut self, kernel: &str, dims: LaunchDims, params: &[Param]) -> GmacResult<()> {
        self.call_annotated(kernel, dims, params, None)
    }

    /// Compat for [`crate::Session::call_annotated`].
    ///
    /// # Errors
    /// See [`crate::Session::call_annotated`].
    pub fn call_annotated(
        &mut self,
        kernel: &str,
        dims: LaunchDims,
        params: &[Param],
        writes: Option<&[SharedPtr]>,
    ) -> GmacResult<()> {
        self.inner
            .call_annotated(self.view, kernel, dims, params, writes)
    }

    /// Compat for [`crate::Session::sync`] (`adsmSync`).
    ///
    /// # Errors
    /// See [`crate::Session::sync`].
    pub fn sync(&mut self) -> GmacResult<()> {
        self.inner.sync(self.view)
    }

    /// Compat for [`crate::Session::translate`] (`adsmSafe`).
    ///
    /// # Errors
    /// See [`crate::Session::translate`].
    pub fn translate(&self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        self.inner.translate(&self.routes, ptr)
    }

    /// Compat for [`crate::Session::load`].
    ///
    /// # Errors
    /// See [`crate::Session::load`].
    pub fn load<T: Scalar>(&mut self, ptr: SharedPtr) -> GmacResult<T> {
        self.inner.load(&self.routes, ptr)
    }

    /// Compat for [`crate::Session::store`].
    ///
    /// # Errors
    /// See [`crate::Session::store`].
    pub fn store<T: Scalar>(&mut self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        self.inner.store(&self.routes, ptr, value)
    }

    /// Compat for [`crate::Session::load_slice`].
    ///
    /// # Errors
    /// See [`crate::Session::load_slice`].
    pub fn load_slice<T: Scalar>(&mut self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        self.inner.load_slice(&self.routes, ptr, n)
    }

    /// Compat for [`crate::Session::store_slice`].
    ///
    /// # Errors
    /// See [`crate::Session::store_slice`].
    pub fn store_slice<T: Scalar>(&mut self, ptr: SharedPtr, values: &[T]) -> GmacResult<()> {
        self.inner.store_slice(&self.routes, ptr, values)
    }

    /// Compat for [`crate::Session::memset`].
    ///
    /// # Errors
    /// See [`crate::Session::memset`].
    pub fn memset(&mut self, ptr: SharedPtr, value: u8, len: u64) -> GmacResult<()> {
        self.inner.memset(&self.routes, ptr, value, len)
    }

    /// Compat for [`crate::Session::memcpy_in`].
    ///
    /// # Errors
    /// See [`crate::Session::memcpy_in`].
    pub fn memcpy_in(&mut self, dst: SharedPtr, src: &[u8]) -> GmacResult<()> {
        self.inner.memcpy_in(&self.routes, dst, src)
    }

    /// Compat for [`crate::Session::memcpy_out`].
    ///
    /// # Errors
    /// See [`crate::Session::memcpy_out`].
    pub fn memcpy_out(&mut self, dst: &mut [u8], src: SharedPtr) -> GmacResult<()> {
        self.inner.memcpy_out(&self.routes, dst, src)
    }

    /// Compat for [`crate::Session::memcpy`].
    ///
    /// # Errors
    /// See [`crate::Session::memcpy`].
    pub fn memcpy(&mut self, dst: SharedPtr, src: SharedPtr, len: u64) -> GmacResult<()> {
        self.inner.memcpy(&self.routes, dst, src, len)
    }

    /// Compat for [`crate::Session::read_file_to_shared`].
    ///
    /// # Errors
    /// See [`crate::Session::read_file_to_shared`].
    pub fn read_file_to_shared(
        &mut self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        self.inner
            .read_file_to_shared(&self.routes, name, file_offset, ptr, len)
    }

    /// Compat for [`crate::Session::write_shared_to_file`].
    ///
    /// # Errors
    /// See [`crate::Session::write_shared_to_file`].
    pub fn write_shared_to_file(
        &mut self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        self.inner
            .write_shared_to_file(&self.routes, name, file_offset, ptr, len)
    }

    // ----- introspection ----------------------------------------------------

    /// The simulated platform (clock, devices, filesystem, kernel registry;
    /// internally thread-safe, so `&self` access suffices for mutation too).
    pub fn platform(&self) -> &Platform {
        &self.inner.platform
    }

    /// Compat alias for [`Self::platform`] (the platform's interior locks
    /// made `&mut` access unnecessary).
    pub fn platform_mut(&mut self) -> &Platform {
        &self.inner.platform
    }

    /// Consumes the context, returning the platform (final measurements).
    pub fn into_platform(self) -> Platform {
        self.inner.into_platform()
    }

    /// Execution-time ledger snapshot (Figure 10 categories).
    pub fn ledger(&self) -> TimeLedger {
        self.inner.platform.ledger()
    }

    /// Transfer-ledger snapshot (Figure 8 input).
    pub fn transfers(&self) -> TransferLedger {
        *self.inner.platform.transfers()
    }

    /// Runtime event counters (faults, fetches, evictions).
    pub fn counters(&self) -> Counters {
        self.inner.counters()
    }

    /// Active configuration.
    pub fn config(&self) -> &GmacConfig {
        self.inner.config()
    }

    /// Number of live shared objects.
    pub fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    /// Snapshot of the shared object containing `ptr` (diagnostics/tests).
    pub fn object_at(&self, ptr: SharedPtr) -> Option<SharedObject> {
        self.inner.object_at(ptr)
    }

    /// Start addresses of all live shared objects, in address order.
    pub fn object_addrs(&self) -> Vec<VAddr> {
        self.inner.object_addrs()
    }

    /// Number of blocks currently dirty, per the protocol's bookkeeping.
    pub fn dirty_block_count(&self) -> usize {
        self.inner.dirty_block_count()
    }

    /// Changes the allocation-placement policy.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.inner.set_sched_policy(policy);
    }

    /// Whether an accelerator call is outstanding.
    pub fn has_pending_call(&self) -> bool {
        self.inner.has_pending_call(self.view)
    }

    /// This context's session identity (it owns exactly one).
    pub fn session_id(&self) -> SessionId {
        self.view.id
    }

    /// Direct access to the runtime internals of the device-0 shard
    /// (protocol ablation harnesses and tests). Not part of the stable API.
    /// The shard lock is held for the duration of `f` and is not reentrant.
    #[doc(hidden)]
    pub fn with_parts<R>(
        &mut self,
        f: impl FnOnce(
            &mut crate::runtime::Runtime,
            &mut crate::manager::Manager,
            &mut dyn crate::protocol::CoherenceProtocol,
        ) -> R,
    ) -> R {
        let mut shard = self.inner.shard(DeviceId(0));
        let crate::shard::DeviceShard {
            rt, mgr, protocol, ..
        } = &mut *shard;
        f(rt, mgr, protocol.as_mut())
    }

    pub(crate) fn state_ref(&self) -> &Inner {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::error::GmacError;
    use crate::testutil::NopKernel;
    use hetsim::Category;
    use std::sync::Arc;

    fn ctx() -> Context {
        Context::new(Platform::desktop_g280(), GmacConfig::default())
    }

    #[test]
    fn compat_shim_preserves_table1_flow() {
        let platform = Platform::desktop_g280();
        platform.register_kernel(Arc::new(NopKernel));
        let mut c = Context::new(platform, GmacConfig::default().protocol(Protocol::Rolling));
        let p = c.alloc(64 * 1024).unwrap();
        c.store_slice::<u32>(p, &[1, 2, 3]).unwrap();
        assert_eq!(c.load_slice::<u32>(p, 3).unwrap(), vec![1, 2, 3]);
        c.call("nop", LaunchDims::for_elements(1, 1), &[Param::Shared(p)])
            .unwrap();
        assert!(c.has_pending_call());
        c.sync().unwrap();
        assert!(!c.has_pending_call());
        assert_eq!(c.translate(p).unwrap().0, p.addr().0, "unified alloc");
        c.free(p).unwrap();
        assert_eq!(c.object_count(), 0);
        assert!(matches!(c.sync(), Err(GmacError::NothingToSync)));
    }

    #[test]
    fn failed_free_charges_nothing_through_compat_path() {
        let mut c = ctx();
        let p = c.alloc(4096).unwrap();
        c.free(p).unwrap();
        let before = c.ledger().get(Category::Free);
        assert!(c.free(p).is_err());
        assert_eq!(c.ledger().get(Category::Free), before);
    }

    #[test]
    fn context_owns_its_runtime() {
        let mut a = ctx();
        let mut b = ctx();
        let pa = a.alloc(4096).unwrap();
        assert_eq!(b.object_count(), 0, "contexts do not share state");
        let pb = b.alloc(4096).unwrap();
        assert_eq!(pa.addr(), pb.addr(), "identical private address spaces");
    }
}
