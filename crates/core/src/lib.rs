//! # gmac — Asymmetric Distributed Shared Memory for heterogeneous systems
//!
//! A Rust reproduction of **GMAC**, the user-level ADSM runtime of Gelado et
//! al., *"An Asymmetric Distributed Shared Memory Model for Heterogeneous
//! Parallel Systems"* (ASPLOS 2010).
//!
//! ADSM maintains a shared logical address space in which the **CPU can
//! transparently access objects hosted in accelerator memory, but not vice
//! versa**. The asymmetry means every coherence and consistency action runs
//! on the host — at allocation, page-fault, kernel-call and kernel-return
//! boundaries — allowing accelerators with no coherence support at all.
//!
//! ## The API (paper Table 1)
//!
//! The runtime is split in two: a process-wide [`Gmac`] (platform + software
//! MMU + object registry + coherence machinery, **sharded per accelerator**
//! — see [`shard`]) and cheap per-thread [`Session`] handles that carry the
//! Table 1 calls. Kernel calls, protocol state and MMU regions are owned per
//! device shard, so sessions driving different devices each keep a call in
//! flight *and* overlap in wall-clock time; [`GmacConfig::sharding`] turns
//! the old global-lock mode back on for ablation.
//!
//! ```
//! use gmac::{Gmac, GmacConfig, Protocol};
//! use hetsim::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gmac = Gmac::new(
//!     Platform::desktop_g280(),
//!     GmacConfig::default().protocol(Protocol::Rolling),
//! );
//! let session = gmac.session();
//!
//! // adsmAlloc, typed: ONE pointer, valid on CPU and accelerator.
//! let v = session.alloc_typed::<f32>(1024)?;
//!
//! // The CPU initialises the object directly — no cudaMemcpy anywhere.
//! v.write_slice(&vec![1.0; 1024])?;
//! assert_eq!(v.read(17)?, 1.0);
//!
//! // adsmFree on drop (or explicitly):
//! v.free()?;
//! # Ok(())
//! # }
//! ```
//!
//! Kernels are launched with [`Session::call`] (`adsmCall`) and joined with
//! [`Session::sync`] (`adsmSync`); shared objects are released to the
//! accelerator at the call and acquired back by the CPU at the sync — the
//! implicit release consistency of §3.3. The deprecated [`Context`] shim
//! keeps the old single-threaded surface compiling (see the README
//! migration guide).
//!
//! ## Coherence protocols
//!
//! Three host-driven protocols are selectable via [`GmacConfig`]
//! (see [`protocol`]): [`Protocol::Batch`], [`Protocol::Lazy`] and
//! [`Protocol::Rolling`] — each a refinement of the previous, exactly as the
//! paper presents them.
//!
//! ## Substrate
//!
//! This crate contains *no* real GPU code: it runs on the simulated platform
//! of the [`hetsim`] crate and detects CPU accesses with the software MMU of
//! [`softmmu`] instead of `mprotect`/`SIGSEGV` (see `DESIGN.md` for the
//! substitution argument). The programming model, state machines, transfer
//! policies and cost accounting are faithful to the paper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(clippy::missing_safety_doc)]

pub mod api;
pub mod bulk;
pub mod config;
pub mod error;
pub mod evict;
pub(crate) mod fasttime;
pub(crate) mod fastview;
pub mod gmac;
pub mod io;
pub mod manager;
pub mod object;
pub mod protocol;
pub mod ptr;
pub mod race;
pub(crate) mod registry;
pub mod report;
pub mod runtime;
pub mod sched;
pub mod service;
pub mod session;
pub mod shard;
pub mod state;
pub mod testutil;
pub mod typed;
pub mod xfer;

#[allow(deprecated)]
pub use api::Context;
pub use config::{AalLayer, EvictPolicy, GmacConfig, GmacCosts, LookupKind, Protocol};
pub use error::{AdmissionReason, GmacError, GmacResult};
pub use evict::EvictState;
pub use gmac::Gmac;
pub use object::{ObjectId, SharedObject};
pub use ptr::{Param, SharedPtr};
pub use race::{RaceKind, RaceStats, RaceViolation};
pub use report::{EvictionReport, ObjectReport, RaceReport, Report};
pub use runtime::Counters;
pub use sched::{SchedPolicy, Scheduler};
pub use service::{
    ClassSnapshot, JobId, LoadBoard, Priority, Service, ServiceClient, ServiceSnapshot,
    ServiceStats, Ticket,
};
pub use session::{Session, SessionId};
pub use shard::DeviceShard;
pub use state::BlockState;
pub use typed::Shared;
pub use xfer::{DmaEngine, DmaJob, DmaQueue, EngineStats, Purpose, TransferPlan};
