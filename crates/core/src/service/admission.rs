//! Admission control: the bounded-queue gate in front of the service.
//!
//! With the service layer on, resource pressure is expressed **here**, once,
//! at submit time — never as a surprise [`crate::GmacError::DeviceBusy`]
//! deep in a call path. A refused job gets an explicit
//! [`crate::GmacError::Admission`] carrying a machine-readable *retry-after*
//! hint, so well-behaved clients can back off instead of hammering the
//! queue.

use hetsim::Nanos;

/// Floor for the per-job drain estimate when the service has not completed
/// any job yet (a cold service still hands out a non-zero hint).
pub const MIN_JOB_DRAIN_NS: u64 = 1_000;

/// Retry-after estimate for a refused job: the time the current backlog
/// needs to drain across the device pool, using the observed mean job
/// execution time (floored by [`MIN_JOB_DRAIN_NS`] so the hint is never
/// zero).
///
/// The estimate is deliberately simple — queue length × mean service time ÷
/// devices — the classic M/M/c back-of-envelope; its job is to give the
/// client a plausible backoff, not a promise.
pub fn retry_after_hint(queued: usize, devices: usize, avg_run_ns: u64) -> Nanos {
    let per_job = avg_run_ns.max(MIN_JOB_DRAIN_NS);
    let backlog = (queued as u64).saturating_add(1);
    // The division can floor a small backlog on a wide device pool to zero;
    // a zero hint reads as "retry immediately" and defeats the backoff, so
    // the floor applies to the final figure too.
    Nanos::from_nanos(
        (per_job.saturating_mul(backlog) / devices.max(1) as u64).max(MIN_JOB_DRAIN_NS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_is_never_zero() {
        assert!(retry_after_hint(0, 1, 0).as_nanos() >= MIN_JOB_DRAIN_NS);
    }

    #[test]
    fn hint_scales_with_backlog_and_divides_by_devices() {
        let one_dev = retry_after_hint(100, 1, 10_000);
        let four_dev = retry_after_hint(100, 4, 10_000);
        assert_eq!(one_dev.as_nanos(), 101 * 10_000);
        assert_eq!(four_dev.as_nanos(), 101 * 10_000 / 4);
        assert!(retry_after_hint(200, 1, 10_000) > one_dev);
    }

    #[test]
    fn zero_devices_is_clamped() {
        // Defensive: a board is never empty, but the hint must not divide
        // by zero even if handed nonsense.
        assert!(retry_after_hint(5, 0, 1_000).as_nanos() > 0);
    }

    #[test]
    fn empty_history_on_wide_pool_keeps_the_floor() {
        // Cold service (no completed jobs → avg 0) on a pool wider than the
        // backlog: the division would round the hint to zero without the
        // final floor.
        let hint = retry_after_hint(0, 64, 0);
        assert_eq!(hint.as_nanos(), MIN_JOB_DRAIN_NS);
    }

    #[test]
    fn drained_queue_still_hints_nonzero() {
        // A refusal racing the queue draining to empty must still back the
        // client off: queued = 0 covers the in-flight job that triggered
        // the refusal.
        for devices in [1, 2, 8, 1024] {
            assert!(
                retry_after_hint(0, devices, 500).as_nanos() >= MIN_JOB_DRAIN_NS,
                "devices={devices}"
            );
        }
    }
}
