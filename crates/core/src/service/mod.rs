//! # The multi-tenant service layer
//!
//! A job-submission front-end over the [`Gmac`](crate::Gmac) runtime for the
//! deployment shape the paper's one-host-thread-per-context model never
//! exercises: **M client sessions, M ≫ devices**, sustained traffic. The
//! moving parts, front to back:
//!
//! ```text
//!   clients (M)            bounded fair queue        placer      devices (N)
//!   ┌─────────┐  submit   ┌───────────────────┐    ┌───────┐   ┌──────────┐
//!   │ client₀ │──────────▶│ lane₀ ▶▶▶         │    │ least │──▶│ worker₀  │
//!   │ client₁ │──────────▶│ lane₁ ▶▶          │───▶│ loaded│──▶│ worker₁  │
//!   │   ...   │  Admission│ ...   (DRR across │    │ (RR   │   │  ...     │
//!   │ clientₘ │◀──────────│ lanes, weighted   │    │ idle) │──▶│ workerₙ  │
//!   └─────────┘  rejected │ by priority)      │    └───────┘   └──────────┘
//!                         └───────────────────┘
//! ```
//!
//! * **[`queue`]** — one FIFO lane per client session, bounded overall
//!   ([`crate::GmacConfig::service_queue_depth`]), dequeued with
//!   deficit-weighted round robin so no priority class starves.
//! * **[`placer`]** — a placement thread routes each dequeued job to the
//!   least-loaded device (`(queued jobs, in-flight bytes)` per shard on the
//!   [`LoadBoard`]), falling back to round-robin when all devices are idle.
//! * **[`admission`]** — overflow is an explicit, immediate
//!   [`GmacError::Admission`] with a machine-readable retry-after hint —
//!   with the service on, [`GmacError::DeviceBusy`] never reaches a client:
//!   contention becomes *queueing*, not an error.
//! * **[`stats`]** — served bytes, queue wait and run time per priority
//!   class, surfaced through [`crate::Report`].
//!
//! One worker thread per device executes jobs on a device-pinned
//! [`Session`]; a device therefore never sees two sessions racing for its
//! pending-call slot, which is what structurally retires `DeviceBusy` from
//! the client-visible surface. Coordination (placement + admission) happens
//! entirely **off** the data path — clients that never touch the same shard
//! are never serialized by the service (the Golab CC-vs-DSM separation).
//!
//! # Lock order
//!
//! The service queue and lane mutexes sit **above** the whole runtime
//! hierarchy: `service queue → registry → shard → engine queues → platform
//! leaves`. Service threads take runtime locks only *through* public
//! session operations while holding no service lock, and submit paths take
//! service locks while holding no runtime lock.
//!
//! # Ablation
//!
//! [`crate::GmacConfig::service`]`(false)` degrades [`ServiceClient::submit`] to
//! inline execution on the calling thread — same placement, same
//! bookkeeping, no queue, no threads — and the `service` integration test
//! proves a serialized single-tenant run is **byte-identical** (digests and
//! per-category virtual-time ledgers) between the two modes and plain
//! direct execution.

pub mod admission;
pub mod placer;
pub mod queue;
pub mod stats;

pub use placer::LoadBoard;
pub use queue::{JobFn, JobId, JobMeta, Priority};
pub use stats::{ClassSnapshot, ServiceSnapshot, ServiceStats};

use crate::error::{GmacError, GmacResult};
use crate::gmac::{lock, Inner};
use crate::session::Session;
use queue::{FairQueue, QueuedJob};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Jobs a placed worker may hold beyond the one it is executing. Kept tiny
/// on purpose: the backlog must live in the *fair* queue (where DRR and
/// admission apply), not in per-device FIFOs that would lock in a stale
/// placement.
const LANE_SLACK: usize = 2;

/// Completion cell behind a [`Ticket`]: result slot + wakeup.
#[derive(Debug, Default)]
pub(crate) struct TicketCell {
    slot: Mutex<Option<GmacResult<u64>>>,
    done: Condvar,
}

impl TicketCell {
    fn fulfill(&self, result: GmacResult<u64>) {
        *lock(&self.slot) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> GmacResult<u64> {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn try_result(&self) -> Option<GmacResult<u64>> {
        lock(&self.slot).clone()
    }
}

/// Handle on one submitted job: wait for (or poll) its result.
///
/// Results are sticky — [`Ticket::wait`] and [`Ticket::try_result`] can be
/// called any number of times after completion.
#[derive(Debug, Clone)]
pub struct Ticket {
    id: JobId,
    priority: Priority,
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// The job's identity.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The priority class the job was queued under.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Errors
    /// Whatever the job closure returned; [`GmacError::UnresolvedFault`] if
    /// the closure panicked.
    pub fn wait(&self) -> GmacResult<u64> {
        self.cell.wait()
    }

    /// Non-blocking probe: `None` while the job is still queued or running.
    pub fn try_result(&self) -> Option<GmacResult<u64>> {
        self.cell.try_result()
    }
}

/// One device's run queue: the placer pushes (bounded by [`LANE_SLACK`]),
/// the device worker pops.
#[derive(Debug, Default)]
struct ExecLane {
    state: Mutex<(VecDeque<QueuedJob>, bool)>,
    changed: Condvar,
}

impl ExecLane {
    /// Blocks while the lane is full; no-op delivery after close (the job
    /// is bounced back for the caller to fail the ticket).
    fn push(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        let mut st = lock(&self.state);
        loop {
            if st.1 {
                return Err(job);
            }
            if st.0.len() <= LANE_SLACK {
                st.0.push_back(job);
                drop(st);
                self.changed.notify_all();
                return Ok(());
            }
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn pop(&self) -> Option<QueuedJob> {
        let mut st = lock(&self.state);
        loop {
            if let Some(job) = st.0.pop_front() {
                drop(st);
                self.changed.notify_all();
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock(&self.state).1 = true;
        self.changed.notify_all();
    }
}

/// Shared state between the service handle, its clients and its threads.
#[derive(Debug)]
struct SvcShared {
    inner: Arc<Inner>,
    queue: FairQueue,
    board: Arc<LoadBoard>,
    stats: Arc<ServiceStats>,
    lanes: Vec<ExecLane>,
    next_job: AtomicU64,
    /// Queued mode (true) vs inline ablation mode (false).
    queued: bool,
}

impl SvcShared {
    fn next_job_id(&self) -> JobId {
        JobId(self.next_job.fetch_add(1, Ordering::Relaxed))
    }

    /// Runs one job on `session` and settles every ledger: board, stats,
    /// ticket. Shared verbatim between worker threads and inline mode so
    /// the two modes stay observably identical.
    fn execute(&self, session: &Session, job: QueuedJob, dev: hetsim::DeviceId) {
        let wait_ns = job.meta.enqueued.elapsed().as_nanos() as u64;
        self.board.note_started(dev, job.meta.cost);
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| (job.run)(session))).unwrap_or_else(|_| {
            Err(GmacError::UnresolvedFault(
                "service job panicked".to_string(),
            ))
        });
        // A panicking job can unwind past its fast-path accesses before any
        // gate settles them; flush this worker thread's deferred charges now
        // so the fairness accounting (and the clock the next job reads)
        // doesn't silently carry one tenant's time into another's job.
        crate::fasttime::flush(&self.inner.platform);
        // A job that leaves a call in flight would hand the *next* tenant's
        // job a busy device; settle it here so DeviceBusy stays structurally
        // impossible. (Well-behaved jobs sync themselves; this charges
        // nothing for them.)
        if session.has_pending_call() {
            let _ = session.sync();
        }
        let run_ns = started.elapsed().as_nanos() as u64;
        self.board.note_finished(dev, job.meta.cost);
        self.stats.note_completed(
            job.meta.priority,
            job.meta.cost,
            wait_ns,
            run_ns,
            result.is_ok(),
        );
        job.ticket.fulfill(result);
    }
}

/// The multi-tenant job-submission front-end (see the [module docs](self)).
///
/// Created with [`crate::Gmac::service`]; hand out one [`ServiceClient`]
/// per tenant. Dropping the service closes admission, **drains** the
/// backlog (every accepted ticket is fulfilled) and joins its threads.
///
/// ```
/// use gmac::{Gmac, GmacConfig, Priority};
/// use hetsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gmac = Gmac::new(Platform::desktop_g280(), GmacConfig::default());
/// let service = gmac.service();
/// let client = service.client(Priority::Normal);
/// let ticket = client.submit(4096, |s| {
///     let buf = s.alloc_typed::<u32>(1024)?;
///     buf.write(0, 7)?;
///     let v = buf.read(0)?;
///     buf.free()?;
///     Ok(u64::from(v))
/// })?;
/// assert_eq!(ticket.wait()?, 7);
/// drop(service);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Service {
    shared: Arc<SvcShared>,
    placer: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    pub(crate) fn new(inner: Arc<Inner>) -> Self {
        let config = inner.config();
        let queued = config.service;
        let capacity = config.service_queue_depth;
        let device_count = inner.device_count();
        let shared = Arc::new(SvcShared {
            board: Arc::clone(&inner.loads),
            queue: FairQueue::new(capacity),
            stats: Arc::new(ServiceStats::default()),
            lanes: (0..device_count).map(|_| ExecLane::default()).collect(),
            next_job: AtomicU64::new(0),
            queued,
            inner,
        });
        shared.inner.register_service_stats(&shared.stats);
        let (placer, workers) = if queued {
            let workers = (0..device_count)
                .map(|i| {
                    let sh = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("gmac-svc-{i}"))
                        .spawn(move || {
                            let dev = hetsim::DeviceId(i);
                            let session =
                                crate::Gmac::from_state(Arc::clone(&sh.inner)).session_on(dev);
                            while let Some(job) = sh.lanes[i].pop() {
                                sh.execute(&session, job, dev);
                            }
                        })
                        .expect("spawn service worker")
                })
                .collect();
            let sh = Arc::clone(&shared);
            let placer = std::thread::Builder::new()
                .name("gmac-svc-placer".to_string())
                .spawn(move || {
                    while let Some(job) = sh.queue.pop() {
                        let dev = sh.board.place(None);
                        sh.board.note_placed(dev);
                        if let Err(job) = sh.lanes[dev.0].push(job) {
                            // Lane already closed (tear-down race): fail the
                            // ticket rather than strand its waiter.
                            sh.board.note_finished(dev, 0);
                            job.ticket.fulfill(Err(GmacError::Admission {
                                reason: crate::error::AdmissionReason::Shutdown,
                                retry_after: hetsim::Nanos::ZERO,
                            }));
                        }
                    }
                })
                .expect("spawn service placer");
            (Some(placer), workers)
        } else {
            (None, Vec::new())
        };
        Service {
            shared,
            placer,
            workers,
        }
    }

    /// Opens a tenant handle with its own session identity and fair-queue
    /// lane, submitting at `priority`.
    pub fn client(&self, priority: Priority) -> ServiceClient {
        ServiceClient {
            shared: Arc::clone(&self.shared),
            session: self.shared.inner.next_session_id(),
            priority,
        }
    }

    /// Whether jobs flow through the queue (`true`) or run inline on the
    /// submitting thread ([`crate::GmacConfig::service`] off).
    pub fn is_queued(&self) -> bool {
        self.shared.queued
    }

    /// Jobs currently waiting in the fair queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Deepest the fair queue has been.
    pub fn queue_high_water(&self) -> usize {
        self.shared.queue.high_water()
    }

    /// Configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Fairness-accounting snapshot.
    pub fn stats(&self) -> ServiceSnapshot {
        self.shared.stats.snapshot()
    }

    /// `(queued jobs, in-flight bytes)` per device, in id order.
    pub fn loads(&self) -> Vec<(u64, u64)> {
        self.shared.board.snapshot()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Stop admission, drain the fair queue through the placer, then
        // drain each lane through its worker. Every accepted ticket is
        // fulfilled before the threads are joined.
        self.shared.queue.close();
        if let Some(placer) = self.placer.take() {
            let _ = placer.join();
        }
        for lane in &self.shared.lanes {
            lane.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One tenant's handle on a [`Service`]: a session identity plus the
/// priority class its jobs are queued under. Cheap to clone and `Send` —
/// hand one to each client thread.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    shared: Arc<SvcShared>,
    session: crate::session::SessionId,
    priority: Priority,
}

impl ServiceClient {
    /// This client's session identity (its fair-queue lane key).
    pub fn session_id(&self) -> crate::session::SessionId {
        self.session
    }

    /// This client's priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Submits one job. `bytes_hint` is the job's approximate byte
    /// footprint — the currency admission and deficit-weighted fairness
    /// account in (0 is clamped to 1; jobs-as-units).
    ///
    /// With the service queued (the default), the call returns immediately
    /// with a [`Ticket`]; with [`crate::GmacConfig::service`] off the job
    /// runs inline and the returned ticket is already fulfilled.
    ///
    /// # Errors
    /// [`GmacError::Admission`] when the bounded queue is full (the error
    /// carries a retry-after hint) or the service is shutting down. The
    /// job's *own* errors surface through [`Ticket::wait`], not here.
    pub fn submit(
        &self,
        bytes_hint: u64,
        job: impl FnOnce(&Session) -> GmacResult<u64> + Send + 'static,
    ) -> GmacResult<Ticket> {
        self.submit_boxed(bytes_hint, Box::new(job))
    }

    /// [`Self::submit`] taking an already-boxed job (the form workload
    /// adapters produce).
    ///
    /// # Errors
    /// Same as [`Self::submit`].
    pub fn submit_boxed(&self, bytes_hint: u64, job: JobFn) -> GmacResult<Ticket> {
        let sh = &self.shared;
        let meta = JobMeta {
            id: sh.next_job_id(),
            session: self.session,
            priority: self.priority,
            cost: bytes_hint.max(1),
            enqueued: Instant::now(),
        };
        let cell = Arc::new(TicketCell::default());
        let ticket = Ticket {
            id: meta.id,
            priority: meta.priority,
            cell: Arc::clone(&cell),
        };
        let queued_job = QueuedJob {
            meta,
            run: job,
            ticket: cell,
        };
        if !sh.queued {
            // Inline ablation mode: same placement, same accounting, no
            // queue — the job runs to completion on this thread.
            let dev = sh.board.place(None);
            sh.board.note_placed(dev);
            sh.stats.note_submitted(self.priority);
            let session = crate::Gmac::from_state(Arc::clone(&sh.inner)).session_on(dev);
            sh.execute(&session, queued_job, dev);
            return Ok(ticket);
        }
        match sh.queue.push(queued_job) {
            Ok(()) => {
                sh.stats.note_submitted(self.priority);
                Ok(ticket)
            }
            Err((job, rejected)) => {
                drop(job);
                sh.stats.note_rejected(self.priority);
                let queued = match rejected {
                    queue::PushRejected::Full { queued, .. } => queued,
                    queue::PushRejected::Closed => 0,
                };
                let retry = admission::retry_after_hint(
                    queued,
                    sh.board.device_count(),
                    sh.stats.avg_run_ns(),
                );
                Err(queue::rejection_to_error(rejected, retry))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmacConfig;
    use crate::Gmac;
    use hetsim::Platform;

    fn service_gmac(queued: bool, depth: usize) -> Gmac {
        Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .service(queued)
                .service_queue_depth(depth),
        )
    }

    #[test]
    fn roundtrip_through_the_queue() {
        let g = service_gmac(true, 64);
        let svc = g.service();
        let client = svc.client(Priority::Normal);
        let t = client
            .submit(4096, |s| {
                let b = s.alloc_typed::<u32>(16)?;
                b.write(3, 42)?;
                let v = b.read(3)?;
                b.free()?;
                Ok(u64::from(v))
            })
            .unwrap();
        assert_eq!(t.wait().unwrap(), 42);
        assert!(svc.is_queued());
        let snap = svc.stats();
        assert_eq!(snap.completed(), 1);
        assert_eq!(snap.classes[Priority::Normal.index()].served_bytes, 4096);
    }

    #[test]
    fn inline_mode_fulfills_before_returning() {
        let g = service_gmac(false, 64);
        let svc = g.service();
        assert!(!svc.is_queued());
        let t = svc.client(Priority::High).submit(0, |_s| Ok(99)).unwrap();
        assert_eq!(t.try_result().unwrap().unwrap(), 99);
        assert_eq!(t.wait().unwrap(), 99);
    }

    #[test]
    fn job_errors_surface_on_the_ticket_not_submit() {
        let g = service_gmac(true, 8);
        let svc = g.service();
        let t = svc
            .client(Priority::Low)
            .submit(1, |s| {
                s.load::<u32>(crate::SharedPtr::new(softmmu::VAddr(0x10)))
                    .map(u64::from)
            })
            .unwrap();
        assert!(matches!(t.wait(), Err(GmacError::NotShared(_))));
        let snap = svc.stats();
        assert_eq!(snap.classes[Priority::Low.index()].failed, 1);
    }

    #[test]
    fn panicking_job_fails_its_ticket_and_service_survives() {
        let g = service_gmac(true, 8);
        let svc = g.service();
        let c = svc.client(Priority::Normal);
        let t = c.submit(1, |_s| panic!("boom")).unwrap();
        assert!(matches!(t.wait(), Err(GmacError::UnresolvedFault(_))));
        // The worker survived the panic and still serves jobs.
        let t2 = c.submit(1, |_s| Ok(5)).unwrap();
        assert_eq!(t2.wait().unwrap(), 5);
    }

    #[test]
    fn drop_drains_accepted_tickets() {
        let g = service_gmac(true, 256);
        let svc = g.service();
        let c = svc.client(Priority::Normal);
        let tickets: Vec<Ticket> = (0..32)
            .map(|i| c.submit(1, move |_s| Ok(i)).unwrap())
            .collect();
        drop(svc);
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(t.wait().unwrap(), i as u64, "drained ticket {i}");
        }
    }

    #[test]
    fn overflow_rejects_with_retry_hint() {
        let g = service_gmac(true, 2);
        let svc = g.service();
        let c = svc.client(Priority::Normal);
        // A blocking job wedges the single worker; the lane absorbs a
        // couple more, then the fair queue (capacity 2) fills.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        let blocker = c
            .submit(1, move |_s| {
                let (m, cv) = &*gate2;
                let mut open = lock(m);
                while !*open {
                    open = cv
                        .wait(open)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Ok(0)
            })
            .unwrap();
        let mut rejected = None;
        let mut accepted = vec![blocker];
        for i in 0..64 {
            match c.submit(1, move |_s| Ok(i)) {
                Ok(t) => accepted.push(t),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let err = rejected.expect("bounded queue must eventually reject");
        match &err {
            GmacError::Admission {
                reason: crate::error::AdmissionReason::QueueFull { queued, capacity },
                retry_after,
            } => {
                assert_eq!(*capacity, 2);
                assert_eq!(*queued, 2);
                assert!(retry_after.as_nanos() > 0, "retry hint must be non-zero");
            }
            other => panic!("expected Admission(QueueFull), got {other:?}"),
        }
        // Unblock and drain: every accepted ticket completes.
        {
            let (m, cv) = &*gate;
            *lock(m) = true;
            cv.notify_all();
        }
        for t in &accepted {
            t.wait().unwrap();
        }
        assert!(svc.stats().rejected() >= 1);
    }
}
