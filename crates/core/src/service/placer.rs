//! Load-aware job placement across device shards.
//!
//! The placer extends the allocation scheduler's affinity story
//! ([`crate::sched`]) into *load-aware* placement: each device carries a
//! live `(queued jobs, in-flight bytes)` pair on the [`LoadBoard`], and a
//! job goes to the least-loaded device — falling back to plain round-robin
//! when every device is idle, so an unloaded system keeps the scheduler's
//! historical rotation behaviour. Coordination stays off the data path
//! (the Golab CC-vs-DSM argument): the board is a handful of relaxed
//! atomics, read without any lock, and sessions that never share a shard
//! are never serialized by placement.

use hetsim::DeviceId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-device load cell: jobs placed but not finished, bytes in flight,
/// resident device bytes.
#[derive(Debug, Default)]
struct DevLoad {
    /// Jobs placed on the device's run queue (or executing) right now.
    queued: AtomicU64,
    /// Byte-footprint hints of jobs currently executing on the device.
    inflight_bytes: AtomicU64,
    /// Shared-object bytes currently resident in the device's memory,
    /// maintained by the owning shard (alloc/evict/re-fetch/free). Breaks
    /// placement ties so new work prefers devices with free capacity —
    /// landing a job there avoids eviction churn on the full ones.
    resident: AtomicU64,
}

/// Lock-free per-device load table shared by the service placer, the
/// [`crate::SchedPolicy::LeastLoaded`] allocation policy and the report.
#[derive(Debug)]
pub struct LoadBoard {
    devs: Vec<DevLoad>,
    rr: AtomicUsize,
}

impl LoadBoard {
    /// Creates a board for `device_count` accelerators.
    pub fn new(device_count: usize) -> Self {
        LoadBoard {
            devs: (0..device_count.max(1))
                .map(|_| DevLoad::default())
                .collect(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of devices tracked.
    pub fn device_count(&self) -> usize {
        self.devs.len()
    }

    /// `(queued jobs, in-flight bytes)` per device, in id order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.devs
            .iter()
            .map(|d| {
                (
                    d.queued.load(Ordering::Relaxed),
                    d.inflight_bytes.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Resident device bytes per device, in id order (see
    /// [`Self::add_resident`]).
    pub fn resident_snapshot(&self) -> Vec<u64> {
        self.devs
            .iter()
            .map(|d| d.resident.load(Ordering::Relaxed))
            .collect()
    }

    /// Chooses the device for the next job: a pinned session's affinity
    /// wins outright; otherwise the least-loaded device by
    /// `(queued jobs, in-flight bytes, resident bytes, id)` — or, when
    /// **every** device is idle (no queued jobs or in-flight bytes), plain
    /// round-robin so an unloaded service keeps rotating placements instead
    /// of piling everything on device 0.
    pub fn place(&self, affinity: Option<DeviceId>) -> DeviceId {
        if let Some(dev) = affinity {
            return dev;
        }
        let loads = self.snapshot();
        if loads.iter().all(|&(q, b)| q == 0 && b == 0) {
            return DeviceId(self.rr.fetch_add(1, Ordering::Relaxed) % self.devs.len());
        }
        let resident = self.resident_snapshot();
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &(q, b))| (q, b, resident[i], i))
            .expect("at least one device");
        DeviceId(idx)
    }

    /// Records a job handed to `dev`'s run queue.
    pub fn note_placed(&self, dev: DeviceId) {
        self.devs[dev.0].queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job starting execution on `dev` with byte footprint `cost`.
    pub fn note_started(&self, dev: DeviceId, cost: u64) {
        self.devs[dev.0]
            .inflight_bytes
            .fetch_add(cost, Ordering::Relaxed);
    }

    /// Records a job finishing on `dev`.
    pub fn note_finished(&self, dev: DeviceId, cost: u64) {
        self.devs[dev.0].queued.fetch_sub(1, Ordering::Relaxed);
        self.devs[dev.0]
            .inflight_bytes
            .fetch_sub(cost, Ordering::Relaxed);
    }

    /// Records `bytes` of shared-object data becoming resident on `dev`
    /// (allocation or eviction re-fetch).
    pub fn add_resident(&self, dev: DeviceId, bytes: u64) {
        self.devs[dev.0]
            .resident
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` leaving `dev`'s memory (eviction or free).
    pub fn sub_resident(&self, dev: DeviceId, bytes: u64) {
        self.devs[dev.0]
            .resident
            .fetch_sub(bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_board_round_robins() {
        let b = LoadBoard::new(3);
        let seq: Vec<usize> = (0..6).map(|_| b.place(None).0).collect();
        assert_eq!(seq, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn affinity_overrides_load() {
        let b = LoadBoard::new(2);
        b.note_placed(DeviceId(1));
        assert_eq!(b.place(Some(DeviceId(1))), DeviceId(1));
    }

    #[test]
    fn loaded_board_picks_least_loaded() {
        let b = LoadBoard::new(3);
        b.note_placed(DeviceId(0));
        b.note_placed(DeviceId(0));
        b.note_placed(DeviceId(1));
        // Device 2 idle → least loaded, regardless of the rr counter.
        for _ in 0..4 {
            assert_eq!(b.place(None), DeviceId(2));
        }
    }

    #[test]
    fn inflight_bytes_break_queue_ties() {
        let b = LoadBoard::new(2);
        b.note_placed(DeviceId(0));
        b.note_placed(DeviceId(1));
        b.note_started(DeviceId(0), 1 << 20);
        b.note_started(DeviceId(1), 4 << 20);
        assert_eq!(b.place(None), DeviceId(0));
        // Finishing the big job flips the order back to id tiebreak.
        b.note_finished(DeviceId(1), 4 << 20);
        b.note_placed(DeviceId(0)); // dev0: 2 queued, dev1: 0 queued
        assert_eq!(b.place(None), DeviceId(1));
    }

    #[test]
    fn finish_returns_board_to_idle_rotation() {
        let b = LoadBoard::new(2);
        b.note_placed(DeviceId(0));
        b.note_started(DeviceId(0), 64);
        b.note_finished(DeviceId(0), 64);
        let seq: Vec<usize> = (0..4).map(|_| b.place(None).0).collect();
        assert_eq!(seq, [0, 1, 0, 1]);
    }

    #[test]
    fn resident_bytes_break_remaining_ties() {
        let b = LoadBoard::new(2);
        b.note_placed(DeviceId(0));
        b.note_placed(DeviceId(1));
        b.add_resident(DeviceId(0), 4 << 20);
        b.add_resident(DeviceId(1), 1 << 20);
        assert_eq!(
            b.place(None),
            DeviceId(1),
            "equal load: emptier memory wins"
        );
        b.sub_resident(DeviceId(0), 4 << 20);
        assert_eq!(b.place(None), DeviceId(0), "tie falls through to id order");
        assert_eq!(b.resident_snapshot(), vec![0, 1 << 20]);
    }

    #[test]
    fn resident_bytes_do_not_defeat_idle_rotation() {
        let b = LoadBoard::new(2);
        b.add_resident(DeviceId(0), 1 << 20);
        // No queued jobs or in-flight bytes: the board still round-robins.
        let seq: Vec<usize> = (0..4).map(|_| b.place(None).0).collect();
        assert_eq!(seq, [0, 1, 0, 1]);
    }

    #[test]
    fn snapshot_reports_pairs() {
        let b = LoadBoard::new(2);
        b.note_placed(DeviceId(1));
        b.note_started(DeviceId(1), 123);
        assert_eq!(b.snapshot(), vec![(0, 0), (1, 123)]);
    }
}
