//! Bounded multi-tenant job queue with deficit-weighted fair dequeue.
//!
//! Every client session owns one FIFO *lane*; the queue dequeues across
//! lanes with **deficit round robin** (DRR): each visit credits a lane with
//! `QUANTUM × weight(priority)` bytes of deficit, and a lane may only send
//! a job whose cost fits its accumulated deficit. High-priority lanes earn
//! credit faster, but every lane earns *some* credit per round, so no
//! priority class can starve another — the fairness half of the service
//! layer's contract (the admission half lives in
//! [`super::admission`]).
//!
//! The queue is the **only** bounded stage: once a job is dequeued it flows
//! through placement and execution without further rejection, so
//! [`PushRejected`] at this boundary is the single admission decision a
//! client ever sees.

use crate::error::{GmacError, GmacResult};
use crate::session::{Session, SessionId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// DRR credit per lane visit, scaled by the lane's priority weight. Chosen
/// near the protocols' block granularity so one visit typically admits one
/// block-sized job.
pub const QUANTUM: u64 = 64 * 1024;

/// Per-session priority class carried by every job the session submits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background/batch traffic (weight 1).
    Low,
    /// Interactive default (weight 2).
    #[default]
    Normal,
    /// Latency-sensitive traffic (weight 4).
    High,
}

impl Priority {
    /// All classes, low to high.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// DRR weight: relative credit earned per round.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }

    /// Dense index for per-class accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Human-readable class label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The closure shape the service executes: a unit of work against a
/// (placed, device-pinned) session, returning an application result word —
/// workloads return their output digest.
pub type JobFn = Box<dyn FnOnce(&Session) -> GmacResult<u64> + Send + 'static>;

/// Monotonic job identity (per service instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

/// Bookkeeping attached to every queued job.
#[derive(Debug, Clone, Copy)]
pub struct JobMeta {
    /// Job identity.
    pub id: JobId,
    /// Submitting client session.
    pub session: SessionId,
    /// The session's priority class.
    pub priority: Priority,
    /// Byte-footprint hint (admission/fairness currency; clamped ≥ 1).
    pub cost: u64,
    /// Wall-clock submit instant (wait-time accounting).
    pub enqueued: Instant,
}

/// One job flowing through the queue → placer → worker pipeline.
pub(crate) struct QueuedJob {
    pub(crate) meta: JobMeta,
    pub(crate) run: JobFn,
    pub(crate) ticket: std::sync::Arc<super::TicketCell>,
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("meta", &self.meta)
            .finish()
    }
}

/// Why a push was refused (converted to [`GmacError::Admission`] by the
/// admission layer, which adds the retry-after hint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejected {
    /// The bounded queue is at capacity.
    Full {
        /// Jobs currently queued.
        queued: usize,
        /// Configured capacity ([`crate::GmacConfig::service_queue_depth`]).
        capacity: usize,
    },
    /// The service is shutting down.
    Closed,
}

/// One session's FIFO lane plus its DRR credit state.
#[derive(Debug, Default)]
struct Lane {
    jobs: VecDeque<QueuedJob>,
    /// Accumulated DRR credit (bytes): grows by `QUANTUM × weight` per ring
    /// visit, shrinks by each sent job's cost. Reset when the lane empties,
    /// so an idle session cannot bank credit.
    deficit: u64,
    weight: u64,
}

#[derive(Debug, Default)]
struct QueueState {
    lanes: HashMap<SessionId, Lane>,
    /// Active-lane ring: DRR visits lanes in this rotation.
    ring: VecDeque<SessionId>,
    len: usize,
    high_water: usize,
    closed: bool,
}

/// The bounded deficit-weighted fair queue between clients and the placer.
#[derive(Debug)]
pub(crate) struct FairQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    /// Signalled on push and on close.
    available: Condvar,
}

impl FairQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        FairQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
        }
    }

    /// Total capacity (jobs).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy snapshot).
    pub(crate) fn len(&self) -> usize {
        crate::gmac::lock(&self.state).len
    }

    /// Deepest the queue has been since creation.
    pub(crate) fn high_water(&self) -> usize {
        crate::gmac::lock(&self.state).high_water
    }

    /// Enqueues one job on its session's lane.
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), (QueuedJob, PushRejected)> {
        let mut st = crate::gmac::lock(&self.state);
        if st.closed {
            return Err((job, PushRejected::Closed));
        }
        if st.len >= self.capacity {
            return Err((
                job,
                PushRejected::Full {
                    queued: st.len,
                    capacity: self.capacity,
                },
            ));
        }
        let sid = job.meta.session;
        let weight = job.meta.priority.weight();
        let lane = st.lanes.entry(sid).or_default();
        lane.weight = weight;
        let was_empty = lane.jobs.is_empty();
        lane.jobs.push_back(job);
        if was_empty {
            st.ring.push_back(sid);
        }
        st.len += 1;
        st.high_water = st.high_water.max(st.len);
        drop(st);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next job in DRR order, blocking while the queue is empty
    /// and open. Returns `None` once the queue is closed **and** drained —
    /// pending work is always served, never dropped.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut st = crate::gmac::lock(&self.state);
        loop {
            if st.len == 0 {
                if st.closed {
                    return None;
                }
                st = self
                    .available
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // DRR scan: front lane sends if its credit covers its head job,
            // otherwise it earns one quantum and rotates to the back. Each
            // rotation strictly increases some lane's credit, so the scan
            // terminates (a lone expensive job accumulates credit across
            // rotations of a one-lane ring).
            loop {
                let sid = *st.ring.front().expect("non-empty queue has a ring");
                let lane = st.lanes.get_mut(&sid).expect("ring lane exists");
                if lane.jobs.is_empty() {
                    // Lane drained by a previous send: retire it (credit is
                    // not banked across idle periods).
                    st.lanes.remove(&sid);
                    st.ring.pop_front();
                    continue;
                }
                let cost = lane.jobs.front().expect("non-empty lane").meta.cost;
                if lane.deficit >= cost {
                    lane.deficit -= cost;
                    let job = lane.jobs.pop_front().expect("non-empty lane");
                    if lane.jobs.is_empty() {
                        st.lanes.remove(&sid);
                        st.ring.pop_front();
                    }
                    st.len -= 1;
                    return Some(job);
                }
                lane.deficit += QUANTUM * lane.weight;
                st.ring.rotate_left(1);
            }
        }
    }

    /// Closes the queue: further pushes fail with [`PushRejected::Closed`];
    /// `pop` drains the backlog and then returns `None`.
    pub(crate) fn close(&self) {
        crate::gmac::lock(&self.state).closed = true;
        self.available.notify_all();
    }
}

/// Maps a queue rejection to the public error, attaching the retry-after
/// hint computed by the admission layer.
pub(crate) fn rejection_to_error(rejected: PushRejected, retry_after: hetsim::Nanos) -> GmacError {
    let reason = match rejected {
        PushRejected::Full { queued, capacity } => {
            crate::error::AdmissionReason::QueueFull { queued, capacity }
        }
        PushRejected::Closed => crate::error::AdmissionReason::Shutdown,
    };
    GmacError::Admission {
        reason,
        retry_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(session: u64, priority: Priority, cost: u64, tag: u64) -> QueuedJob {
        QueuedJob {
            meta: JobMeta {
                id: JobId(tag),
                session: SessionId(session),
                priority,
                cost: cost.max(1),
                enqueued: Instant::now(),
            },
            run: Box::new(move |_s| Ok(tag)),
            ticket: Arc::new(super::super::TicketCell::default()),
        }
    }

    #[test]
    fn fifo_within_a_session() {
        let q = FairQueue::new(16);
        for i in 0..4 {
            q.push(job(1, Priority::Normal, 100, i)).unwrap();
        }
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().meta.id.0).collect();
        assert_eq!(order, [0, 1, 2, 3]);
    }

    #[test]
    fn bounded_and_rejects_when_full() {
        let q = FairQueue::new(2);
        q.push(job(1, Priority::Normal, 1, 0)).unwrap();
        q.push(job(1, Priority::Normal, 1, 1)).unwrap();
        let (_, why) = q.push(job(1, Priority::Normal, 1, 2)).unwrap_err();
        assert_eq!(
            why,
            PushRejected::Full {
                queued: 2,
                capacity: 2
            }
        );
        assert_eq!(q.high_water(), 2);
        // Draining one slot readmits.
        q.pop().unwrap();
        q.push(job(1, Priority::Normal, 1, 3)).unwrap();
    }

    #[test]
    fn drr_interleaves_equal_weight_sessions() {
        let q = FairQueue::new(64);
        // Session 1 floods first; session 2 arrives after.
        for i in 0..8 {
            q.push(job(1, Priority::Normal, QUANTUM, i)).unwrap();
        }
        for i in 0..8 {
            q.push(job(2, Priority::Normal, QUANTUM, 100 + i)).unwrap();
        }
        let order: Vec<u64> = (0..16).map(|_| q.pop().unwrap().meta.session.0).collect();
        // Equal weights and equal costs: strict alternation after the first
        // full round (no session gets two slots while the other waits).
        let ones = order.iter().take(8).filter(|&&s| s == 1).count();
        assert!(
            (3..=5).contains(&ones),
            "first 8 dequeues must be roughly half per session, got {order:?}"
        );
    }

    #[test]
    fn weights_bias_throughput_without_starvation() {
        let q = FairQueue::new(256);
        for i in 0..40 {
            q.push(job(1, Priority::High, QUANTUM, i)).unwrap();
            q.push(job(2, Priority::Low, QUANTUM, 1000 + i)).unwrap();
        }
        // Dequeue half the backlog: high earns 4× the credit of low, so it
        // should get ~4× the slots — but low must still progress.
        let first: Vec<u64> = (0..40).map(|_| q.pop().unwrap().meta.session.0).collect();
        let high = first.iter().filter(|&&s| s == 1).count();
        let low = first.len() - high;
        assert!(low > 0, "low-priority lane must not starve: {first:?}");
        assert!(
            high > low,
            "high-priority lane must get more slots: {high} vs {low}"
        );
    }

    #[test]
    fn expensive_job_accumulates_credit_and_dequeues() {
        let q = FairQueue::new(4);
        // Cost ≫ one quantum: the lone lane must accumulate across
        // rotations rather than deadlock.
        q.push(job(1, Priority::Low, 64 * QUANTUM, 7)).unwrap();
        assert_eq!(q.pop().unwrap().meta.id.0, 7);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = FairQueue::new(8);
        q.push(job(1, Priority::Normal, 1, 0)).unwrap();
        q.close();
        let (_, why) = q.push(job(1, Priority::Normal, 1, 1)).unwrap_err();
        assert_eq!(why, PushRejected::Closed);
        assert!(q.pop().is_some(), "backlog is served after close");
        assert!(q.pop().is_none(), "then the queue ends");
    }

    #[test]
    fn priority_metadata() {
        assert_eq!(Priority::ALL.len(), 3);
        assert_eq!(Priority::High.weight(), 4);
        assert_eq!(Priority::Low.index(), 0);
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
