//! Fairness accounting for the service layer.
//!
//! Every job is attributed to its session's priority class; the service
//! records served bytes, queue wait and execution time per class so
//! operators can *see* whether deficit-weighted dequeue is honouring the
//! weights (the per-class rows surface in [`crate::Report`]). All cells are
//! relaxed atomics — accounting never serializes the data path.

use super::queue::Priority;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accounting cells for one priority class.
#[derive(Debug, Default)]
struct ClassCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    served_bytes: AtomicU64,
    wait_ns: AtomicU64,
    run_ns: AtomicU64,
}

/// Live service accounting, shared between the service front-end, its
/// worker threads and the runtime report.
#[derive(Debug, Default)]
pub struct ServiceStats {
    classes: [ClassCells; 3],
}

impl ServiceStats {
    /// Records a job admitted to the queue.
    pub fn note_submitted(&self, class: Priority) {
        self.classes[class.index()]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job refused at admission.
    pub fn note_rejected(&self, class: Priority) {
        self.classes[class.index()]
            .rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed job: its byte footprint, queue wait and run time.
    pub fn note_completed(&self, class: Priority, bytes: u64, wait_ns: u64, run_ns: u64, ok: bool) {
        let c = &self.classes[class.index()];
        c.completed.fetch_add(1, Ordering::Relaxed);
        if !ok {
            c.failed.fetch_add(1, Ordering::Relaxed);
        }
        c.served_bytes.fetch_add(bytes, Ordering::Relaxed);
        c.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        c.run_ns.fetch_add(run_ns, Ordering::Relaxed);
    }

    /// Mean wall-clock execution time over all completed jobs (ns); 0 with
    /// no completions. Feeds the admission layer's retry-after estimate.
    pub fn avg_run_ns(&self) -> u64 {
        let (mut jobs, mut ns) = (0u64, 0u64);
        for c in &self.classes {
            jobs += c.completed.load(Ordering::Relaxed);
            ns += c.run_ns.load(Ordering::Relaxed);
        }
        ns.checked_div(jobs).unwrap_or(0)
    }

    /// Point-in-time copy for reports.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let class = |p: Priority| {
            let c = &self.classes[p.index()];
            ClassSnapshot {
                priority: p,
                submitted: c.submitted.load(Ordering::Relaxed),
                completed: c.completed.load(Ordering::Relaxed),
                rejected: c.rejected.load(Ordering::Relaxed),
                failed: c.failed.load(Ordering::Relaxed),
                served_bytes: c.served_bytes.load(Ordering::Relaxed),
                wait_ns: c.wait_ns.load(Ordering::Relaxed),
                run_ns: c.run_ns.load(Ordering::Relaxed),
            }
        };
        ServiceSnapshot {
            classes: [
                class(Priority::Low),
                class(Priority::Normal),
                class(Priority::High),
            ],
        }
    }
}

/// Frozen per-class accounting row.
#[derive(Debug, Clone, Copy)]
pub struct ClassSnapshot {
    /// The priority class this row describes.
    pub priority: Priority,
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs fully executed (including failed ones).
    pub completed: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
    /// Completed jobs whose closure returned an error.
    pub failed: u64,
    /// Sum of byte-footprint hints over completed jobs.
    pub served_bytes: u64,
    /// Total wall-clock queue wait (submit → execution start).
    pub wait_ns: u64,
    /// Total wall-clock execution time.
    pub run_ns: u64,
}

impl ClassSnapshot {
    /// Mean queue wait per completed job (ns).
    pub fn avg_wait_ns(&self) -> u64 {
        self.wait_ns.checked_div(self.completed).unwrap_or(0)
    }
}

/// Frozen accounting across all classes (low, normal, high order).
#[derive(Debug, Clone, Copy)]
pub struct ServiceSnapshot {
    /// Per-class rows, low to high.
    pub classes: [ClassSnapshot; 3],
}

impl ServiceSnapshot {
    /// Jobs admitted over all classes.
    pub fn submitted(&self) -> u64 {
        self.classes.iter().map(|c| c.submitted).sum()
    }

    /// Jobs completed over all classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Jobs rejected over all classes.
    pub fn rejected(&self) -> u64 {
        self.classes.iter().map(|c| c.rejected).sum()
    }

    /// Bytes served over all classes.
    pub fn served_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.served_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_lands_in_the_right_class() {
        let s = ServiceStats::default();
        s.note_submitted(Priority::High);
        s.note_submitted(Priority::Low);
        s.note_rejected(Priority::Low);
        s.note_completed(Priority::High, 4096, 1_000, 2_000, true);
        s.note_completed(Priority::High, 4096, 3_000, 4_000, false);
        let snap = s.snapshot();
        let high = snap.classes[Priority::High.index()];
        assert_eq!(high.submitted, 1);
        assert_eq!(high.completed, 2);
        assert_eq!(high.failed, 1);
        assert_eq!(high.served_bytes, 8192);
        assert_eq!(high.avg_wait_ns(), 2_000);
        let low = snap.classes[Priority::Low.index()];
        assert_eq!(low.rejected, 1);
        assert_eq!(low.completed, 0);
        assert_eq!(low.avg_wait_ns(), 0);
        assert_eq!(snap.submitted(), 2);
        assert_eq!(snap.completed(), 2);
        assert_eq!(snap.rejected(), 1);
        assert_eq!(snap.served_bytes(), 8192);
        assert_eq!(s.avg_run_ns(), 3_000);
    }
}
