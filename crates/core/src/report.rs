//! Runtime diagnostics: a structured snapshot of the runtime's state —
//! live objects, per-state block counts, traffic, fault counters, pending
//! calls and the execution-time break-down — renderable as text. The
//! `gmacProfile`-style observability a released runtime ships with.
//! Available from [`crate::Gmac::report`], [`crate::Session::report`] and
//! the deprecated `Context::report`.

use crate::gmac::Inner;
use crate::shard::lock_shard;
use crate::state::BlockState;
use hetsim::stats::fmt_bytes;
use hetsim::Category;
use std::fmt;

/// Snapshot of one live shared object.
#[derive(Debug, Clone)]
pub struct ObjectReport {
    /// Start of the object in the unified address space.
    pub addr: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Hosting accelerator.
    pub device: usize,
    /// Whether host and device share the numeric address.
    pub unified: bool,
    /// Block granularity.
    pub block_size: u64,
    /// Blocks per state: (invalid, read-only, dirty).
    pub blocks: (usize, usize, usize),
}

/// Per-device eviction activity (device memory as a cache — see
/// [`crate::evict`]). All zero on devices that never came under memory
/// pressure; the text rendering skips those rows entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvictionReport {
    /// Whole objects evicted from device memory back to host.
    pub evictions: u64,
    /// Bytes those evictions released.
    pub evicted_bytes: u64,
    /// Evicted objects re-homed on the device on next use.
    pub refetches: u64,
    /// Bytes of device memory re-allocated by those re-fetches.
    pub refetch_bytes: u64,
    /// Victim candidates spared: pinned by a pending call, or DMA-busy and
    /// not needed once quiescent candidates freed enough space.
    pub pin_saves: u64,
    /// Cold host images spilled to the disk tier under `host_capacity`.
    pub disk_spills: u64,
}

impl EvictionReport {
    fn any(&self) -> bool {
        self.evictions + self.refetches + self.pin_saves + self.disk_spills > 0
    }
}

/// Race-detector snapshot (see [`crate::race`]); present only with
/// [`crate::GmacConfig::race_check`] on.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// `true` = non-fatal sink mode ([`crate::GmacConfig::race_report`]):
    /// violations are recorded below instead of raised as errors.
    pub report_mode: bool,
    /// Accesses checked and violations observed.
    pub stats: crate::race::RaceStats,
    /// Violations sunk so far (always empty in error mode — they surface as
    /// [`crate::GmacError::RaceDetected`] instead).
    pub violations: Vec<crate::race::RaceViolation>,
}

/// Full runtime snapshot.
#[derive(Debug, Clone)]
pub struct Report {
    /// Protocol in use.
    pub protocol: crate::config::Protocol,
    /// Whether the runtime runs sharded per device (`false` = global-lock
    /// ablation mode).
    pub sharded: bool,
    /// Whether shared bytes live in a real mmap reservation (`false` =
    /// table-walk/frame-arena ablation backend). See
    /// [`crate::GmacConfig::mmap_backing`].
    pub mmap_backing: bool,
    /// True when `mmap_backing` was requested but the host reservation
    /// failed and the runtime fell back to the table-walk backend. Results
    /// are still byte-identical; only wall-clock speed is lost.
    pub backing_downgraded: bool,
    /// Live objects, in address order.
    pub objects: Vec<ObjectReport>,
    /// Total dirty blocks according to the protocol's own bookkeeping.
    pub dirty_blocks: usize,
    /// Devices with an accelerator call in flight, in id order.
    pub pending_devices: Vec<usize>,
    /// Event counters.
    pub counters: crate::runtime::Counters,
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// All host-to-device DMA jobs (planner-issued and direct copies alike;
    /// the coalescing ratio below divides blocks by planner jobs only).
    pub h2d_jobs: u64,
    /// All device-to-host DMA jobs.
    pub d2h_jobs: u64,
    /// Blocks per job host-to-device (the coalescing ratio; 0 with no jobs).
    pub h2d_coalescing: f64,
    /// Blocks per job device-to-host.
    pub d2h_coalescing: f64,
    /// Whether the background transfer engine is running (`false` = inline
    /// ablation mode; the engine fields below are then zero).
    pub async_dma: bool,
    /// H2D jobs queued on the engine but not yet landed in device memory.
    pub dma_in_flight: u64,
    /// Deepest any per-device engine queue has been since start-up.
    pub dma_queue_high_water: u64,
    /// Fairness accounting of the live [`crate::Service`] (per-priority
    /// served bytes, wait and run time); `None` when no service has been
    /// built or it has been dropped.
    pub service: Option<crate::service::ServiceSnapshot>,
    /// Live `(queued jobs, in-flight bytes)` per device from the service
    /// layer's [`crate::LoadBoard`] (all zero when no service is active).
    pub device_loads: Vec<(u64, u64)>,
    /// Eviction/re-fetch activity per device, in id order.
    pub eviction_by_device: Vec<EvictionReport>,
    /// Race-detector snapshot (`None` with [`crate::GmacConfig::race_check`]
    /// off).
    pub race: Option<RaceReport>,
    /// Software-TLB hit rate over all shards (0 with the fast path off or
    /// no accesses).
    pub tlb_hit_rate: f64,
    /// Shard object-memo hit rate (memo hits / all pointer→object
    /// resolutions).
    pub memo_hit_rate: f64,
    /// Total elapsed virtual time.
    pub elapsed: hetsim::Nanos,
    /// (category label, share of total time) pairs, non-zero only.
    pub breakdown: Vec<(&'static str, f64)>,
}

impl Inner {
    /// Takes a diagnostic snapshot of the runtime, visiting shards one at a
    /// time in device-id order (the standard multi-shard transaction — see
    /// [`crate::shard`]).
    pub(crate) fn report(&self) -> Report {
        let _g = self.gate();
        let mut objects: Vec<ObjectReport> = Vec::new();
        let mut dirty_blocks = 0usize;
        let mut pending_devices = Vec::new();
        let mut counters = crate::runtime::Counters::default();
        let mut mmap_backing = !self.shards.is_empty();
        let mut backing_downgraded = false;
        let mut eviction_by_device = Vec::with_capacity(self.shards.len());
        for (i, slot) in self.shards.iter().enumerate() {
            let shard = lock_shard(slot);
            mmap_backing &= shard.rt.mmap_active();
            backing_downgraded |= shard.rt.backing_downgraded();
            let c = shard.rt.counters();
            eviction_by_device.push(EvictionReport {
                evictions: c.evictions,
                evicted_bytes: c.evicted_bytes,
                refetches: c.refetches,
                refetch_bytes: c.refetch_bytes,
                pin_saves: c.pin_saves,
                disk_spills: c.disk_spills,
            });
            for o in shard.mgr.iter() {
                objects.push(ObjectReport {
                    addr: o.addr().0,
                    size: o.size(),
                    device: o.device().0,
                    unified: o.is_unified(),
                    block_size: o.block_size(),
                    blocks: (
                        o.count_in_state(BlockState::Invalid),
                        o.count_in_state(BlockState::ReadOnly),
                        o.count_in_state(BlockState::Dirty),
                    ),
                });
            }
            dirty_blocks += shard.dirty_block_count();
            if shard.pending.is_some() {
                pending_devices.push(i);
            }
            counters.merge(&shard.rt.counters());
        }
        objects.sort_by_key(|o| o.addr);
        let ledger = self.platform.ledger();
        let transfers = *self.platform.transfers();
        let total = ledger.total().as_nanos().max(1) as f64;
        let breakdown = Category::ALL
            .iter()
            .filter_map(|&c| {
                let ns = ledger.get(c).as_nanos();
                (ns > 0).then(|| (c.label(), ns as f64 / total))
            })
            .collect();
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let engine_stats = self.engine.as_deref().map(crate::xfer::DmaEngine::stats);
        Report {
            protocol: self.config().protocol,
            sharded: self.config().sharding,
            mmap_backing,
            backing_downgraded,
            async_dma: engine_stats.is_some(),
            dma_in_flight: engine_stats.map_or(0, |s| s.in_flight()),
            dma_queue_high_water: engine_stats.map_or(0, |s| s.depth_high_water),
            objects,
            dirty_blocks,
            pending_devices,
            service: self.service_snapshot(),
            device_loads: self.loads.snapshot(),
            eviction_by_device,
            race: self.race.as_ref().map(|r| RaceReport {
                report_mode: r.report_mode(),
                stats: r.stats(),
                violations: r.violations(),
            }),
            tlb_hit_rate: ratio(counters.tlb_hits, counters.tlb_hits + counters.tlb_misses),
            memo_hit_rate: ratio(
                counters.obj_memo_hits,
                counters.obj_memo_hits + counters.obj_lookups,
            ),
            counters,
            h2d_bytes: transfers.h2d_bytes,
            d2h_bytes: transfers.d2h_bytes,
            h2d_jobs: transfers.h2d_count,
            d2h_jobs: transfers.d2h_count,
            h2d_coalescing: transfers.coalescing_ratio(hetsim::Direction::HostToDevice),
            d2h_coalescing: transfers.coalescing_ratio(hetsim::Direction::DeviceToHost),
            elapsed: self.platform.elapsed(),
            breakdown,
        }
    }
}

impl crate::Gmac {
    /// Takes a diagnostic snapshot of the runtime.
    pub fn report(&self) -> Report {
        self.state().report()
    }
}

impl crate::Session {
    /// Takes a diagnostic snapshot of the shared runtime.
    pub fn report(&self) -> Report {
        self.state().report()
    }
}

#[allow(deprecated)]
impl crate::Context {
    /// Takes a diagnostic snapshot of the context.
    pub fn report(&self) -> Report {
        self.state_ref().report()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "GMAC runtime ({}) — {} elapsed{}",
            self.protocol,
            self.elapsed,
            if self.sharded { "" } else { "  [global-lock]" }
        )?;
        writeln!(
            f,
            "  backing: {}{}",
            if self.mmap_backing {
                "mmap (reserve/commit + mprotect)"
            } else {
                "table-walk (frame arena)"
            },
            if self.backing_downgraded {
                "  [downgraded: reservation failed]"
            } else {
                ""
            },
        )?;
        writeln!(
            f,
            "  objects: {}   dirty blocks: {}   faults: {} ({} rd / {} wr)",
            self.objects.len(),
            self.dirty_blocks,
            self.counters.faults(),
            self.counters.faults_read,
            self.counters.faults_write,
        )?;
        if !self.pending_devices.is_empty() {
            writeln!(
                f,
                "  in flight: {}",
                self.pending_devices
                    .iter()
                    .map(|d| format!("gpu{d}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        writeln!(
            f,
            "  traffic: {} H2D / {} D2H   blocks fetched: {}   flushed: {} ({} eager)",
            fmt_bytes(self.h2d_bytes),
            fmt_bytes(self.d2h_bytes),
            self.counters.blocks_fetched,
            self.counters.blocks_flushed,
            self.counters.eager_evictions,
        )?;
        writeln!(
            f,
            "  dma jobs: {} H2D (x{:.2} coalesced) / {} D2H (x{:.2} coalesced)",
            self.h2d_jobs, self.h2d_coalescing, self.d2h_jobs, self.d2h_coalescing,
        )?;
        for (i, e) in self.eviction_by_device.iter().enumerate() {
            if !e.any() {
                continue;
            }
            writeln!(
                f,
                "  evict gpu{i}: {} out ({})  {} re-fetched ({})  {} pinned saves  {} disk spills",
                e.evictions,
                fmt_bytes(e.evicted_bytes),
                e.refetches,
                fmt_bytes(e.refetch_bytes),
                e.pin_saves,
                e.disk_spills,
            )?;
        }
        if self.async_dma {
            writeln!(
                f,
                "  engine: {} in flight / queue high-water {}   join wait {:.3} ms ({} jobs overlapped)",
                self.dma_in_flight,
                self.dma_queue_high_water,
                self.counters.dma_wait_ns as f64 / 1e6,
                self.counters.jobs_overlapped,
            )?;
        } else {
            writeln!(f, "  engine: inline (async_dma off)")?;
        }
        if let Some(svc) = &self.service {
            writeln!(
                f,
                "  service: {} submitted / {} completed / {} rejected   served {}",
                svc.submitted(),
                svc.completed(),
                svc.rejected(),
                fmt_bytes(svc.served_bytes()),
            )?;
            for c in &svc.classes {
                if c.submitted + c.rejected == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "    {:<6} {} jobs ({} rejected, {} failed)  served {}  avg wait {:.3} ms",
                    c.priority.label(),
                    c.completed,
                    c.rejected,
                    c.failed,
                    fmt_bytes(c.served_bytes),
                    c.avg_wait_ns() as f64 / 1e6,
                )?;
            }
            let loaded: Vec<String> = self
                .device_loads
                .iter()
                .enumerate()
                .filter(|(_, &(q, b))| q > 0 || b > 0)
                .map(|(i, &(q, b))| format!("gpu{i}: {q} jobs/{}", fmt_bytes(b)))
                .collect();
            if !loaded.is_empty() {
                writeln!(f, "    loads: {}", loaded.join("  "))?;
            }
        }
        if let Some(race) = &self.race {
            writeln!(
                f,
                "  races: {} writes / {} launches checked   {} violation{} [{}]",
                race.stats.writes_checked,
                race.stats.launches_checked,
                race.stats.violations,
                if race.stats.violations == 1 { "" } else { "s" },
                if race.report_mode { "sink" } else { "error" },
            )?;
            for v in &race.violations {
                writeln!(f, "    {v}")?;
            }
        }
        writeln!(
            f,
            "  fast path: tlb {}/{} hit/miss ({:.1}%)   obj memo {} hits / {} walks ({:.1}%)",
            self.counters.tlb_hits,
            self.counters.tlb_misses,
            self.tlb_hit_rate * 100.0,
            self.counters.obj_memo_hits,
            self.counters.obj_lookups,
            self.memo_hit_rate * 100.0,
        )?;
        for o in &self.objects {
            writeln!(
                f,
                "  obj {:#x} +{:<10} gpu{} {}  blocks(inv/ro/dirty): {}/{}/{}",
                o.addr,
                fmt_bytes(o.size),
                o.device,
                if o.unified { "unified" } else { "mapped " },
                o.blocks.0,
                o.blocks.1,
                o.blocks.2,
            )?;
        }
        write!(f, "  time:")?;
        for (label, frac) in &self.breakdown {
            write!(f, " {label} {:.1}%", frac * 100.0)?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GmacConfig, Protocol};
    use crate::Gmac;
    use hetsim::Platform;

    fn gmac(cfg: GmacConfig) -> Gmac {
        Gmac::new(Platform::desktop_g280(), cfg)
    }

    #[test]
    fn report_reflects_runtime_state() {
        let g = gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096),
        );
        let s = g.session();
        let a = s.alloc(16 * 4096).unwrap();
        let _b = s.safe_alloc(4096).unwrap();
        s.store::<u32>(a, 7).unwrap();

        let r = g.report();
        assert_eq!(r.protocol, Protocol::Rolling);
        assert_eq!(r.objects.len(), 2);
        assert!(
            r.objects[0].unified != r.objects[1].unified,
            "exactly one of the two objects is unified"
        );
        assert_eq!(r.dirty_blocks, 1);
        assert_eq!(r.counters.faults_write, 1);
        assert!(r.pending_devices.is_empty());
        // One object has 16 blocks: 15 read-only + 1 dirty.
        let big = r.objects.iter().find(|o| o.size == 16 * 4096).unwrap();
        assert_eq!(big.blocks, (0, 15, 1));
        assert!(r.elapsed.as_nanos() > 0);

        let text = r.to_string();
        assert!(text.contains("GMAC runtime (GMAC Rolling)"));
        assert!(text.contains("backing:"));
        assert!(!r.backing_downgraded, "default reserve must succeed");
        if cfg!(target_os = "linux") {
            assert!(r.mmap_backing, "mmap backend is the default on Linux");
            assert!(text.contains("backing: mmap"));
        }
        assert!(text.contains("objects: 2"));
        assert!(text.contains("blocks(inv/ro/dirty): 0/15/1"));
        assert!(text.contains("dma jobs:"));
        assert!(text.contains("fast path: tlb"));
        // Session snapshot agrees with the runtime snapshot.
        assert_eq!(s.report().objects.len(), 2);
    }

    #[test]
    fn report_exposes_transfer_engine_metrics() {
        // Table-walk backend: the mmap backend serves slice stores as span
        // memcpys that never probe the software TLB (tlb_hits/misses are
        // wall-clock-only counters and legitimately stay 0 there).
        let g = gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096)
                .mmap_backing(false),
        );
        let s = g.session();
        let a = s.alloc(8 * 4096).unwrap();
        s.store_slice::<u8>(a, &vec![5u8; 8 * 4096]).unwrap();
        // Second resolution of the same object: served by the shard memo.
        s.store_slice::<u8>(a, &vec![5u8; 8 * 4096]).unwrap();
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, hetsim::DeviceId(0), None))
            .unwrap();
        let r = g.report();
        assert!(r.h2d_jobs > 0);
        assert!(
            r.h2d_coalescing >= 1.0,
            "adjacent dirty blocks coalesce: ratio {}",
            r.h2d_coalescing
        );
        assert_eq!(r.counters.bytes_flushed, r.h2d_bytes);
        assert!(
            r.counters.tlb_hits + r.counters.tlb_misses > 0,
            "accesses exercised the TLB"
        );
        assert!(r.tlb_hit_rate > 0.0, "slice stores hit the TLB");
        assert!(
            r.memo_hit_rate > 0.0,
            "repeated resolutions hit the shard memo"
        );
    }

    #[test]
    fn report_exposes_background_engine_state() {
        // Async on (the default): the engine section is present and the
        // queue high-water reflects the flush that just ran.
        let g = gmac(
            GmacConfig::default()
                .protocol(Protocol::Rolling)
                .block_size(4096),
        );
        let s = g.session();
        let a = s.alloc(8 * 4096).unwrap();
        s.store_slice::<u8>(a, &vec![9u8; 8 * 4096]).unwrap();
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, hetsim::DeviceId(0), None))
            .unwrap();
        let r = g.report();
        assert!(r.async_dma);
        assert!(r.dma_queue_high_water >= 1, "the flush queued jobs");
        assert!(r.to_string().contains("engine:"));

        // Ablation mode: no engine, inline marker instead of stats.
        let g2 = gmac(GmacConfig::default().async_dma(false));
        let r2 = g2.report();
        assert!(!r2.async_dma);
        assert_eq!(r2.dma_in_flight, 0);
        assert_eq!(r2.counters.dma_wait_ns, 0);
        assert!(r2.to_string().contains("inline (async_dma off)"));
    }

    #[test]
    fn report_shows_pending_devices() {
        let g = gmac(GmacConfig::default());
        g.with_platform(|p| p.register_kernel(std::sync::Arc::new(crate::testutil::NopKernel)));
        let s = g.session();
        s.call("nop", hetsim::LaunchDims::for_elements(1, 1), &[])
            .unwrap();
        let r = g.report();
        assert_eq!(r.pending_devices, vec![0]);
        assert!(r.to_string().contains("in flight: gpu0"));
        s.sync().unwrap();
        assert!(g.report().pending_devices.is_empty());
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let g = gmac(GmacConfig::default());
        let s = g.session();
        let p = s.alloc(4096).unwrap();
        s.store::<u8>(p, 1).unwrap();
        let r = g.report();
        let sum: f64 = r.breakdown.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }

    #[test]
    fn empty_runtime_report_is_wellformed() {
        let g = gmac(GmacConfig::default());
        let r = g.report();
        assert!(r.objects.is_empty());
        assert_eq!(r.dirty_blocks, 0);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn report_surfaces_service_fairness_accounting() {
        let g = gmac(GmacConfig::default());
        assert!(
            g.report().service.is_none(),
            "no service built yet: no section"
        );
        let svc = g.service();
        let t = svc
            .client(crate::Priority::High)
            .submit(2048, |s| {
                let b = s.alloc_typed::<u32>(64)?;
                b.write(0, 1)?;
                b.free()?;
                Ok(0)
            })
            .unwrap();
        t.wait().unwrap();
        let r = g.report();
        let snap = r.service.expect("live service appears in the report");
        assert_eq!(snap.completed(), 1);
        assert_eq!(snap.served_bytes(), 2048);
        assert_eq!(r.device_loads.len(), g.device_count());
        let text = r.to_string();
        assert!(text.contains("service: 1 submitted / 1 completed / 0 rejected"));
        assert!(text.contains("high"), "per-class row names the class");
        drop(svc);
        assert!(
            g.report().service.is_none(),
            "dropped service leaves no dangling section"
        );
    }

    #[test]
    fn eviction_rows_appear_only_under_pressure() {
        let g = gmac(GmacConfig::default().protocol(Protocol::Rolling));
        let s = g.session();
        let a = s.alloc(400 << 20).unwrap();
        let _b = s.alloc(400 << 20).unwrap();
        assert!(
            !g.report().to_string().contains("evict gpu"),
            "no pressure yet: eviction rows stay hidden"
        );
        let _d = s.alloc(400 << 20).unwrap(); // forces one eviction
        let r = g.report();
        let e = r.eviction_by_device[0];
        assert_eq!(e.evictions, 1);
        assert!(e.evicted_bytes >= 400 << 20);
        assert!(r.to_string().contains("evict gpu0: 1 out"));
        // A device-side op on the victim re-homes it (evicting another
        // object to make room) and the row reflects that too.
        s.memset(a, 0, 4096).unwrap();
        let r = g.report();
        assert_eq!(r.eviction_by_device[0].refetches, 1);
        assert!(r.to_string().contains("1 re-fetched"));
    }

    #[test]
    fn race_section_appears_only_with_the_detector_on() {
        let g = gmac(GmacConfig::default());
        assert!(g.report().race.is_none());
        assert!(!g.report().to_string().contains("races:"));

        let g = gmac(GmacConfig::default().race_check(true).race_report(true));
        let s = g.session();
        let p = s.alloc(4096).unwrap();
        s.store::<u32>(p, 1).unwrap();
        let r = g.report();
        let race = r.race.as_ref().expect("detector on: section present");
        assert!(race.report_mode);
        assert!(race.stats.writes_checked >= 1);
        assert_eq!(race.stats.violations, 0);
        let text = r.to_string();
        assert!(text.contains("races:"));
        assert!(text.contains("[sink]"));
    }

    #[test]
    fn report_names_the_table_walk_ablation_backend() {
        let g = gmac(GmacConfig::default().mmap_backing(false));
        let r = g.report();
        assert!(!r.mmap_backing);
        assert!(!r.backing_downgraded, "opting out is not a downgrade");
        assert!(r.to_string().contains("backing: table-walk"));
    }
}
