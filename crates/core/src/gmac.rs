//! The process-wide GMAC runtime.
//!
//! [`Gmac`] owns the simulated platform, the software MMU, the shared-object
//! manager and the coherence protocol behind one interior lock. Host threads
//! never touch it directly for data access: they create cheap per-thread
//! [`Session`] handles via [`Gmac::session`] /
//! [`Gmac::session_on`], and each session carries its own scheduler affinity
//! and pending-call identity. Kernel calls are tracked **per device** (a
//! `DeviceId -> PendingCall` map instead of the old single global slot), so
//! sessions driving different accelerators each hold an un-synced call at
//! the same time and join independently at their `sync`/`adsmCall`
//! boundaries through the existing DMA-join machinery.

use crate::config::{AalLayer, GmacConfig};
use crate::error::{GmacError, GmacResult};
use crate::manager::Manager;
use crate::object::SharedObject;
use crate::protocol::{make, CoherenceProtocol};
use crate::ptr::{Param, SharedPtr};
use crate::runtime::{Counters, Runtime};
use crate::sched::{SchedPolicy, Scheduler};
use crate::session::{Session, SessionId, SessionView};
use crate::state::BlockState;
use hetsim::{
    Category, DevAddr, DeviceId, KernelArg, LaunchDims, Platform, StreamId, TimeLedger,
    TransferLedger,
};
use softmmu::{AccessKind, MmuError, Scalar, VAddr};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// An outstanding accelerator call awaiting a `sync`.
#[derive(Debug, Clone)]
pub(crate) struct PendingCall {
    /// Session that issued the call (only it may sync or stack more calls).
    pub(crate) session: SessionId,
    /// Stream the kernel was launched on.
    pub(crate) stream: StreamId,
    /// Start addresses of the shared objects the call references; `free` on
    /// any of them fails with [`GmacError::ObjectInUse`] until the sync.
    pub(crate) objects: Vec<VAddr>,
}

/// The shared runtime state behind the [`Gmac`] lock: everything the old
/// monolithic `Context` owned, plus the per-device pending-call map.
#[derive(Debug)]
pub(crate) struct State {
    pub(crate) rt: Runtime,
    pub(crate) mgr: Manager,
    pub(crate) protocol: Box<dyn CoherenceProtocol>,
    pub(crate) scheduler: Scheduler,
    /// In-flight accelerator calls, one at most per device.
    pub(crate) pending: BTreeMap<DeviceId, PendingCall>,
    cuda_initialized: bool,
    next_session: u64,
}

impl State {
    pub(crate) fn new(platform: Platform, config: GmacConfig) -> Self {
        let device_count = platform.device_count();
        let protocol = make(config.protocol);
        let mgr = Manager::new(config.lookup);
        State {
            rt: Runtime::new(platform, config),
            mgr,
            protocol,
            scheduler: Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), device_count),
            pending: BTreeMap::new(),
            cuda_initialized: false,
            next_session: 0,
        }
    }

    /// Allocates the next session identity.
    pub(crate) fn next_session_id(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        id
    }

    fn ensure_cuda_init(&mut self) {
        if !self.cuda_initialized {
            self.cuda_initialized = true;
            if self.rt.config.aal == AalLayer::Runtime {
                // The CUDA run-time layer pays a one-time context
                // initialisation; the driver layer lets us "discard CUDA
                // initialization time" (paper §5).
                let cost = self.rt.config.costs.cuda_init;
                self.rt.charge(Category::CudaMalloc, cost);
            }
        }
    }

    // ----- allocation (Table 1) --------------------------------------------

    /// `adsmAlloc(size)`: session affinity overrides the scheduler's
    /// placement policy.
    pub(crate) fn alloc(&mut self, view: SessionView, size: u64) -> GmacResult<SharedPtr> {
        let dev = view
            .affinity
            .unwrap_or_else(|| self.scheduler.device_for_alloc());
        self.alloc_on(dev, size)
    }

    pub(crate) fn alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        // Validate the device before any charge: a bogus id (an unchecked
        // session affinity) must not desync the time ledger.
        self.rt.platform.device(dev)?;
        self.ensure_cuda_init();
        let alloc_base = self.rt.config.costs.alloc_base;
        self.rt.charge(Category::Malloc, alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        // 1. Accelerator memory first (its allocator dictates the address).
        let dev_addr = self.rt.platform.dev_alloc(dev, size)?;
        // 2. Mirror the same numeric range in system memory — the paper's
        //    fixed-address mmap trick (§4.2).
        let addr = VAddr(dev_addr.0);
        let initial = self.protocol.initial_state();
        let region = match self.rt.vm.map_fixed(addr, size, initial.protection()) {
            Ok(region) => region,
            Err(MmuError::Overlap { .. }) => {
                self.rt.platform.dev_free(dev, dev_addr)?;
                return Err(GmacError::AddressCollision(addr));
            }
            Err(e) => return Err(e.into()),
        };
        self.finish_alloc(dev, dev_addr, addr, size, region, initial)
    }

    pub(crate) fn safe_alloc(&mut self, view: SessionView, size: u64) -> GmacResult<SharedPtr> {
        let dev = view
            .affinity
            .unwrap_or_else(|| self.scheduler.device_for_alloc());
        self.safe_alloc_on(dev, size)
    }

    pub(crate) fn safe_alloc_on(&mut self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        self.rt.platform.device(dev)?;
        self.ensure_cuda_init();
        let alloc_base = self.rt.config.costs.alloc_base;
        self.rt.charge(Category::Malloc, alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        let dev_addr = self.rt.platform.dev_alloc(dev, size)?;
        let initial = self.protocol.initial_state();
        let (region, addr) = self.rt.vm.map_anywhere(size, initial.protection())?;
        self.finish_alloc(dev, dev_addr, addr, size, region, initial)
    }

    fn finish_alloc(
        &mut self,
        dev: DeviceId,
        dev_addr: DevAddr,
        addr: VAddr,
        size: u64,
        region: softmmu::RegionId,
        initial: BlockState,
    ) -> GmacResult<SharedPtr> {
        let block_size = self.protocol.block_size_for(&self.rt.config, size);
        let id = self.mgr.next_id();
        let obj = SharedObject::new(id, addr, size, dev, dev_addr, region, block_size, initial);
        self.mgr.insert(obj);
        self.protocol.on_alloc(&mut self.rt, &mut self.mgr, addr)?;
        Ok(SharedPtr::new(addr))
    }

    /// `adsmFree(addr)`.
    ///
    /// Failure paths charge **nothing**: the old code charged the free cost
    /// before looking the object up, so a failed free silently desynced the
    /// time ledger. Objects referenced by a still-pending call are rejected
    /// with [`GmacError::ObjectInUse`] instead of being torn down under the
    /// kernel.
    pub(crate) fn free(&mut self, ptr: SharedPtr) -> GmacResult<()> {
        let addr = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?
            .addr();
        for (&dev, call) in &self.pending {
            if call.objects.contains(&addr) {
                return Err(GmacError::ObjectInUse { addr, dev });
            }
        }
        let free_base = self.rt.config.costs.free_base;
        self.rt.charge(Category::Free, free_base);
        let obj = self.mgr.remove(addr).expect("object found above");
        self.protocol.on_free(&mut self.rt, &obj)?;
        self.rt.vm.unmap_region(obj.region())?;
        self.rt.platform.dev_free(obj.device(), obj.dev_addr())?;
        Ok(())
    }

    /// [`Self::free`] gated on allocation identity: frees only if the
    /// object at `ptr` is still the allocation `id` names. RAII handles
    /// ([`crate::Shared`]) use this so that a manually-freed-and-reused
    /// address (the device allocator is first-fit) cannot make a late drop
    /// tear down a stranger's object.
    pub(crate) fn free_exact(&mut self, ptr: SharedPtr, id: crate::ObjectId) -> GmacResult<()> {
        match self.mgr.find(ptr.addr()) {
            Some(obj) if obj.id() == id => self.free(ptr),
            _ => Err(GmacError::NotShared(ptr.addr())),
        }
    }

    // ----- kernel execution (Table 1) --------------------------------------

    /// `adsmCall(kernel)` with the §4.3 write-set annotation.
    pub(crate) fn call_annotated(
        &mut self,
        view: SessionView,
        kernel: &str,
        dims: LaunchDims,
        params: &[Param],
        writes: Option<&[SharedPtr]>,
    ) -> GmacResult<()> {
        self.ensure_cuda_init();
        // Resolve the target accelerator from the parameter objects.
        let mut dev: Option<DeviceId> = None;
        let mut objects = Vec::new();
        let mut args = Vec::with_capacity(params.len());
        for param in params {
            match param {
                Param::Shared(ptr) => {
                    let obj = self
                        .mgr
                        .find(ptr.addr())
                        .ok_or(GmacError::NotShared(ptr.addr()))?;
                    match dev {
                        None => dev = Some(obj.device()),
                        Some(d) if d == obj.device() => {}
                        Some(_) => return Err(GmacError::MixedDevices),
                    }
                    objects.push(obj.addr());
                    args.push(KernelArg::Ptr(obj.translate(ptr.addr())));
                }
                scalar => args.push(scalar.to_scalar_arg().expect("scalar param")),
            }
        }
        let dev = dev
            .or(view.affinity)
            .unwrap_or_else(|| self.scheduler.default_device());

        // Validate device and kernel before any charge or release: a failed
        // call must neither desync the time ledger nor half-run the release
        // side of the consistency protocol.
        self.rt.platform.device(dev)?;
        self.rt.platform.kernel(kernel)?;

        // One un-synced call per accelerator: a different session's call in
        // flight on this device is a hard error, not an implicit join.
        if let Some(call) = self.pending.get(&dev) {
            if call.session != view.id {
                return Err(GmacError::DeviceBusy {
                    dev,
                    owner: call.session,
                });
            }
        }

        // Release-consistency: the CPU releases shared objects at the call
        // boundary (§3.3).
        let call_cost = self.rt.config.costs.call_per_object * self.mgr.len() as u64;
        self.rt.charge(Category::Launch, call_cost);
        let writes: Option<Vec<VAddr>> = writes.map(|ptrs| {
            ptrs.iter()
                .filter_map(|p| self.mgr.find(p.addr()).map(|o| o.addr()))
                .collect()
        });
        self.protocol
            .release(&mut self.rt, &mut self.mgr, dev, writes.as_deref())?;
        // Explicit join point: eager evictions and the release flush run as
        // asynchronous DMA jobs; the kernel must not start until the device
        // holds every byte the CPU wrote.
        self.rt.join_dma(dev)?;

        let stream = StreamId(0);
        self.rt.platform.launch(dev, stream, kernel, dims, &args)?;
        // Same-session back-to-back calls on one device stack on the stream
        // (it serialises them); the pending entry accumulates the union of
        // referenced objects so `free` stays guarded for all of them.
        let entry = self.pending.entry(dev).or_insert(PendingCall {
            session: view.id,
            stream,
            objects: Vec::new(),
        });
        for addr in objects {
            if !entry.objects.contains(&addr) {
                entry.objects.push(addr);
            }
        }
        Ok(())
    }

    /// `adsmSync()`: joins every call in flight that belongs to `view`'s
    /// session, acquiring the shared objects of each device back for the
    /// CPU.
    pub(crate) fn sync(&mut self, view: SessionView) -> GmacResult<()> {
        let devices: Vec<DeviceId> = self
            .pending
            .iter()
            .filter(|(_, call)| call.session == view.id)
            .map(|(&dev, _)| dev)
            .collect();
        if devices.is_empty() {
            return Err(GmacError::NothingToSync);
        }
        for dev in devices {
            self.sync_one(dev)?;
        }
        Ok(())
    }

    /// Joins the pending call on a single device (session-checked).
    pub(crate) fn sync_device(&mut self, view: SessionView, dev: DeviceId) -> GmacResult<()> {
        match self.pending.get(&dev) {
            Some(call) if call.session == view.id => self.sync_one(dev),
            _ => Err(GmacError::NothingToSync),
        }
    }

    fn sync_one(&mut self, dev: DeviceId) -> GmacResult<()> {
        let call = self.pending.remove(&dev).ok_or(GmacError::NothingToSync)?;
        let sync_base = self.rt.config.costs.sync_base;
        self.rt.charge(Category::Sync, sync_base);
        self.rt.platform.sync_stream(dev, call.stream)?;
        self.protocol.acquire(&mut self.rt, &mut self.mgr, dev)?;
        Ok(())
    }

    /// `adsmSafe(address)`.
    pub(crate) fn translate(&self, ptr: SharedPtr) -> GmacResult<DevAddr> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        Ok(obj.translate(ptr.addr()))
    }

    // ----- transparent CPU access -------------------------------------------

    pub(crate) fn load<T: Scalar>(&mut self, ptr: SharedPtr) -> GmacResult<T> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Read)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.load::<T>(ptr.addr())?)
    }

    pub(crate) fn store<T: Scalar>(&mut self, ptr: SharedPtr, value: T) -> GmacResult<()> {
        self.access_checked(ptr, T::SIZE as u64, AccessKind::Write)?;
        self.rt.platform.cpu_touch(T::SIZE as u64);
        Ok(self.rt.vm.store(ptr.addr(), value)?)
    }

    pub(crate) fn load_slice<T: Scalar>(&mut self, ptr: SharedPtr, n: usize) -> GmacResult<Vec<T>> {
        let bytes = self.shared_read(ptr, n as u64 * T::SIZE as u64)?;
        Ok(softmmu::from_bytes(&bytes))
    }

    pub(crate) fn store_slice<T: Scalar>(
        &mut self,
        ptr: SharedPtr,
        values: &[T],
    ) -> GmacResult<()> {
        self.shared_write(ptr, &softmmu::to_bytes(values))
    }

    /// Single checked access with the fault-retry loop (the paper's signal
    /// handler protocol, §4.3).
    fn access_checked(&mut self, ptr: SharedPtr, len: u64, kind: AccessKind) -> GmacResult<()> {
        // One fault can occur per block the access spans; anything beyond
        // that means the protocol failed to make progress.
        let mut budget = 4 + len / softmmu::PAGE_SIZE;
        loop {
            match self.rt.vm.check(ptr.addr(), len, kind) {
                Ok(()) => return Ok(()),
                Err(MmuError::Fault(fault)) => {
                    if budget == 0 {
                        return Err(GmacError::UnresolvedFault(fault.to_string()));
                    }
                    budget -= 1;
                    self.handle_fault(fault.addr, kind)?;
                }
                Err(MmuError::Unmapped(a)) => return Err(GmacError::NotShared(a)),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The "signal handler": charge delivery + lookup, then let the protocol
    /// resolve the faulting block.
    fn handle_fault(&mut self, fault_addr: VAddr, kind: AccessKind) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(fault_addr)
            .ok_or(GmacError::NotShared(fault_addr))?;
        let start = obj.addr();
        let offset = fault_addr - start;
        let steps = self.mgr.lookup_steps();
        self.rt.charge_signal(steps, kind == AccessKind::Write);
        match kind {
            AccessKind::Read => {
                self.protocol
                    .prepare_read(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
            AccessKind::Write => {
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, offset, 1)
            }
        }
    }

    /// Shared read used by slice loads, bulk ops and I/O: pay one fault per
    /// touched block that is not readable, resolve the whole range through
    /// the protocol in a single batched call (runs of adjacent invalid
    /// blocks coalesce into single DMA jobs), then copy.
    pub(crate) fn shared_read(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        self.resolve_read_range(ptr, len)?;
        self.read_resolved(ptr, len)
    }

    /// Copies `[ptr, ptr+len)` out of system memory, assuming the caller
    /// already made the range readable via [`Self::resolve_read_range`]
    /// (the I/O interposition resolves a whole operation's extent once,
    /// then drains it chunk by chunk through this).
    pub(crate) fn read_resolved(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<Vec<u8>> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        let mut out = vec![0u8; len as usize];
        self.rt.vm.read_raw(start + base_offset, &mut out)?;
        // The application's own CPU time to traverse the range.
        self.rt.platform.cpu_touch(len);
        Ok(out)
    }

    /// Makes `[ptr, ptr+len)` CPU-readable: charges one fault-equivalent per
    /// invalid block the range touches (an element loop would fault on the
    /// first touch of each), then lets the protocol fetch them all in one
    /// planned, coalesced batch.
    pub(crate) fn resolve_read_range(&mut self, ptr: SharedPtr, len: u64) -> GmacResult<()> {
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let invalid = obj
            .blocks_overlapping(base_offset, len)
            .filter(|&idx| obj.block(idx).state == BlockState::Invalid)
            .count();
        if invalid > 0 {
            let steps = self.mgr.lookup_steps();
            for _ in 0..invalid {
                self.rt.charge_signal(steps, false);
            }
            self.protocol
                .prepare_read(&mut self.rt, &mut self.mgr, start, base_offset, len)?;
        }
        Ok(())
    }

    /// Block-chunked shared write used by slice stores, bulk ops and I/O:
    /// per touched block, pay one fault if the block is not writable,
    /// prepare it, then immediately land the bytes (required ordering — see
    /// [`CoherenceProtocol::prepare_write`]).
    pub(crate) fn shared_write(&mut self, ptr: SharedPtr, bytes: &[u8]) -> GmacResult<()> {
        let len = bytes.len() as u64;
        let obj = self
            .mgr
            .find(ptr.addr())
            .ok_or(GmacError::NotShared(ptr.addr()))?;
        let start = obj.addr();
        let base_offset = ptr.addr() - start;
        Runtime::check_bounds(obj, base_offset, len)?;
        let blocks = obj.blocks_overlapping(base_offset, len);
        for idx in blocks {
            let obj = self.mgr.find(start).expect("object lives across loop");
            let block = *obj.block(idx);
            let lo = block.offset.max(base_offset);
            let hi = (block.offset + block.len).min(base_offset + len);
            if block.state != BlockState::Dirty {
                let steps = self.mgr.lookup_steps();
                self.rt.charge_signal(steps, true);
                self.protocol
                    .prepare_write(&mut self.rt, &mut self.mgr, start, lo, hi - lo)?;
            }
            let src = &bytes[(lo - base_offset) as usize..(hi - base_offset) as usize];
            self.rt.vm.write_raw(start + lo, src)?;
            // The application's own CPU time to produce/copy the chunk.
            self.rt.platform.cpu_touch(hi - lo);
        }
        Ok(())
    }

    // ----- introspection ----------------------------------------------------

    pub(crate) fn counters(&self) -> Counters {
        self.rt.counters()
    }

    pub(crate) fn config(&self) -> &GmacConfig {
        self.rt.config()
    }

    pub(crate) fn object_count(&self) -> usize {
        self.mgr.len()
    }

    pub(crate) fn object_at(&self, ptr: SharedPtr) -> Option<&SharedObject> {
        self.mgr.find(ptr.addr())
    }

    pub(crate) fn object_addrs(&self) -> Vec<VAddr> {
        self.mgr.addrs()
    }

    pub(crate) fn dirty_block_count(&self) -> usize {
        self.protocol.dirty_blocks(&self.mgr)
    }

    /// True when `view`'s session has at least one call in flight.
    pub(crate) fn has_pending_call(&self, view: SessionView) -> bool {
        self.pending.values().any(|c| c.session == view.id)
    }

    /// Devices with any call in flight, in id order.
    pub(crate) fn pending_devices(&self) -> Vec<DeviceId> {
        self.pending.keys().copied().collect()
    }
}

/// Lock helper: a poisoned lock (a panicking test thread) still yields the
/// state — the simulator has no invariants that a panic can half-apply
/// worse than losing the whole process.
pub(crate) fn lock(inner: &Mutex<State>) -> MutexGuard<'_, State> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide GMAC runtime: one shared logical address space between
/// the host CPU and all accelerators of a platform, shareable across host
/// threads.
///
/// `Gmac` is the owner; threads interact through per-thread
/// [`Session`] handles. All interior state (platform clock, software MMU,
/// object registry, coherence protocol, per-device pending calls) lives
/// behind one lock, so `Gmac` is `Send + Sync` and cloning it is cheap
/// (reference-counted).
///
/// ```
/// use gmac::{Gmac, GmacConfig, Protocol};
/// use hetsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gmac = Gmac::new(
///     Platform::desktop_g280(),
///     GmacConfig::default().protocol(Protocol::Rolling),
/// );
/// let session = gmac.session();
/// let v = session.alloc_typed::<f32>(1024)?; // one pointer, CPU *and* GPU
/// v.write(0, 42.0)?;
/// assert_eq!(v.read(0)?, 42.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gmac {
    inner: Arc<Mutex<State>>,
}

impl Gmac {
    /// Creates the runtime over a simulated platform.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        Gmac {
            inner: Arc::new(Mutex::new(State::new(platform, config))),
        }
    }

    /// Re-wraps shared state (the [`Session::gmac`] accessor).
    pub(crate) fn from_state(inner: Arc<Mutex<State>>) -> Self {
        Gmac { inner }
    }

    /// Opens a new session with no device affinity: allocations follow the
    /// scheduler policy, kernels follow their data.
    pub fn session(&self) -> Session {
        self.session_with(None)
    }

    /// Opens a session pinned to accelerator `dev`: its allocations land on
    /// `dev` and data-free kernels default to it. The paper's "execution
    /// thread attached to an accelerator" view (§3.2).
    pub fn session_on(&self, dev: DeviceId) -> Session {
        self.session_with(Some(dev))
    }

    fn session_with(&self, affinity: Option<DeviceId>) -> Session {
        let id = lock(&self.inner).next_session_id();
        Session::new(Arc::clone(&self.inner), SessionView { id, affinity })
    }

    /// Runs `f` over the simulated platform (kernel registration, file
    /// setup, clock queries) under the runtime lock.
    ///
    /// The runtime lock is **held for the duration of `f` and is not
    /// reentrant**: calling any `Gmac`/`Session`/`Shared` method (including
    /// dropping a `Shared<T>` buffer) inside the closure deadlocks.
    pub fn with_platform<R>(&self, f: impl FnOnce(&mut Platform) -> R) -> R {
        f(lock(&self.inner).rt.platform_mut())
    }

    /// Execution-time ledger snapshot (Figure 10 categories).
    pub fn ledger(&self) -> TimeLedger {
        lock(&self.inner).rt.platform().ledger().clone()
    }

    /// Transfer-ledger snapshot (Figure 8 input).
    pub fn transfers(&self) -> TransferLedger {
        *lock(&self.inner).rt.platform().transfers()
    }

    /// Runtime event counters (faults, fetches, evictions).
    pub fn counters(&self) -> Counters {
        lock(&self.inner).counters()
    }

    /// Active configuration (clone).
    pub fn config(&self) -> GmacConfig {
        lock(&self.inner).config().clone()
    }

    /// Virtual time elapsed since platform start.
    pub fn elapsed(&self) -> hetsim::Nanos {
        lock(&self.inner).rt.platform().elapsed()
    }

    /// Number of live shared objects.
    pub fn object_count(&self) -> usize {
        lock(&self.inner).object_count()
    }

    /// Number of accelerators on the platform.
    pub fn device_count(&self) -> usize {
        lock(&self.inner).scheduler.device_count()
    }

    /// Number of blocks currently dirty, per the protocol's bookkeeping.
    pub fn dirty_block_count(&self) -> usize {
        lock(&self.inner).dirty_block_count()
    }

    /// Devices with a call in flight (any session), in id order.
    pub fn pending_devices(&self) -> Vec<DeviceId> {
        lock(&self.inner).pending_devices()
    }

    /// Changes the allocation-placement policy for sessions without
    /// affinity.
    pub fn set_sched_policy(&self, policy: SchedPolicy) {
        lock(&self.inner).scheduler.set_policy(policy);
    }

    /// Consumes the runtime, returning the platform for final measurements.
    ///
    /// Fails (returns `self`) while other handles — clones, sessions or
    /// typed buffers — are still alive.
    pub fn try_into_platform(self) -> Result<Platform, Gmac> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .rt
                .platform),
            Err(inner) => Err(Gmac { inner }),
        }
    }

    /// [`Self::try_into_platform`], panicking variant.
    ///
    /// # Panics
    /// Panics when sessions, typed buffers or clones of the runtime are
    /// still alive.
    pub fn into_platform(self) -> Platform {
        self.try_into_platform()
            .map_err(|_| "Gmac::into_platform with live sessions/buffers/clones")
            .unwrap()
    }

    pub(crate) fn state(&self) -> &Arc<Mutex<State>> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn gmac() -> Gmac {
        Gmac::new(Platform::desktop_g280(), GmacConfig::default())
    }

    #[test]
    fn runtime_and_session_are_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Gmac>();
        assert_send_sync::<Session>();
        assert_send::<crate::typed::Shared<f32>>();
    }

    #[test]
    fn sessions_get_distinct_ids() {
        let g = gmac();
        let a = g.session();
        let b = g.session_on(DeviceId(0));
        assert_ne!(a.id(), b.id());
        assert_eq!(b.affinity(), Some(DeviceId(0)));
        assert_eq!(a.affinity(), None);
    }

    #[test]
    fn into_platform_requires_unique_handle() {
        let g = gmac();
        let s = g.session();
        let g = g.try_into_platform().expect_err("session still alive");
        drop(s);
        let p = g.try_into_platform().expect("now unique");
        assert_eq!(p.device_count(), 1);
    }

    #[test]
    fn clone_shares_state() {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default().protocol(Protocol::Lazy),
        );
        let g2 = g.clone();
        let s = g.session();
        let p = s.alloc(4096).unwrap();
        assert_eq!(g2.object_count(), 1);
        s.free(p).unwrap();
        assert_eq!(g2.object_count(), 0);
    }

    #[test]
    fn threads_share_the_runtime() {
        let g = gmac();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = g.session();
                std::thread::spawn(move || {
                    let p = s.alloc(8192).unwrap();
                    s.store::<u32>(p, 7).unwrap();
                    assert_eq!(s.load::<u32>(p).unwrap(), 7);
                    s.free(p).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.object_count(), 0);
    }
}
