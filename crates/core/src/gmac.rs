//! The process-wide GMAC runtime.
//!
//! [`Gmac`] owns the simulated platform, the software MMU, the shared-object
//! registry and the coherence machinery. Host threads never touch it
//! directly for data access: they create cheap per-thread
//! [`Session`] handles via [`Gmac::session`] / [`Gmac::session_on`], and each
//! session carries its own scheduler affinity and pending-call identity.
//!
//! # Sharded locking (this runtime's concurrency model)
//!
//! Since the shard redesign the runtime no longer funnels every operation
//! through one `Mutex<State>`. Its state is split into independently
//! lockable pieces:
//!
//! * a read-mostly registry (`RwLock`) mapping host address ranges to their
//!   home accelerator — the only cross-device structure on the
//!   translate/load/store paths;
//! * one [`DeviceShard`] mutex **per
//!   accelerator**, owning that device's objects (with their block states),
//!   host MMU regions, protocol instance, pending call, DMA queue and
//!   counters;
//! * a small control mutex for the allocation scheduler;
//! * the thread-safe [`Platform`] underneath (per-device mutexes + lock-free
//!   clock).
//!
//! Lock order: registry → (one) shard → DMA-engine queues → platform
//! leaves; shard locks never nest (see [`crate::shard`] for the full
//! invariant). Cross-device operations (`memcpy` between objects homed on
//! different accelerators, `sync` over all devices) are multi-shard
//! transactions acquiring shards one at a time in device-id order. The
//! background [`crate::xfer::DmaEngine`] (with [`GmacConfig::async_dma`] on)
//! sits between the shard tier and the platform leaves: shards submit and
//! join under their own lock, while engine workers take only queue mutexes
//! and one device mutex — never a shard.
//!
//! [`GmacConfig::sharding`]`(false)` restores the previous global-lock mode
//! for ablation: every public operation additionally serialises on one
//! process-wide mutex, running the *same* code paths, so results are
//! byte-identical between modes — only wall-clock concurrency differs (see
//! the `contention` benchmark).

use crate::config::{AalLayer, GmacConfig};
use crate::error::{GmacError, GmacResult};
use crate::fasttime;
use crate::fastview::ObjFastView;
use crate::object::ObjectId;
use crate::ptr::{Param, SharedPtr};
use crate::race::RaceDetector;
use crate::registry::Registry;
use crate::runtime::Counters;
use crate::sched::{SchedPolicy, Scheduler};
use crate::session::{Session, SessionId, SessionView};
use crate::shard::{lock_shard, DeviceShard, ShardGuard};
use crate::xfer::DmaEngine;
use hetsim::{
    Category, DevAddr, DeviceId, KernelArg, LaunchDims, Platform, StreamId, TimeLedger,
    TransferLedger,
};
use softmmu::VAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Mutable cross-device odds and ends: the allocation scheduler and the
/// one-time CUDA-context flag.
#[derive(Debug)]
pub(crate) struct Control {
    pub(crate) scheduler: Scheduler,
    cuda_initialized: bool,
}

/// Lock helper: a poisoned lock (a panicking test thread) still yields the
/// state — the simulator has no invariants that a panic can half-apply
/// worse than losing the whole process.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One memoized route: `[start, end)` of a claim, its home device, and the
/// registry epoch it was read at.
#[derive(Debug, Clone, Copy)]
struct RouteMemo {
    epoch: u64,
    start: VAddr,
    end: u64,
    dev: DeviceId,
}

/// A per-handle route memo ([`Session`], [`crate::Shared`] and the
/// deprecated `Context` each own one): caches the last `addr → (object
/// start, home device)` resolution so tight access loops skip the registry
/// `RwLock` and its B-tree walk entirely.
///
/// Implemented as a **seqlock** (version counter + plain atomic fields)
/// rather than a mutex: the hit path is a handful of relaxed loads with no
/// read-side RMW, and since each handle is effectively thread-private the
/// writer never contends. A torn read (odd or changed version) simply
/// reports a miss.
///
/// # Epoch invariant
///
/// The memo is keyed on [`Inner::route_epoch`], which every registry
/// **release** bumps (claims are disjoint from all live claims and cannot
/// stale a memo); a memo from an older epoch never hits. Even the benign race — epoch read just before a concurrent
/// free's bump — cannot produce wrong data: the shard's manager re-validates
/// the pointer under its own lock, so a stale route surfaces as
/// [`GmacError::NotShared`], exactly what an un-memoized racing access could
/// observe. Disabled (always-miss) when [`GmacConfig::tlb`] is off.
#[derive(Debug, Default)]
pub(crate) struct RouteCache {
    /// Seqlock version: odd while a store is in flight, bumped twice per
    /// store. Zero means "never filled".
    seq: AtomicU64,
    epoch: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    dev: AtomicU64,
}

impl RouteCache {
    fn lookup(&self, epoch: u64, addr: VAddr) -> Option<(VAddr, DeviceId)> {
        let seq = self.seq.load(Ordering::Acquire);
        if seq == 0 || seq & 1 == 1 {
            return None;
        }
        let (m_epoch, start, end, dev) = (
            self.epoch.load(Ordering::Relaxed),
            self.start.load(Ordering::Relaxed),
            self.end.load(Ordering::Relaxed),
            self.dev.load(Ordering::Relaxed),
        );
        // Seqlock read-side validation: the fields are only coherent if no
        // store intervened.
        std::sync::atomic::fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != seq {
            return None;
        }
        (m_epoch == epoch && addr.0 >= start && addr.0 < end)
            .then_some((VAddr(start), DeviceId(dev as usize)))
    }

    fn store(&self, memo: RouteMemo) {
        // Writer-side lock: claim the odd version via CAS. Sessions are
        // `Sync`, so two threads may race to fill one handle's memo —
        // losing the race just skips this fill (the cache is advisory).
        let seq = self.seq.load(Ordering::Relaxed);
        if seq & 1 == 1
            || self
                .seq
                .compare_exchange(seq, seq | 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        self.epoch.store(memo.epoch, Ordering::Relaxed);
        self.start.store(memo.start.0, Ordering::Relaxed);
        self.end.store(memo.end, Ordering::Relaxed);
        self.dev.store(memo.dev.0 as u64, Ordering::Relaxed);
        self.seq.store((seq | 1).wrapping_add(1), Ordering::Release);
    }
}

/// The shared runtime state behind [`Gmac`]: registry + per-device shards +
/// control, replacing the old monolithic `State` behind one mutex.
#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) platform: Arc<Platform>,
    pub(crate) config: GmacConfig,
    pub(crate) registry: RwLock<Registry>,
    pub(crate) shards: Vec<Mutex<DeviceShard>>,
    /// Background DMA engine shared by every shard (`None` with
    /// [`GmacConfig::async_dma`] off). Dropped after the shards in
    /// [`Self::into_platform`] so worker threads release their platform
    /// handles before the unwrap.
    pub(crate) engine: Option<Arc<DmaEngine>>,
    pub(crate) control: Mutex<Control>,
    /// `Some` in global-lock ablation mode ([`GmacConfig::sharding`] off):
    /// held across every public operation, recreating the old
    /// one-`Mutex<State>` serialization on top of the same code paths.
    serial: Option<Mutex<()>>,
    /// Live `(queued jobs, in-flight bytes)` per device, maintained by the
    /// service layer and consulted by [`SchedPolicy::LeastLoaded`]
    /// placement. Plain relaxed atomics — load tracking never serializes
    /// the data path.
    pub(crate) loads: Arc<crate::service::LoadBoard>,
    /// Fairness accounting of the most recently built [`crate::Service`]
    /// (weak: the service owns it; [`crate::Report`] borrows a snapshot).
    service_stats: Mutex<std::sync::Weak<crate::service::ServiceStats>>,
    /// Coherence race detector (`None` with [`GmacConfig::race_check`] off —
    /// the default — so race-free production runs pay nothing). Shared with
    /// every shard; see [`crate::race`] for the clock model.
    pub(crate) race: Option<Arc<RaceDetector>>,
    /// Bumped by every registry release (claims are disjoint and cannot
    /// stale a memo); route memos from older epochs never hit (see
    /// [`RouteCache`]).
    route_epoch: AtomicU64,
    next_session: AtomicU64,
    next_object: AtomicU64,
}

impl Inner {
    pub(crate) fn new(platform: Platform, config: GmacConfig) -> Self {
        let platform = Arc::new(platform);
        let device_count = platform.device_count();
        let engine = config
            .async_dma
            .then(|| Arc::new(DmaEngine::new(Arc::clone(&platform))));
        let loads = Arc::new(crate::service::LoadBoard::new(device_count));
        let race = config
            .race_check
            .then(|| Arc::new(RaceDetector::new(config.race_report, device_count)));
        let shards = (0..device_count)
            .map(|i| {
                Mutex::new(DeviceShard::new(
                    DeviceId(i),
                    Arc::clone(&platform),
                    &config,
                    engine.clone(),
                    Arc::clone(&loads),
                    race.clone(),
                ))
            })
            .collect();
        let serial = (!config.sharding).then(|| Mutex::new(()));
        Inner {
            platform,
            registry: RwLock::new(Registry::new()),
            shards,
            engine,
            control: Mutex::new(Control {
                scheduler: Scheduler::new(SchedPolicy::Fixed(DeviceId(0)), device_count),
                cuda_initialized: false,
            }),
            serial,
            loads,
            race,
            service_stats: Mutex::new(std::sync::Weak::new()),
            route_epoch: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            next_object: AtomicU64::new(1),
            config,
        }
    }

    /// Points the report at the service's fairness accounting (called when
    /// a [`crate::Service`] is built; the latest service wins).
    pub(crate) fn register_service_stats(&self, stats: &Arc<crate::service::ServiceStats>) {
        *lock(&self.service_stats) = Arc::downgrade(stats);
    }

    /// Fairness-accounting snapshot of the live service, if one exists.
    pub(crate) fn service_snapshot(&self) -> Option<crate::service::ServiceSnapshot> {
        lock(&self.service_stats).upgrade().map(|s| s.snapshot())
    }

    /// Serial gate: a no-op in sharded mode, the big lock in ablation mode.
    /// Public operations take it exactly once at their entry point — which
    /// makes it the natural settle point for this thread's deferred
    /// fast-path time (see [`crate::fasttime`]): the balance is flushed
    /// before the operation can read or advance the clock.
    pub(crate) fn gate(&self) -> Option<MutexGuard<'_, ()>> {
        fasttime::flush(&self.platform);
        self.serial.as_ref().map(lock)
    }

    /// Allocates the next session identity.
    pub(crate) fn next_session_id(&self) -> SessionId {
        SessionId(self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    fn next_object_id(&self) -> ObjectId {
        ObjectId(self.next_object.fetch_add(1, Ordering::Relaxed))
    }

    // ----- routing (registry read path) -------------------------------------

    /// Home device + object start for a shared pointer.
    fn route(&self, addr: VAddr) -> GmacResult<(VAddr, DeviceId)> {
        self.registry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .route(addr)
            .ok_or(GmacError::NotShared(addr))
    }

    /// Memoized route: epoch-validated memo hit, or registry search + memo
    /// fill. Falls back to the plain registry path with the fast path
    /// disabled ([`GmacConfig::tlb`] off).
    fn route_cached(&self, cache: &RouteCache, addr: VAddr) -> GmacResult<(VAddr, DeviceId)> {
        if !self.config.tlb {
            return self.route(addr);
        }
        let epoch = self.route_epoch.load(Ordering::Acquire);
        if let Some(hit) = cache.lookup(epoch, addr) {
            return Ok(hit);
        }
        let (start, end, dev) = self
            .registry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .route_full(addr)
            .ok_or(GmacError::NotShared(addr))?;
        cache.store(RouteMemo {
            epoch,
            start,
            end,
            dev,
        });
        Ok((start, dev))
    }

    /// Epoch-bump half of the route-memo invariant: every **release** in
    /// the registry must be followed by one of these before the mutating
    /// operation returns. Claims need no bump — a new claim is disjoint
    /// from all existing ones, so it cannot be covered by any live memo.
    fn bump_route_epoch(&self) {
        self.route_epoch.fetch_add(1, Ordering::Release);
    }

    /// Locks the shard of `dev` (which must be a valid device id). Goes
    /// through [`lock_shard`] so the per-thread held count backing the DMA
    /// worker's lock-order assertion stays accurate.
    pub(crate) fn shard(&self, dev: DeviceId) -> ShardGuard<'_> {
        lock_shard(&self.shards[dev.0])
    }

    fn ensure_cuda_init(&self) {
        let mut control = lock(&self.control);
        if !control.cuda_initialized {
            control.cuda_initialized = true;
            if self.config.aal == AalLayer::Runtime {
                // The CUDA run-time layer pays a one-time context
                // initialisation; the driver layer lets us "discard CUDA
                // initialization time" (paper §5).
                self.platform
                    .spend(Category::CudaMalloc, self.config.costs.cuda_init);
            }
        }
    }

    // ----- allocation (Table 1) --------------------------------------------

    /// Placement for a new allocation: session affinity overrides the
    /// scheduler's policy; otherwise the scheduler decides, with the live
    /// per-device loads in hand (only [`SchedPolicy::LeastLoaded`] reads
    /// them).
    fn place_alloc(&self, view: SessionView) -> DeviceId {
        view.affinity.unwrap_or_else(|| {
            let mut control = lock(&self.control);
            if control.scheduler.policy() == SchedPolicy::LeastLoaded {
                let loads = self.loads.snapshot();
                control.scheduler.device_for_alloc_loaded(&loads)
            } else {
                control.scheduler.device_for_alloc()
            }
        })
    }

    /// `adsmAlloc(size)`: session affinity overrides the scheduler's
    /// placement policy.
    pub(crate) fn alloc(&self, view: SessionView, size: u64) -> GmacResult<SharedPtr> {
        let _g = self.gate();
        let dev = self.place_alloc(view);
        self.alloc_on_impl(dev, size, false).map(|(ptr, ..)| ptr)
    }

    pub(crate) fn alloc_on(&self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        let _g = self.gate();
        self.alloc_on_impl(dev, size, false).map(|(ptr, ..)| ptr)
    }

    /// Typed-allocation entry: like [`Self::alloc`] but also returns the
    /// allocation identity the RAII handle gates its free on, plus the
    /// object's zero-instrumentation fast view when one exists (embedded in
    /// the typed handle so its accesses can skip the runtime entirely).
    pub(crate) fn alloc_typed_raw(
        &self,
        view: SessionView,
        size: u64,
        safe: bool,
    ) -> GmacResult<(SharedPtr, ObjectId, Option<Arc<ObjFastView>>)> {
        let _g = self.gate();
        let dev = self.place_alloc(view);
        if safe {
            self.safe_alloc_on_impl(dev, size, true)
        } else {
            self.alloc_on_impl(dev, size, true)
        }
    }

    fn alloc_on_impl(
        &self,
        dev: DeviceId,
        size: u64,
        want_fast: bool,
    ) -> GmacResult<(SharedPtr, ObjectId, Option<Arc<ObjFastView>>)> {
        // Validate the device before any charge: a bogus id (an unchecked
        // session affinity) must not desync the time ledger.
        self.platform.device(dev)?;
        self.ensure_cuda_init();
        self.platform
            .spend(Category::Malloc, self.config.costs.alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        // 1. Accelerator memory first (its allocator dictates the address).
        //    The shard treats device memory as a cache: under pressure it
        //    evicts cold objects instead of failing (the shard guard is a
        //    temporary, dropped before the registry write below — no
        //    gmac-level locks nest).
        let dev_addr = self.shard(dev).alloc_device_range(size, &[])?;
        // 2. Mirror the same numeric range in system memory — the paper's
        //    fixed-address mmap trick (§4.2). The registry is the global
        //    arbiter of host ranges (per-shard MMUs only see their own).
        let addr = VAddr(dev_addr.0);
        let claimed = self
            .registry
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .claim_fixed(addr, size, dev);
        if !claimed {
            // Eviction recycles device windows whose former owner still
            // claims the matching host range (the claim outlives the device
            // copy). That is not a user-visible collision: fall back to a
            // non-unified claim, exactly like `safe_alloc`. Genuine
            // cross-device collisions keep surfacing `AddressCollision`.
            if self.shard(dev).evicted_overlaps(addr, size) {
                let anywhere = self
                    .registry
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .claim_anywhere(size, dev);
                if let Some(addr) = anywhere {
                    return self.install(dev, dev_addr, addr, size, want_fast);
                }
            }
            self.platform.dev_free(dev, dev_addr)?;
            return Err(GmacError::AddressCollision(addr));
        }
        // No epoch bump: the new claim is disjoint from every existing one
        // (the registry is the collision arbiter), so no live route memo can
        // cover any of its addresses — existing memos stay valid.
        self.install(dev, dev_addr, addr, size, want_fast)
    }

    pub(crate) fn safe_alloc(&self, view: SessionView, size: u64) -> GmacResult<SharedPtr> {
        let _g = self.gate();
        let dev = self.place_alloc(view);
        self.safe_alloc_on_impl(dev, size, false)
            .map(|(ptr, ..)| ptr)
    }

    pub(crate) fn safe_alloc_on(&self, dev: DeviceId, size: u64) -> GmacResult<SharedPtr> {
        let _g = self.gate();
        self.safe_alloc_on_impl(dev, size, false)
            .map(|(ptr, ..)| ptr)
    }

    fn safe_alloc_on_impl(
        &self,
        dev: DeviceId,
        size: u64,
        want_fast: bool,
    ) -> GmacResult<(SharedPtr, ObjectId, Option<Arc<ObjFastView>>)> {
        self.platform.device(dev)?;
        self.ensure_cuda_init();
        self.platform
            .spend(Category::Malloc, self.config.costs.alloc_base);
        let size = VAddr(size.max(1)).page_up().0;
        let dev_addr = self.shard(dev).alloc_device_range(size, &[])?;
        let addr = self
            .registry
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .claim_anywhere(size, dev)
            .ok_or(GmacError::Mmu(softmmu::MmuError::OutOfVirtualSpace))?;
        // No epoch bump: fresh claims cannot invalidate existing memos (see
        // alloc_on_impl).
        self.install(dev, dev_addr, addr, size, want_fast)
    }

    fn install(
        &self,
        dev: DeviceId,
        dev_addr: DevAddr,
        addr: VAddr,
        size: u64,
        want_fast: bool,
    ) -> GmacResult<(SharedPtr, ObjectId, Option<Arc<ObjFastView>>)> {
        let id = self.next_object_id();
        let (ptr, fast) = self
            .shard(dev)
            .install_object(id, dev_addr, addr, size, want_fast)?;
        Ok((ptr, id, fast))
    }

    /// `adsmFree(addr)` (with optional allocation-identity gate for the
    /// RAII [`crate::Shared`] path).
    pub(crate) fn free(&self, ptr: SharedPtr) -> GmacResult<()> {
        let _g = self.gate();
        self.free_impl(ptr, None)
    }

    pub(crate) fn free_exact(&self, ptr: SharedPtr, id: ObjectId) -> GmacResult<()> {
        let _g = self.gate();
        self.free_impl(ptr, Some(id))
    }

    fn free_impl(&self, ptr: SharedPtr, id: Option<ObjectId>) -> GmacResult<()> {
        let (_, dev) = self.route(ptr.addr())?;
        let (start, dev_addr) = self.shard(dev).free_locked(ptr, id)?;
        // Release the host claim *before* returning the device range to its
        // first-fit allocator: a concurrent alloc that is handed the same
        // device address must find the claim gone, not collide with it.
        self.registry
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .release(start);
        self.bump_route_epoch();
        // Evicted objects own no device range; there is nothing to return.
        if let Some(dev_addr) = dev_addr {
            self.platform.dev_free(dev, dev_addr)?;
        }
        Ok(())
    }

    // ----- kernel execution (Table 1) --------------------------------------

    /// `adsmCall(kernel)` with the §4.3 write-set annotation.
    pub(crate) fn call_annotated(
        &self,
        view: SessionView,
        kernel: &str,
        dims: LaunchDims,
        params: &[Param],
        writes: Option<&[SharedPtr]>,
    ) -> GmacResult<()> {
        let _g = self.gate();
        self.ensure_cuda_init();
        // Resolve the target accelerator from the parameter objects (the
        // registry routes each shared pointer to its home device).
        let mut dev: Option<DeviceId> = None;
        {
            let reg = self
                .registry
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for param in params {
                if let Param::Shared(ptr) = param {
                    let (_, d) = reg
                        .route(ptr.addr())
                        .ok_or(GmacError::NotShared(ptr.addr()))?;
                    match dev {
                        None => dev = Some(d),
                        Some(prev) if prev == d => {}
                        Some(_) => return Err(GmacError::MixedDevices),
                    }
                }
            }
        }
        let dev = dev
            .or(view.affinity)
            .unwrap_or_else(|| lock(&self.control).scheduler.default_device());

        // Validate device and kernel before any charge or release: a failed
        // call must neither desync the time ledger nor half-run the release
        // side of the consistency protocol.
        self.platform.device(dev)?;
        self.platform.kernel(kernel)?;

        let mut shard = self.shard(dev);

        // One un-synced call per accelerator: a different session's call in
        // flight on this device is a hard error, not an implicit join.
        if let Some(call) = &shard.pending {
            if call.session != view.id {
                return Err(GmacError::DeviceBusy {
                    dev,
                    owner: call.session,
                    // Deterministic drain estimate: the owner's sync pays at
                    // least the fixed sync bookkeeping before the device
                    // frees up. Floored so a config with zero sync cost
                    // never hands out a "retry immediately" hint.
                    retry_after: self.config.costs.sync_base.max(hetsim::Nanos::from_nanos(
                        crate::service::admission::MIN_JOB_DRAIN_NS,
                    )),
                });
            }
        }

        // Build the argument list (device-address translation) under the
        // shard lock; a pointer freed since routing surfaces as NotShared.
        // Evicted parameter objects are re-homed first — already-processed
        // parameters are pinned so a later re-fetch cannot evict them out
        // from under the very call being assembled.
        let mut objects = Vec::new();
        let mut args = Vec::with_capacity(params.len());
        for param in params {
            match param {
                Param::Shared(ptr) => {
                    shard.ensure_resident(ptr.addr(), &objects)?;
                    let obj = shard
                        .mgr
                        .find(ptr.addr())
                        .ok_or(GmacError::NotShared(ptr.addr()))?;
                    objects.push(obj.addr());
                    args.push(KernelArg::Ptr(obj.translate(ptr.addr())));
                }
                scalar => args.push(scalar.to_scalar_arg().expect("scalar param")),
            }
        }

        // Race check before any charge or release: a launch over another
        // session's unsynced CPU writes must fail (or be sunk) with the time
        // ledger untouched, like every other failed-call path above.
        shard.race_check_launch(view.id, &objects)?;

        // Release-consistency: the CPU releases shared objects at the call
        // boundary (§3.3). The scan cost covers this shard's objects — the
        // other accelerators' shards are untouched (and unlocked).
        let call_cost = self.config.costs.call_per_object * shard.mgr.len() as u64;
        shard.rt.charge(Category::Launch, call_cost);
        let writes: Option<Vec<VAddr>> = writes.map(|ptrs| {
            ptrs.iter()
                .filter_map(|p| shard.mgr.find(p.addr()).map(|o| o.addr()))
                .collect()
        });
        {
            let DeviceShard {
                rt, mgr, protocol, ..
            } = &mut *shard;
            protocol.release(rt, mgr, dev, writes.as_deref())?;
        }
        // Explicit join point: eager evictions and the release flush run as
        // asynchronous DMA jobs; the kernel must not start until the device
        // holds every byte the CPU wrote.
        shard.rt.join_dma(dev)?;

        let stream = StreamId(0);
        shard.rt.platform.launch(dev, stream, kernel, dims, &args)?;
        // Only the detector needs the object list past this point; skip the
        // clone entirely when it is off.
        let raced = self.race.is_some().then(|| objects.clone());
        shard.note_pending(view, stream, objects);
        if let Some(objects) = raced {
            shard.race_note_launched(view.id, &objects);
        }
        Ok(())
    }

    /// `adsmSync()`: joins every call in flight that belongs to `view`'s
    /// session. A multi-shard transaction: shards are visited one at a time
    /// in device-id order, never holding two at once.
    pub(crate) fn sync(&self, view: SessionView) -> GmacResult<()> {
        let _g = self.gate();
        let mut synced_any = false;
        for slot in &self.shards {
            let mut shard = lock_shard(slot);
            if shard
                .pending
                .as_ref()
                .is_some_and(|call| call.session == view.id)
            {
                shard.sync_one()?;
                synced_any = true;
            }
        }
        if synced_any {
            Ok(())
        } else {
            Err(GmacError::NothingToSync)
        }
    }

    /// Joins the pending call on a single device (session-checked).
    pub(crate) fn sync_device(&self, view: SessionView, dev: DeviceId) -> GmacResult<()> {
        let _g = self.gate();
        let Some(slot) = self.shards.get(dev.0) else {
            return Err(GmacError::NothingToSync);
        };
        let mut shard = lock_shard(slot);
        match &shard.pending {
            Some(call) if call.session == view.id => shard.sync_one(),
            _ => Err(GmacError::NothingToSync),
        }
    }

    /// `adsmSafe(address)`.
    pub(crate) fn translate(&self, cache: &RouteCache, ptr: SharedPtr) -> GmacResult<DevAddr> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).translate(ptr)
    }

    // ----- transparent CPU access -------------------------------------------

    pub(crate) fn load<T: softmmu::Scalar>(
        &self,
        cache: &RouteCache,
        ptr: SharedPtr,
    ) -> GmacResult<T> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).load(ptr)
    }

    pub(crate) fn store<T: softmmu::Scalar>(
        &self,
        cache: &RouteCache,
        ptr: SharedPtr,
        value: T,
    ) -> GmacResult<()> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).store(ptr, value)
    }

    pub(crate) fn load_slice<T: softmmu::Scalar>(
        &self,
        cache: &RouteCache,
        ptr: SharedPtr,
        n: usize,
    ) -> GmacResult<Vec<T>> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).load_slice(ptr, n)
    }

    pub(crate) fn store_slice<T: softmmu::Scalar>(
        &self,
        cache: &RouteCache,
        ptr: SharedPtr,
        values: &[T],
    ) -> GmacResult<()> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).store_slice(ptr, values)
    }

    // ----- bulk-memory interposition (§4.4) ---------------------------------

    pub(crate) fn memset(
        &self,
        cache: &RouteCache,
        ptr: SharedPtr,
        value: u8,
        len: u64,
    ) -> GmacResult<()> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev).memset_locked(ptr, value, len)
    }

    pub(crate) fn memcpy_in(
        &self,
        cache: &RouteCache,
        dst: SharedPtr,
        src: &[u8],
    ) -> GmacResult<()> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, dst.addr())?;
        self.shard(dev).shared_write(dst, src)
    }

    pub(crate) fn memcpy_out(
        &self,
        cache: &RouteCache,
        dst: &mut [u8],
        src: SharedPtr,
    ) -> GmacResult<()> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, src.addr())?;
        let bytes = self.shard(dev).shared_read(src, dst.len() as u64)?;
        dst.copy_from_slice(&bytes);
        Ok(())
    }

    /// Interposed shared-to-shared `memcpy`. When source and destination are
    /// homed on different accelerators this is a **multi-shard
    /// transaction**: the source shard is locked, read and released before
    /// the destination shard is taken (never nested), staging through a
    /// host buffer exactly like the paper's implementation stages peer
    /// transfers through system memory.
    pub(crate) fn memcpy(
        &self,
        cache: &RouteCache,
        dst: SharedPtr,
        src: SharedPtr,
        len: u64,
    ) -> GmacResult<()> {
        let _g = self.gate();
        // Only the source goes through the one-entry memo: routing both
        // operands of a two-object copy loop through it would evict each
        // other every call (0% hit rate); this way the memo stays pinned on
        // `src` and the destination pays the plain registry route it always
        // did.
        let (_, src_dev) = self.route_cached(cache, src.addr())?;
        let (_, dst_dev) = self.route(dst.addr())?;
        if src_dev == dst_dev {
            let mut shard = self.shard(src_dev);
            let bytes = shard.shared_read(src, len)?;
            shard.shared_write(dst, &bytes)
        } else {
            let bytes = self.shard(src_dev).shared_read(src, len)?;
            self.shard(dst_dev).shared_write(dst, &bytes)
        }
    }

    // ----- I/O interposition (§4.4) -----------------------------------------

    pub(crate) fn read_file_to_shared(
        &self,
        cache: &RouteCache,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev)
            .read_file_to_shared_locked(name, file_offset, ptr, len)
    }

    pub(crate) fn write_shared_to_file(
        &self,
        cache: &RouteCache,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        let _g = self.gate();
        let (_, dev) = self.route_cached(cache, ptr.addr())?;
        self.shard(dev)
            .write_shared_to_file_locked(name, file_offset, ptr, len)
    }

    // ----- introspection ----------------------------------------------------

    /// Tags the calling thread with `view`'s session identity for race
    /// attribution (a no-op with the detector off). Called by every
    /// [`Session`] entry point that can write shared data or launch/join a
    /// kernel, so `Shared<T>` handles used on the same thread inherit the
    /// right writer identity (see [`crate::race`]).
    pub(crate) fn note_identity(&self, view: SessionView) {
        if self.race.is_some() {
            crate::race::set_current_session(view.id);
        }
    }

    /// Race-detector counters ([`RaceStats::default`] with the detector
    /// off).
    pub(crate) fn race_stats(&self) -> crate::race::RaceStats {
        self.race.as_ref().map(|r| r.stats()).unwrap_or_default()
    }

    /// Violations sunk so far ([`GmacConfig::race_report`] mode; empty in
    /// error mode or with the detector off).
    pub(crate) fn race_violations(&self) -> Vec<crate::race::RaceViolation> {
        self.race
            .as_ref()
            .map(|r| r.violations())
            .unwrap_or_default()
    }

    pub(crate) fn counters(&self) -> Counters {
        let _g = self.gate();
        let mut total = Counters::default();
        for slot in &self.shards {
            total.merge(&lock_shard(slot).rt.counters());
        }
        total
    }

    pub(crate) fn config(&self) -> &GmacConfig {
        &self.config
    }

    pub(crate) fn object_count(&self) -> usize {
        self.registry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    pub(crate) fn object_at(&self, ptr: SharedPtr) -> Option<crate::object::SharedObject> {
        let _g = self.gate();
        let (_, dev) = self.route(ptr.addr()).ok()?;
        self.shard(dev).mgr.find(ptr.addr()).cloned()
    }

    pub(crate) fn object_addrs(&self) -> Vec<VAddr> {
        self.registry
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .addrs()
    }

    pub(crate) fn dirty_block_count(&self) -> usize {
        let _g = self.gate();
        self.shards
            .iter()
            .map(|slot| lock_shard(slot).dirty_block_count())
            .sum()
    }

    /// True when `view`'s session has at least one call in flight.
    pub(crate) fn has_pending_call(&self, view: SessionView) -> bool {
        let _g = self.gate();
        self.shards.iter().any(|slot| {
            lock_shard(slot)
                .pending
                .as_ref()
                .is_some_and(|c| c.session == view.id)
        })
    }

    /// Devices with any call in flight, in id order.
    pub(crate) fn pending_devices(&self) -> Vec<DeviceId> {
        let _g = self.gate();
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, slot)| lock_shard(slot).pending.is_some())
            .map(|(i, _)| DeviceId(i))
            .collect()
    }

    pub(crate) fn device_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn set_sched_policy(&self, policy: SchedPolicy) {
        let _g = self.gate();
        lock(&self.control).scheduler.set_policy(policy);
    }

    /// Tears the runtime down to the bare platform (final measurements).
    /// Caller must own the only handle.
    pub(crate) fn into_platform(self) -> Platform {
        // The caller is about to measure: settle this thread's deferred
        // fast-path time (other threads settled at their last gate or exit).
        fasttime::flush(&self.platform);
        let Inner {
            platform,
            shards,
            engine,
            ..
        } = self;
        drop(shards); // each shard's runtime holds a platform handle
                      // Last engine handle: dropping it drains the queues and joins the
                      // worker threads, releasing their platform handles.
        drop(engine);
        Arc::try_unwrap(platform)
            .map_err(|_| "platform handles escaped the runtime")
            .unwrap()
    }
}

/// The process-wide GMAC runtime: one shared logical address space between
/// the host CPU and all accelerators of a platform, shareable across host
/// threads.
///
/// `Gmac` is the owner; threads interact through per-thread
/// [`Session`] handles. Interior state is **sharded per accelerator** (see
/// the [module docs](self)): sessions driving different devices take
/// independent locks and overlap in wall-clock time, while
/// [`GmacConfig::sharding`]`(false)` restores the old single-global-lock
/// behaviour for ablation. `Gmac` is `Send + Sync` and cloning it is cheap
/// (reference-counted).
///
/// ```
/// use gmac::{Gmac, GmacConfig, Protocol};
/// use hetsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gmac = Gmac::new(
///     Platform::desktop_g280(),
///     GmacConfig::default().protocol(Protocol::Rolling),
/// );
/// let session = gmac.session();
/// let v = session.alloc_typed::<f32>(1024)?; // one pointer, CPU *and* GPU
/// v.write(0, 42.0)?;
/// assert_eq!(v.read(0)?, 42.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gmac {
    inner: Arc<Inner>,
}

impl Gmac {
    /// Creates the runtime over a simulated platform.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        Gmac {
            inner: Arc::new(Inner::new(platform, config)),
        }
    }

    /// Re-wraps shared state (the [`Session::gmac`] accessor).
    pub(crate) fn from_state(inner: Arc<Inner>) -> Self {
        Gmac { inner }
    }

    /// Opens a new session with no device affinity: allocations follow the
    /// scheduler policy, kernels follow their data.
    pub fn session(&self) -> Session {
        self.session_with(None)
    }

    /// Opens a session pinned to accelerator `dev`: its allocations land on
    /// `dev` and data-free kernels default to it. The paper's "execution
    /// thread attached to an accelerator" view (§3.2).
    pub fn session_on(&self, dev: DeviceId) -> Session {
        self.session_with(Some(dev))
    }

    fn session_with(&self, affinity: Option<DeviceId>) -> Session {
        let id = self.inner.next_session_id();
        Session::new(Arc::clone(&self.inner), SessionView { id, affinity })
    }

    /// Builds the multi-tenant [`crate::Service`] front-end over this
    /// runtime: M client sessions submit jobs through a bounded fair queue,
    /// a placer routes them to the least-loaded device, and one worker per
    /// device executes them — contention becomes queueing instead of
    /// [`GmacError::DeviceBusy`]. With [`GmacConfig::service`] off the
    /// returned service runs every job inline on the submitting thread
    /// (ablation mode, byte-identical results).
    ///
    /// Drop the service (it drains and joins its threads) before calling
    /// [`Self::into_platform`] — its workers hold runtime handles.
    pub fn service(&self) -> crate::service::Service {
        crate::service::Service::new(Arc::clone(&self.inner))
    }

    /// Runs `f` over the simulated platform (kernel registration, file
    /// setup, clock queries). The platform is internally thread-safe, so no
    /// runtime lock is held — but in global-lock ablation mode the closure
    /// must still not call back into `Gmac`/`Session`/`Shared` methods
    /// (including dropping a `Shared<T>` buffer), which would deadlock on
    /// the serial gate.
    pub fn with_platform<R>(&self, f: impl FnOnce(&Platform) -> R) -> R {
        // Settle deferred fast-path time: the closure may read the clock.
        fasttime::flush(&self.inner.platform);
        f(&self.inner.platform)
    }

    /// Execution-time ledger snapshot (Figure 10 categories).
    pub fn ledger(&self) -> TimeLedger {
        fasttime::flush(&self.inner.platform);
        self.inner.platform.ledger()
    }

    /// Transfer-ledger snapshot (Figure 8 input).
    pub fn transfers(&self) -> TransferLedger {
        fasttime::flush(&self.inner.platform);
        *self.inner.platform.transfers()
    }

    /// Runtime event counters (faults, fetches, evictions), summed over all
    /// device shards.
    pub fn counters(&self) -> Counters {
        self.inner.counters()
    }

    /// Active configuration (clone).
    pub fn config(&self) -> GmacConfig {
        self.inner.config().clone()
    }

    /// Virtual time elapsed since platform start.
    pub fn elapsed(&self) -> hetsim::Nanos {
        fasttime::flush(&self.inner.platform);
        self.inner.platform.elapsed()
    }

    /// Number of live shared objects.
    pub fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    /// Number of accelerators on the platform.
    pub fn device_count(&self) -> usize {
        self.inner.device_count()
    }

    /// Number of blocks currently dirty, per the protocols' bookkeeping
    /// (summed over all device shards).
    pub fn dirty_block_count(&self) -> usize {
        self.inner.dirty_block_count()
    }

    /// Devices with a call in flight (any session), in id order.
    pub fn pending_devices(&self) -> Vec<DeviceId> {
        self.inner.pending_devices()
    }

    /// Race-detector counters: accesses checked and violations observed.
    /// All-zero with [`GmacConfig::race_check`] off.
    pub fn race_stats(&self) -> crate::race::RaceStats {
        self.inner.race_stats()
    }

    /// Violations recorded by the non-fatal sink
    /// ([`GmacConfig::race_report`] mode). Empty in error mode (violations
    /// surface as [`GmacError::RaceDetected`] instead) or with the detector
    /// off.
    pub fn race_violations(&self) -> Vec<crate::race::RaceViolation> {
        self.inner.race_violations()
    }

    /// Changes the allocation-placement policy for sessions without
    /// affinity.
    pub fn set_sched_policy(&self, policy: SchedPolicy) {
        self.inner.set_sched_policy(policy);
    }

    /// Consumes the runtime, returning the platform for final measurements.
    ///
    /// Fails (returns `self`) while other handles — clones, sessions or
    /// typed buffers — are still alive.
    pub fn try_into_platform(self) -> Result<Platform, Gmac> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.into_platform()),
            Err(inner) => Err(Gmac { inner }),
        }
    }

    /// [`Self::try_into_platform`], panicking variant.
    ///
    /// # Panics
    /// Panics when sessions, typed buffers or clones of the runtime are
    /// still alive.
    pub fn into_platform(self) -> Platform {
        self.try_into_platform()
            .map_err(|_| "Gmac::into_platform with live sessions/buffers/clones")
            .unwrap()
    }

    pub(crate) fn state(&self) -> &Arc<Inner> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn gmac() -> Gmac {
        Gmac::new(Platform::desktop_g280(), GmacConfig::default())
    }

    #[test]
    fn runtime_and_session_are_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Gmac>();
        assert_send_sync::<Session>();
        assert_send::<crate::typed::Shared<f32>>();
    }

    #[test]
    fn sessions_get_distinct_ids() {
        let g = gmac();
        let a = g.session();
        let b = g.session_on(DeviceId(0));
        assert_ne!(a.id(), b.id());
        assert_eq!(b.affinity(), Some(DeviceId(0)));
        assert_eq!(a.affinity(), None);
    }

    #[test]
    fn into_platform_requires_unique_handle() {
        let g = gmac();
        let s = g.session();
        let g = g.try_into_platform().expect_err("session still alive");
        drop(s);
        let p = g.try_into_platform().expect("now unique");
        assert_eq!(p.device_count(), 1);
    }

    #[test]
    fn clone_shares_state() {
        let g = Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default().protocol(Protocol::Lazy),
        );
        let g2 = g.clone();
        let s = g.session();
        let p = s.alloc(4096).unwrap();
        assert_eq!(g2.object_count(), 1);
        s.free(p).unwrap();
        assert_eq!(g2.object_count(), 0);
    }

    #[test]
    fn threads_share_the_runtime() {
        let g = gmac();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = g.session();
                std::thread::spawn(move || {
                    let p = s.alloc(8192).unwrap();
                    s.store::<u32>(p, 7).unwrap();
                    assert_eq!(s.load::<u32>(p).unwrap(), 7);
                    s.free(p).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.object_count(), 0);
    }

    #[test]
    fn global_lock_mode_matches_sharded_mode() {
        // The ablation toggle runs the same code paths behind one big lock:
        // a single-session flow must be byte-identical between modes.
        let run = |sharding: bool| {
            let g = Gmac::new(
                Platform::desktop_g280(),
                GmacConfig::default().sharding(sharding),
            );
            let s = g.session();
            let p = s.alloc(64 * 1024).unwrap();
            s.store_slice::<u32>(p, &(0..1024).collect::<Vec<_>>())
                .unwrap();
            let data: Vec<u32> = s.load_slice(p, 1024).unwrap();
            s.free(p).unwrap();
            drop(s);
            let elapsed = g.elapsed();
            (data, elapsed)
        };
        assert_eq!(run(true), run(false));
    }
}
