//! Shared pointers and kernel parameters.
//!
//! The whole point of ADSM (paper §3.1, Figure 4): a *single* pointer value
//! names a data object both in CPU code and in accelerator kernels. A
//! [`SharedPtr`] is that value; [`Param`] is how it is passed to kernels.

use hetsim::KernelArg;
use softmmu::VAddr;
use std::fmt;

/// A pointer into the shared (unified) address space returned by
/// `Context::alloc`/`safe_alloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedPtr(VAddr);

impl SharedPtr {
    /// Wraps a raw shared address (crate-internal constructor; applications
    /// receive pointers from the allocation calls).
    pub(crate) fn new(addr: VAddr) -> Self {
        SharedPtr(addr)
    }

    /// The underlying virtual address.
    pub fn addr(self) -> VAddr {
        self.0
    }

    /// Pointer advanced by `bytes`.
    pub fn byte_add(self, bytes: u64) -> SharedPtr {
        SharedPtr(self.0 + bytes)
    }

    /// Pointer advanced by `index` elements of `elem_size` bytes.
    pub fn index(self, index: u64, elem_size: u64) -> SharedPtr {
        self.byte_add(index * elem_size)
    }
}

impl fmt::Display for SharedPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shared:{}", self.0)
    }
}

/// A kernel parameter: either a shared pointer (translated to the device
/// address by the runtime) or a scalar passed through verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// A shared-object pointer.
    Shared(SharedPtr),
    /// An unsigned scalar.
    U64(u64),
    /// A float scalar.
    F64(f64),
}

impl From<SharedPtr> for Param {
    fn from(p: SharedPtr) -> Self {
        Param::Shared(p)
    }
}

impl From<u64> for Param {
    fn from(v: u64) -> Self {
        Param::U64(v)
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::F64(v)
    }
}

impl Param {
    /// Converts a scalar parameter to a kernel argument (pointers are
    /// translated by the runtime, not here).
    pub(crate) fn to_scalar_arg(self) -> Option<KernelArg> {
        match self {
            Param::Shared(_) => None,
            Param::U64(v) => Some(KernelArg::U64(v)),
            Param::F64(v) => Some(KernelArg::F64(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_arithmetic() {
        let p = SharedPtr::new(VAddr(0x1000));
        assert_eq!(p.addr(), VAddr(0x1000));
        assert_eq!(p.byte_add(16).addr(), VAddr(0x1010));
        assert_eq!(p.to_string(), "shared:0x1000");
    }

    #[test]
    fn param_conversions() {
        let p = SharedPtr::new(VAddr(0x2000));
        assert_eq!(Param::from(p), Param::Shared(p));
        assert_eq!(Param::from(7u64), Param::U64(7));
        assert_eq!(Param::from(1.5f64), Param::F64(1.5));
        assert_eq!(Param::U64(7).to_scalar_arg(), Some(KernelArg::U64(7)));
        assert_eq!(Param::Shared(p).to_scalar_arg(), None);
    }
}
