//! I/O interposition (paper §4.4).
//!
//! When `read()` targets a shared object, the first write triggers a fault;
//! with rolling-update a *second* fault would arrive mid-syscall, and "the
//! operating system prevents an ongoing I/O operation from being restarted
//! once data has been read or written". GMAC therefore interposes on the I/O
//! calls and performs them **in block-sized memory chunks**, resolving each
//! block's state up front so no syscall ever needs restarting. The same
//! mechanism gives the *illusion of peer DMA*: applications pass shared
//! pointers straight to `read`/`write`, while the implementation stages
//! through system memory (as the paper's implementation also does).
//!
//! The public surface lives on [`crate::Session`] (and the deprecated
//! [`crate::Context`] shim); this module holds the shared implementation.

use crate::error::GmacResult;
use crate::ptr::SharedPtr;
use crate::shard::DeviceShard;

impl DeviceShard {
    /// Interposed `read()`: reads up to `len` bytes from the simulated file
    /// `name` at `file_offset` directly into shared memory at `ptr`.
    /// Returns the number of bytes read (short at end-of-file).
    ///
    /// Disk time is charged to `IORead`; block-state resolution follows the
    /// coherence protocol exactly as CPU stores would. Runs under this
    /// shard's lock; the disk itself is a platform-level leaf mutex shared
    /// by all shards (it is a single physical resource).
    pub(crate) fn read_file_to_shared_locked(
        &mut self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        let chunk = self.io_chunk_size(ptr)?;
        let mut total = 0u64;
        let mut buf = vec![0u8; chunk as usize];
        while total < len {
            let n = (len - total).min(chunk) as usize;
            let read = self
                .rt
                .platform
                .file_read(name, file_offset + total, &mut buf[..n])?;
            if read == 0 {
                break; // end of file
            }
            // Land the chunk through the protocol-aware write path: one
            // fault-equivalent per block, no syscall restarts.
            self.shared_write(ptr.byte_add(total), &buf[..read])?;
            total += read as u64;
            if read < n {
                break;
            }
        }
        Ok(total)
    }

    /// Interposed `write()`: writes `len` bytes of shared memory at `ptr`
    /// into the simulated file `name` at `file_offset`. Invalid blocks are
    /// fetched from the accelerator first (they transition to read-only,
    /// like any CPU read). Returns bytes written.
    ///
    /// Disk time is charged to `IOWrite`.
    pub(crate) fn write_shared_to_file_locked(
        &mut self,
        name: &str,
        file_offset: u64,
        ptr: SharedPtr,
        len: u64,
    ) -> GmacResult<u64> {
        // Resolve every block of the operation's extent up front (the §4.4
        // rule: no syscall may need restarting mid-flight). Doing it for the
        // whole extent — not chunk by chunk — lets the transfer planner
        // fetch runs of adjacent invalid blocks as single coalesced DMA
        // jobs before the disk writes start.
        self.resolve_read_range(ptr, len)?;
        let chunk = self.io_chunk_size(ptr)?;
        let mut total = 0u64;
        while total < len {
            let n = (len - total).min(chunk);
            let bytes = self.read_resolved(ptr.byte_add(total), n)?;
            self.rt
                .platform
                .file_write(name, file_offset + total, &bytes)?;
            total += n;
        }
        Ok(total)
    }

    /// Chunk size used for interposed I/O on the object containing `ptr`:
    /// the object's block size (whole object for batch/lazy), as §4.4
    /// prescribes.
    fn io_chunk_size(&mut self, ptr: SharedPtr) -> GmacResult<u64> {
        let (_, slot) = self.locate(ptr.addr())?;
        let obj = self.mgr.by_slot(slot).expect("located slot is live");
        Ok(obj.block_size().min(obj.size()).max(1))
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GmacConfig, Protocol};
    use crate::{Gmac, Session};
    use hetsim::{Category, Platform};

    fn session(protocol: Protocol) -> Session {
        Gmac::new(
            Platform::desktop_g280(),
            GmacConfig::default()
                .protocol(protocol)
                .block_size(64 * 1024),
        )
        .session()
    }

    #[test]
    fn file_roundtrip_through_shared_memory() {
        for protocol in Protocol::ALL {
            let s = session(protocol);
            let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
            s.with_platform(|p| p.fs_mut().create("in.dat", data.clone()));
            let p = s.alloc(data.len() as u64).unwrap();
            let n = s
                .read_file_to_shared("in.dat", 0, p, data.len() as u64)
                .unwrap();
            assert_eq!(n, data.len() as u64, "{protocol}");
            let out = s.load_slice::<u8>(p, data.len()).unwrap();
            assert_eq!(out, data, "{protocol}");

            let m = s
                .write_shared_to_file("out.dat", 0, p, data.len() as u64)
                .unwrap();
            assert_eq!(m, data.len() as u64);
            let mut copied = vec![0u8; data.len()];
            s.with_platform(|pf| pf.fs_mut().read_at("out.dat", 0, &mut copied))
                .unwrap();
            assert_eq!(copied, data, "{protocol}");
        }
    }

    #[test]
    fn short_read_at_eof() {
        let s = session(Protocol::Rolling);
        s.with_platform(|p| p.fs_mut().create("small.dat", vec![7u8; 1000]));
        let p = s.alloc(4096).unwrap();
        let n = s.read_file_to_shared("small.dat", 0, p, 4096).unwrap();
        assert_eq!(n, 1000);
        assert_eq!(s.load_slice::<u8>(p, 1000).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn io_charges_io_categories() {
        let s = session(Protocol::Rolling);
        s.with_platform(|p| p.fs_mut().create("in.dat", vec![1u8; 256 * 1024]));
        let p = s.alloc(256 * 1024).unwrap();
        s.read_file_to_shared("in.dat", 0, p, 256 * 1024).unwrap();
        assert!(s.ledger().get(Category::IoRead).as_nanos() > 0);
        s.write_shared_to_file("out.dat", 0, p, 256 * 1024).unwrap();
        assert!(s.ledger().get(Category::IoWrite).as_nanos() > 0);
    }

    #[test]
    fn write_of_kernel_output_fetches_from_device() {
        // After a call, blocks are invalid; writing them to disk must pull
        // the kernel's bytes, not stale host bytes.
        let s = session(Protocol::Rolling);
        let p = s.alloc(128 * 1024).unwrap();
        s.store_slice::<u8>(p, &vec![9u8; 128 * 1024]).unwrap();
        // Pretend a kernel ran: release everything (no kernel registered, so
        // drive the protocol directly through a store-free path).
        s.with_parts(|rt, mgr, proto| proto.release(rt, mgr, hetsim::DeviceId(0), None))
            .unwrap();
        let before = s.transfers().d2h_bytes;
        s.write_shared_to_file("dump.bin", 0, p, 128 * 1024)
            .unwrap();
        assert_eq!(s.transfers().d2h_bytes - before, 128 * 1024);
        let mut out = vec![0u8; 128 * 1024];
        s.with_platform(|pf| pf.fs_mut().read_at("dump.bin", 0, &mut out))
            .unwrap();
        assert!(out.iter().all(|&b| b == 9));
    }

    #[test]
    fn foreign_pointer_rejected() {
        let s = session(Protocol::Rolling);
        let p = s.alloc(4096).unwrap();
        s.free(p).unwrap();
        assert!(s.read_file_to_shared("x", 0, p, 16).is_err());
    }
}
