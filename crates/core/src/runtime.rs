//! The runtime kernel of GMAC: owns the simulated platform and the software
//! MMU, and executes the transfer plans the coherence protocols build.
//!
//! Protocols do not move data imperatively. They declare the block ranges
//! that must move in a [`TransferPlan`]; [`Runtime::execute`] coalesces the
//! ranges into [`crate::xfer::DmaJob`]s, schedules them onto the device's
//! per-direction DMA engine timelines (synchronously or asynchronously) and
//! accounts jobs, bytes and coalesced blocks in the platform's extended
//! `TransferLedger`. Outstanding asynchronous jobs are joined explicitly
//! through [`Runtime::join_dma`] at `adsmCall` boundaries.

use crate::config::GmacConfig;
use crate::error::{GmacError, GmacResult};
use crate::object::SharedObject;
use crate::state::BlockState;
use crate::xfer::{DmaEngine, DmaQueue, Purpose, TransferPlan};
use hetsim::{Category, CopyMode, DeviceId, Direction, Nanos, Platform, TimePoint};
use softmmu::{AddressSpace, VAddr};
use std::sync::Arc;
use std::time::Instant;

/// Event counters exposed for tests and the figure harness.
///
/// Block counters count *protocol blocks*, not DMA jobs: a coalesced flush
/// of four adjacent dirty blocks bumps `blocks_flushed` by four while the
/// platform's `TransferLedger` records a single job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Protection faults resolved as reads.
    pub faults_read: u64,
    /// Protection faults resolved as writes.
    pub faults_write: u64,
    /// Blocks fetched device-to-host.
    pub blocks_fetched: u64,
    /// Blocks flushed host-to-device.
    pub blocks_flushed: u64,
    /// Bytes fetched device-to-host through transfer plans.
    pub bytes_fetched: u64,
    /// Bytes flushed host-to-device through transfer plans.
    pub bytes_flushed: u64,
    /// Rolling-update evictions issued as asynchronous (eager) DMA.
    pub eager_evictions: u64,
    /// Pointer→object resolutions that had to search the manager (B-tree or
    /// linear scan). Wall-clock bookkeeping only: the virtual-time cost of a
    /// fault-handler lookup is charged per fault regardless.
    pub obj_lookups: u64,
    /// Pointer→object resolutions served by the shard's one-entry memo
    /// (no search; zero with [`crate::GmacConfig::tlb`] off).
    pub obj_memo_hits: u64,
    /// Software-TLB translations served without a radix-table walk.
    pub tlb_hits: u64,
    /// Software-TLB translations that walked the radix table (zero with the
    /// TLB disabled).
    pub tlb_misses: u64,
    /// Wall-clock nanoseconds this runtime spent blocked on the background
    /// DMA engine (joins before kernel launches, device reads, fills and
    /// frees). Wall-clock bookkeeping only — virtual time charges the DMA
    /// wait through the engine timelines regardless; zero with
    /// [`crate::GmacConfig::async_dma`] off.
    pub dma_wait_ns: u64,
    /// Background DMA jobs that had already retired when their device was
    /// next joined — jobs whose execution genuinely overlapped CPU progress.
    /// Wall-clock bookkeeping only; zero with
    /// [`crate::GmacConfig::async_dma`] off.
    pub jobs_overlapped: u64,
    /// Resident objects evicted from device memory back to host under
    /// allocation pressure (see [`crate::GmacConfig::evict`]).
    pub evictions: u64,
    /// Total size of evicted objects (device bytes released to the
    /// first-fit allocator by eviction).
    pub evicted_bytes: u64,
    /// Evicted objects re-fetched into device memory by a later
    /// `adsmCall`/access.
    pub refetches: u64,
    /// Total size of re-fetched objects (device bytes re-claimed).
    pub refetch_bytes: u64,
    /// Eviction candidates spared — pinned by a pending accelerator call,
    /// or DMA-busy and not needed once quiescent victims freed enough.
    pub pin_saves: u64,
    /// Evicted host-side images spilled on to the disk tier under simulated
    /// host pressure (see [`crate::GmacConfig::host_capacity`]).
    pub disk_spills: u64,
}

impl Counters {
    /// Total protection faults.
    pub fn faults(&self) -> u64 {
        self.faults_read + self.faults_write
    }

    /// Adds another counter set into this one (the per-shard → runtime-wide
    /// aggregation). Destructures exhaustively so a new counter field cannot
    /// be forgotten here.
    pub fn merge(&mut self, other: &Counters) {
        let Counters {
            faults_read,
            faults_write,
            blocks_fetched,
            blocks_flushed,
            bytes_fetched,
            bytes_flushed,
            eager_evictions,
            obj_lookups,
            obj_memo_hits,
            tlb_hits,
            tlb_misses,
            dma_wait_ns,
            jobs_overlapped,
            evictions,
            evicted_bytes,
            refetches,
            refetch_bytes,
            pin_saves,
            disk_spills,
        } = *other;
        self.faults_read += faults_read;
        self.faults_write += faults_write;
        self.blocks_fetched += blocks_fetched;
        self.blocks_flushed += blocks_flushed;
        self.bytes_fetched += bytes_fetched;
        self.bytes_flushed += bytes_flushed;
        self.eager_evictions += eager_evictions;
        self.obj_lookups += obj_lookups;
        self.obj_memo_hits += obj_memo_hits;
        self.tlb_hits += tlb_hits;
        self.tlb_misses += tlb_misses;
        self.dma_wait_ns += dma_wait_ns;
        self.jobs_overlapped += jobs_overlapped;
        self.evictions += evictions;
        self.evicted_bytes += evicted_bytes;
        self.refetches += refetches;
        self.refetch_bytes += refetch_bytes;
        self.pin_saves += pin_saves;
        self.disk_spills += disk_spills;
    }
}

/// Platform + MMU + configuration bundle threaded through the runtime.
///
/// Since the sharded redesign there is one `Runtime` **per device shard**:
/// each owns its slice of the host address space (the regions of objects
/// homed on its device), its own event counters and DMA queue, and a shared
/// handle on the thread-safe [`Platform`]. Protocols keep driving it exactly
/// as before — the platform's interior locks make concurrent shards safe.
#[derive(Debug)]
pub struct Runtime {
    pub(crate) platform: Arc<Platform>,
    pub(crate) vm: AddressSpace,
    pub(crate) config: GmacConfig,
    pub(crate) counters: Counters,
    pub(crate) queue: DmaQueue,
    /// Background DMA execution engine, shared across shards. `None` in
    /// standalone harnesses (and with [`GmacConfig::async_dma`] off): jobs
    /// then execute inline at issue, exactly as before the engine existed.
    pub(crate) engine: Option<Arc<DmaEngine>>,
    /// True when [`GmacConfig::mmap_backing`] was requested but the host
    /// reservation failed and this runtime fell back to the table-walk
    /// backend. Reported (never fatal): behaviour is identical, only the
    /// zero-instrumentation hit path is lost.
    pub(crate) backing_downgraded: bool,
}

impl Runtime {
    /// Creates a runtime owning a fresh platform handle (standalone
    /// harnesses and tests); transfers execute inline.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        Self::from_shared(Arc::new(platform), config, None)
    }

    /// Creates a runtime over an already-shared platform (one per device
    /// shard), submitting host-to-device byte landings to `engine` when one
    /// is given.
    pub(crate) fn from_shared(
        platform: Arc<Platform>,
        config: GmacConfig,
        engine: Option<Arc<DmaEngine>>,
    ) -> Self {
        // The mmap backing is a wall-clock-only optimisation: when the host
        // reservation fails (non-Linux, exhausted address space, forced in
        // tests via a bogus reserve) the runtime degrades gracefully to the
        // table-walk backend and reports it, rather than panicking.
        let (mut vm, backing_downgraded) = if config.mmap_backing {
            match AddressSpace::new_mmap(config.mmap_reserve) {
                Ok(vm) => (vm, false),
                Err(_) => (AddressSpace::new(), true),
            }
        } else {
            (AddressSpace::new(), false)
        };
        // The ablation toggle disables every access-fast-path cache,
        // including the softmmu TLB.
        vm.set_tlb_enabled(config.tlb);
        Runtime {
            platform,
            vm,
            config,
            counters: Counters::default(),
            queue: DmaQueue::new(),
            engine,
            backing_downgraded,
        }
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The software MMU.
    pub fn vm(&self) -> &AddressSpace {
        &self.vm
    }

    /// True when this runtime's address space is mmap-backed (the
    /// zero-instrumentation hit path is available).
    pub fn mmap_active(&self) -> bool {
        self.vm.is_mmap_backed()
    }

    /// True when mmap backing was requested but the runtime fell back to
    /// the table-walk backend (see [`crate::GmacConfig::mmap_backing`]).
    pub fn backing_downgraded(&self) -> bool {
        self.backing_downgraded
    }

    /// Event counters (TLB hit/miss totals are pulled from this runtime's
    /// address space at snapshot time).
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        c.tlb_hits = self.vm.tlb_hits();
        c.tlb_misses = self.vm.tlb_misses();
        c
    }

    /// Active configuration.
    pub fn config(&self) -> &GmacConfig {
        &self.config
    }

    // ----- transfer planning ------------------------------------------------

    /// Starts an empty transfer plan honouring the configured coalescing
    /// toggle. `mode` only matters host-to-device; fetches are synchronous.
    pub fn plan(&self, dir: Direction, mode: CopyMode, purpose: Purpose) -> TransferPlan {
        TransferPlan::new(dir, mode, purpose, self.config.coalescing)
    }

    /// Executes every job of `plan` on the simulated platform.
    ///
    /// Host-to-device jobs gather the bytes from system memory (raw access —
    /// the runtime is "kernel mode"; the snapshot is what pins the job
    /// against later CPU writes) and issue DMA in the plan's copy mode.
    /// With the background engine the virtual timeline is reserved here —
    /// every clock and ledger charge happens at issue, keeping virtual time
    /// byte-identical to the inline mode — while the wall-clock byte landing
    /// is queued to the device's worker. Asynchronous completions are
    /// remembered in the [`DmaQueue`] for the next [`Self::join_dma`].
    /// Device-to-host jobs are synchronous and land the bytes in system
    /// memory, after draining any queued landings for the object so they
    /// never read a stale device range. Returns the completion time of the
    /// last job, if any ran.
    ///
    /// # Errors
    /// Propagates platform/MMU failures.
    pub fn execute(&mut self, plan: &TransferPlan) -> GmacResult<Option<TimePoint>> {
        let mut last_end = None;
        for job in plan.jobs() {
            let end = match plan.dir() {
                Direction::HostToDevice => {
                    let bytes = self.vm.gather(job.addr + job.offset, job.len)?;
                    let dst = job.dev_addr.add(job.offset);
                    let end = if let Some(engine) = &self.engine {
                        let end = self
                            .platform
                            .reserve_h2d(job.dev, dst, job.len, plan.mode())?;
                        engine.submit(job.dev, job.addr, dst, bytes);
                        end
                    } else {
                        self.platform.copy_h2d(job.dev, dst, &bytes, plan.mode())?
                    };
                    self.counters.blocks_flushed += job.blocks;
                    self.counters.bytes_flushed += job.len;
                    if plan.mode() == CopyMode::Async {
                        self.queue.note(job.dev, end);
                        if plan.purpose() == Purpose::Eviction {
                            self.counters.eager_evictions += 1;
                        }
                    }
                    end
                }
                Direction::DeviceToHost => {
                    self.join_object(job.dev, job.addr)?;
                    let src = job.dev_addr.add(job.offset);
                    let mut bytes = vec![0u8; job.len as usize];
                    let end = self
                        .platform
                        .copy_d2h(job.dev, src, &mut bytes, CopyMode::Sync)?;
                    self.vm.write_raw(job.addr + job.offset, &bytes)?;
                    self.counters.blocks_fetched += job.blocks;
                    self.counters.bytes_fetched += job.len;
                    end
                }
            };
            self.platform
                .transfers_mut()
                .note_blocks(plan.dir(), job.blocks);
            last_end = Some(last_end.map_or(end, |t: TimePoint| t.max(end)));
        }
        Ok(last_end)
    }

    /// Joins all outstanding host-to-device DMA on `dev` — the explicit join
    /// point at `adsmCall`. Two waits happen here:
    ///
    /// * **virtual**: if asynchronous jobs were issued since the last join,
    ///   the host blocks until the device's H2D engine timeline drains,
    ///   charging the waited virtual time to `Copy` (unchanged semantics);
    /// * **wall-clock**: with the background engine enabled, genuinely waits
    ///   until every queued byte landing for `dev` has committed to device
    ///   memory, accounting the blocked time in [`Counters::dma_wait_ns`]
    ///   and the jobs that had already retired in
    ///   [`Counters::jobs_overlapped`].
    ///
    /// Since the engine refactor this is therefore a *real* join, not pure
    /// bookkeeping: after it returns, the device holds every flushed byte.
    /// A no-op when nothing is outstanding.
    ///
    /// # Errors
    /// Fails for unknown devices; surfaces worker-side platform failures.
    pub fn join_dma(&mut self, dev: DeviceId) -> GmacResult<()> {
        if self.queue.take(dev).is_some() {
            self.platform.join_dma(dev, Direction::HostToDevice)?;
        }
        if let Some(engine) = &self.engine {
            let t0 = Instant::now();
            let overlapped = engine.wait_device(dev)?;
            self.counters.dma_wait_ns += t0.elapsed().as_nanos() as u64;
            self.counters.jobs_overlapped += overlapped;
        }
        Ok(())
    }

    /// Wall-clock join of the background engine for one object: blocks until
    /// every queued byte landing owned by the object starting at `addr` on
    /// `dev` has committed. Charges nothing virtual — the object's timeline
    /// was reserved at issue. Used before device-memory reads, fills and
    /// frees; a no-op without the engine.
    ///
    /// # Errors
    /// Surfaces worker-side platform failures.
    pub fn join_object(&mut self, dev: DeviceId, addr: VAddr) -> GmacResult<()> {
        if let Some(engine) = &self.engine {
            let t0 = Instant::now();
            engine.wait_object(dev, addr)?;
            self.counters.dma_wait_ns += t0.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// True when the background engine still holds queued or executing byte
    /// landings for the object starting at `addr` on `dev` — the eviction
    /// path's pin probe: such an object's device range must not be handed
    /// back to the allocator. `false` without the engine (inline jobs
    /// complete at issue).
    pub(crate) fn object_dma_busy(&self, dev: DeviceId, addr: VAddr) -> bool {
        self.engine
            .as_ref()
            .is_some_and(|engine| engine.object_busy(dev, addr))
    }

    // ----- protocol primitives ----------------------------------------------

    /// Sets the page protection of block `idx` of `obj` to match `state`.
    ///
    /// # Errors
    /// Propagates MMU failures.
    pub fn protect_block(
        &mut self,
        obj: &SharedObject,
        idx: usize,
        state: BlockState,
    ) -> GmacResult<()> {
        let block = obj.block(idx);
        self.vm
            .protect(obj.addr() + block.offset, block.len, state.protection())?;
        Ok(())
    }

    /// Sets the protection of the whole object to match `state`.
    ///
    /// # Errors
    /// Propagates MMU failures.
    pub fn protect_object(&mut self, obj: &SharedObject, state: BlockState) -> GmacResult<()> {
        self.vm
            .protect(obj.addr(), obj.size(), state.protection())?;
        Ok(())
    }

    /// Sets the protection of `[lo, hi)` of `obj` to match `state` — the
    /// run-length companion to [`Self::protect_block`]: one `mprotect` (and
    /// one TLB generation bump) per contiguous equal-state run instead of
    /// one per block. `lo` must be block-aligned (runs always are).
    ///
    /// # Errors
    /// Propagates MMU failures.
    pub fn protect_range(
        &mut self,
        obj: &SharedObject,
        lo: u64,
        hi: u64,
        state: BlockState,
    ) -> GmacResult<()> {
        if lo < hi {
            self.vm
                .protect(obj.addr() + lo, hi - lo, state.protection())?;
        }
        Ok(())
    }

    /// Device-side fill of an object range (`cudaMemset` path of the §4.4
    /// bulk-memory interposition).
    ///
    /// # Errors
    /// Propagates platform failures.
    pub fn dev_fill(
        &mut self,
        obj: &SharedObject,
        offset: u64,
        len: u64,
        value: u8,
    ) -> GmacResult<()> {
        // A queued flush of this object must land before the fill, or the
        // stale bytes would overwrite it (virtual time already orders the
        // two through the engine timelines).
        self.join_object(obj.device(), obj.addr())?;
        self.platform
            .dev_memset(obj.device(), obj.dev_addr().add(offset), value, len)?;
        Ok(())
    }

    /// Charges the cost of one protection-fault delivery plus the
    /// block-lookup walk of `steps` nodes (paper §5.2), and counts it.
    pub fn charge_signal(&mut self, steps: u64, write: bool) {
        let per_node = match self.config.lookup {
            crate::config::LookupKind::Tree => self.config.costs.lookup_tree_node,
            crate::config::LookupKind::Linear => self.config.costs.lookup_linear_entry,
        };
        let cost = self.platform.cpu().signal_cost + per_node * steps;
        self.platform.spend(Category::Signal, cost);
        if write {
            self.counters.faults_write += 1;
        } else {
            self.counters.faults_read += 1;
        }
    }

    /// Charges GMAC bookkeeping time to a ledger category.
    pub fn charge(&mut self, cat: Category, dur: Nanos) {
        self.platform.spend(cat, dur);
    }

    /// Validates that `[offset, offset+len)` lies inside `obj`.
    ///
    /// # Errors
    /// [`GmacError::OutOfObjectBounds`] when the range spills past the end.
    pub fn check_bounds(obj: &SharedObject, offset: u64, len: u64) -> GmacResult<()> {
        if offset
            .checked_add(len)
            .map(|end| end <= obj.size())
            .unwrap_or(false)
        {
            Ok(())
        } else {
            Err(GmacError::OutOfObjectBounds {
                base: obj.addr(),
                offset,
                len,
            })
        }
    }

    /// Reads current bytes of an object range *without* changing any state:
    /// invalid blocks are read from the device, others from system memory.
    /// Used by the bulk-memory interposition for source operands.
    ///
    /// # Errors
    /// Propagates platform/MMU failures.
    pub fn peek_range(&mut self, obj: &SharedObject, offset: u64, len: u64) -> GmacResult<Vec<u8>> {
        Self::check_bounds(obj, offset, len)?;
        // Invalid runs read device memory directly below; queued landings
        // for this object must commit first.
        self.join_object(obj.device(), obj.addr())?;
        let mut out = vec![0u8; len as usize];
        // Runs of equal state read as single spans: one device copy or one
        // host gather per run instead of one per block.
        for run in obj.runs_in(offset, len) {
            let lo = run.start.max(offset);
            let hi = run.end.min(offset + len);
            let dst = &mut out[(lo - offset) as usize..(hi - offset) as usize];
            if run.state == BlockState::Invalid {
                let src = obj.dev_addr().add(lo);
                self.platform
                    .copy_d2h(obj.device(), src, dst, CopyMode::Sync)?;
            } else {
                self.vm.read_raw(obj.addr() + lo, dst)?;
            }
        }
        Ok(out)
    }

    /// Mirror of the unified address space check: true when the host mapping
    /// for `addr` exists.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.vm.protection_at(addr).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmacConfig, LookupKind};
    use crate::object::ObjectId;
    use hetsim::DeviceId;
    use softmmu::Protection;

    fn setup(size: u64, block: u64) -> (Runtime, SharedObject) {
        setup_with(size, block, GmacConfig::default())
    }

    fn setup_with(size: u64, block: u64, config: GmacConfig) -> (Runtime, SharedObject) {
        let platform = Platform::desktop_g280();
        let mut rt = Runtime::new(platform, config);
        let dev_addr = rt.platform.dev_alloc(DeviceId(0), size).unwrap();
        let addr = VAddr(dev_addr.0);
        let region = rt.vm.map_fixed(addr, size, Protection::ReadWrite).unwrap();
        let obj = SharedObject::new(
            ObjectId(1),
            addr,
            size,
            DeviceId(0),
            dev_addr,
            region,
            block,
            BlockState::ReadOnly,
        );
        (rt, obj)
    }

    fn flush(rt: &mut Runtime, obj: &SharedObject, offset: u64, len: u64, mode: CopyMode) {
        let mut plan = rt.plan(Direction::HostToDevice, mode, Purpose::Release);
        plan.request(obj, offset, len);
        rt.execute(&plan).unwrap();
    }

    fn fetch(rt: &mut Runtime, obj: &SharedObject, offset: u64, len: u64) {
        let mut plan = rt.plan(Direction::DeviceToHost, CopyMode::Sync, Purpose::Fetch);
        plan.request(obj, offset, len);
        rt.execute(&plan).unwrap();
    }

    #[test]
    fn flush_and_fetch_roundtrip() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.vm.write_raw(obj.addr(), &[42u8; 8192]).unwrap();
        flush(&mut rt, &obj, 0, 8192, CopyMode::Sync);
        // Clobber host, fetch back.
        rt.vm.write_raw(obj.addr(), &[0u8; 8192]).unwrap();
        fetch(&mut rt, &obj, 0, 8192);
        assert_eq!(rt.vm.gather(obj.addr(), 8192).unwrap(), vec![42u8; 8192]);
        // Block counters count blocks (two 4 KiB blocks each way), and the
        // coalesced range was one DMA job per direction.
        assert_eq!(rt.counters().blocks_flushed, 2);
        assert_eq!(rt.counters().blocks_fetched, 2);
        assert_eq!(rt.counters().bytes_flushed, 8192);
        assert_eq!(rt.counters().bytes_fetched, 8192);
        assert_eq!(rt.platform().transfers().h2d_count, 1);
        assert_eq!(rt.platform().transfers().d2h_count, 1);
        assert_eq!(rt.platform().transfers().h2d_blocks, 2);
    }

    #[test]
    fn partial_range_transfers() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.vm.write_raw(obj.addr() + 4096, &[7u8; 4096]).unwrap();
        flush(&mut rt, &obj, 4096, 4096, CopyMode::Sync);
        let dev = rt.platform.device(DeviceId(0)).unwrap();
        let on_dev = dev
            .mem()
            .slice(obj.dev_addr().add(4096), 4096)
            .unwrap()
            .to_vec();
        assert_eq!(on_dev, vec![7u8; 4096]);
        // First half untouched on device.
        let first = dev.mem().slice(obj.dev_addr(), 4096).unwrap().to_vec();
        assert_eq!(first, vec![0u8; 4096]);
    }

    #[test]
    fn plan_coalesces_adjacent_blocks_into_one_job() {
        let (mut rt, obj) = setup(4 * 4096, 4096);
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
        for idx in 0..4 {
            plan.request_block(&obj, idx);
        }
        rt.execute(&plan).unwrap();
        assert_eq!(rt.platform().transfers().h2d_count, 1, "one coalesced job");
        assert_eq!(rt.counters().blocks_flushed, 4);
        assert_eq!(rt.platform().transfers().h2d_bytes, 4 * 4096);
    }

    #[test]
    fn coalescing_disabled_issues_one_job_per_block() {
        let (mut rt, obj) = setup_with(4 * 4096, 4096, GmacConfig::default().coalescing(false));
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
        for idx in 0..4 {
            plan.request_block(&obj, idx);
        }
        rt.execute(&plan).unwrap();
        assert_eq!(rt.platform().transfers().h2d_count, 4, "ablation baseline");
        assert_eq!(rt.counters().blocks_flushed, 4);
    }

    #[test]
    fn coalescing_saves_per_job_latency() {
        let run = |coalescing: bool| {
            let (mut rt, obj) =
                setup_with(8 * 4096, 4096, GmacConfig::default().coalescing(coalescing));
            let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
            for idx in 0..8 {
                plan.request_block(&obj, idx);
            }
            rt.execute(&plan).unwrap();
            rt.platform().elapsed()
        };
        assert!(
            run(true) < run(false),
            "merged jobs pay the link latency once"
        );
    }

    #[test]
    fn protect_block_changes_page_permissions() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.protect_block(&obj, 1, BlockState::Invalid).unwrap();
        assert_eq!(
            rt.vm.protection_at(obj.addr() + 4096),
            Some(Protection::None)
        );
        assert_eq!(rt.vm.protection_at(obj.addr()), Some(Protection::ReadWrite));
        rt.protect_object(&obj, BlockState::ReadOnly).unwrap();
        assert_eq!(rt.vm.protection_at(obj.addr()), Some(Protection::ReadOnly));
    }

    #[test]
    fn charge_signal_accounting() {
        let (mut rt, _obj) = setup(4096, 4096);
        let before = rt.platform.ledger().get(Category::Signal);
        rt.charge_signal(10, true);
        rt.charge_signal(10, false);
        assert!(rt.platform.ledger().get(Category::Signal) > before);
        assert_eq!(rt.counters().faults_write, 1);
        assert_eq!(rt.counters().faults_read, 1);
        assert_eq!(rt.counters().faults(), 2);
    }

    #[test]
    fn linear_lookup_charges_more_for_many_blocks() {
        let platform = Platform::desktop_g280();
        let mut rt_tree = Runtime::new(platform, GmacConfig::default());
        let platform = Platform::desktop_g280();
        let mut rt_lin = Runtime::new(platform, GmacConfig::default().lookup(LookupKind::Linear));
        rt_tree.charge_signal(14, true); // ~16k blocks in a tree
        rt_lin.charge_signal(8192, true); // same population, half-scan
        assert!(
            rt_lin.platform.ledger().get(Category::Signal)
                > rt_tree.platform.ledger().get(Category::Signal)
        );
    }

    #[test]
    fn bounds_check() {
        let (_rt, obj) = setup(8192, 4096);
        assert!(Runtime::check_bounds(&obj, 0, 8192).is_ok());
        assert!(Runtime::check_bounds(&obj, 8191, 1).is_ok());
        assert!(matches!(
            Runtime::check_bounds(&obj, 8191, 2),
            Err(GmacError::OutOfObjectBounds { .. })
        ));
        assert!(Runtime::check_bounds(&obj, u64::MAX, 2).is_err());
    }

    #[test]
    fn peek_reads_through_to_device_for_invalid_blocks() {
        let (mut rt, mut obj) = setup(8192, 4096);
        // Host says 1s, device says 2s.
        rt.vm.write_raw(obj.addr(), &[1u8; 8192]).unwrap();
        rt.platform
            .device_mut(DeviceId(0))
            .unwrap()
            .mem_mut()
            .write(obj.dev_addr(), &[2u8; 8192])
            .unwrap();
        obj.set_state(1, BlockState::Invalid);
        let bytes = rt.peek_range(&obj, 0, 8192).unwrap();
        assert!(
            bytes[..4096].iter().all(|&b| b == 1),
            "valid block read from host"
        );
        assert!(
            bytes[4096..].iter().all(|&b| b == 2),
            "invalid block read from device"
        );
        // Peek never mutates state.
        assert_eq!(obj.block(1).state, BlockState::Invalid);
    }

    #[test]
    fn join_dma_waits_for_async_jobs() {
        let (mut rt, obj) = setup(8192, 4096);
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Async, Purpose::Eviction);
        plan.request(&obj, 0, 4096);
        let end = rt.execute(&plan).unwrap().expect("one job ran");
        assert!(rt.platform.now() < end, "async job does not block the host");
        assert!(!rt.queue.is_idle(obj.device()));
        rt.join_dma(obj.device()).unwrap();
        assert!(rt.platform.now() >= end);
        assert!(rt.queue.is_idle(obj.device()));
        assert_eq!(rt.counters().eager_evictions, 1);
    }

    #[test]
    fn join_dma_without_pending_work_is_free() {
        let (mut rt, obj) = setup(4096, 4096);
        let t0 = rt.platform.now();
        rt.join_dma(obj.device()).unwrap();
        assert_eq!(rt.platform.now(), t0);
    }

    #[test]
    fn release_purpose_async_jobs_are_not_eager_evictions() {
        let (mut rt, obj) = setup(8192, 4096);
        let mut plan = rt.plan(Direction::HostToDevice, CopyMode::Async, Purpose::Release);
        plan.request(&obj, 0, 8192);
        rt.execute(&plan).unwrap();
        assert_eq!(rt.counters().eager_evictions, 0);
        assert_eq!(rt.counters().blocks_flushed, 2);
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let (mut rt, _obj) = setup(4096, 4096);
        let plan = rt.plan(Direction::HostToDevice, CopyMode::Sync, Purpose::Release);
        assert_eq!(rt.execute(&plan).unwrap(), None);
        assert_eq!(rt.platform().transfers().total_jobs(), 0);
    }
}
