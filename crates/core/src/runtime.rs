//! The runtime kernel of GMAC: owns the simulated platform and the software
//! MMU, and provides the data-movement primitives the coherence protocols are
//! built from.

use crate::config::GmacConfig;
use crate::error::{GmacError, GmacResult};
use crate::object::SharedObject;
use crate::state::BlockState;
use hetsim::{Category, CopyMode, Nanos, Platform, TimePoint};
use softmmu::{AddressSpace, VAddr};

/// Event counters exposed for tests and the figure harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Protection faults resolved as reads.
    pub faults_read: u64,
    /// Protection faults resolved as writes.
    pub faults_write: u64,
    /// Blocks fetched device-to-host.
    pub blocks_fetched: u64,
    /// Blocks flushed host-to-device.
    pub blocks_flushed: u64,
    /// Flushes that were eager (asynchronous) rolling evictions.
    pub eager_evictions: u64,
}

impl Counters {
    /// Total protection faults.
    pub fn faults(&self) -> u64 {
        self.faults_read + self.faults_write
    }
}

/// Platform + MMU + configuration bundle threaded through the runtime.
#[derive(Debug)]
pub struct Runtime {
    pub(crate) platform: Platform,
    pub(crate) vm: AddressSpace,
    pub(crate) config: GmacConfig,
    pub(crate) counters: Counters,
}

impl Runtime {
    /// Creates the runtime over a platform.
    pub fn new(platform: Platform, config: GmacConfig) -> Self {
        Runtime { platform, vm: AddressSpace::new(), config, counters: Counters::default() }
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The simulated platform, mutable.
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }

    /// The software MMU.
    pub fn vm(&self) -> &AddressSpace {
        &self.vm
    }

    /// Event counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Active configuration.
    pub fn config(&self) -> &GmacConfig {
        &self.config
    }

    // ----- protocol primitives ----------------------------------------------

    /// Flushes `[offset, offset+len)` of `obj` host→device. Gathers the bytes
    /// from system memory (raw access — the runtime is "kernel mode") and
    /// issues DMA. Returns the DMA completion time.
    ///
    /// # Errors
    /// Propagates platform/MMU failures.
    pub fn flush_range(
        &mut self,
        obj: &SharedObject,
        offset: u64,
        len: u64,
        mode: CopyMode,
    ) -> GmacResult<TimePoint> {
        let bytes = self.vm.gather(obj.addr() + offset, len)?;
        let dst = obj.dev_addr().add(offset);
        let end = self.platform.copy_h2d(obj.device(), dst, &bytes, mode)?;
        self.counters.blocks_flushed += 1;
        if mode == CopyMode::Async {
            self.counters.eager_evictions += 1;
        }
        Ok(end)
    }

    /// Fetches `[offset, offset+len)` of `obj` device→host (synchronous;
    /// the CPU needs the data to make progress).
    ///
    /// # Errors
    /// Propagates platform/MMU failures.
    pub fn fetch_range(&mut self, obj: &SharedObject, offset: u64, len: u64) -> GmacResult<()> {
        let src = obj.dev_addr().add(offset);
        let mut bytes = vec![0u8; len as usize];
        self.platform.copy_d2h(obj.device(), src, &mut bytes, CopyMode::Sync)?;
        self.vm.write_raw(obj.addr() + offset, &bytes)?;
        self.counters.blocks_fetched += 1;
        Ok(())
    }

    /// Sets the page protection of block `idx` of `obj` to match `state`.
    ///
    /// # Errors
    /// Propagates MMU failures.
    pub fn protect_block(&mut self, obj: &SharedObject, idx: usize, state: BlockState) -> GmacResult<()> {
        let block = obj.block(idx);
        self.vm.protect(obj.addr() + block.offset, block.len, state.protection())?;
        Ok(())
    }

    /// Sets the protection of the whole object to match `state`.
    ///
    /// # Errors
    /// Propagates MMU failures.
    pub fn protect_object(&mut self, obj: &SharedObject, state: BlockState) -> GmacResult<()> {
        self.vm.protect(obj.addr(), obj.size(), state.protection())?;
        Ok(())
    }

    /// Waits until all outstanding host→device DMA on `obj`'s device has
    /// drained (used at `adsmCall` to join eager evictions), charging the
    /// wait to `Copy`.
    ///
    /// # Errors
    /// Fails for unknown devices.
    pub fn join_h2d(&mut self, obj_dev: hetsim::DeviceId) -> GmacResult<()> {
        let horizon = self.platform.device(obj_dev)?.h2d_engine().busy_until();
        self.platform.wait_for(horizon, Category::Copy);
        Ok(())
    }

    /// Device-side fill of an object range (`cudaMemset` path of the §4.4
    /// bulk-memory interposition).
    ///
    /// # Errors
    /// Propagates platform failures.
    pub fn dev_fill(&mut self, obj: &SharedObject, offset: u64, len: u64, value: u8) -> GmacResult<()> {
        self.platform.dev_memset(obj.device(), obj.dev_addr().add(offset), value, len)?;
        Ok(())
    }

    /// Charges the cost of one protection-fault delivery plus the
    /// block-lookup walk of `steps` nodes (paper §5.2), and counts it.
    pub fn charge_signal(&mut self, steps: u64, write: bool) {
        let per_node = match self.config.lookup {
            crate::config::LookupKind::Tree => self.config.costs.lookup_tree_node,
            crate::config::LookupKind::Linear => self.config.costs.lookup_linear_entry,
        };
        let cost = self.platform.cpu().signal_cost + per_node * steps;
        self.platform.spend(Category::Signal, cost);
        if write {
            self.counters.faults_write += 1;
        } else {
            self.counters.faults_read += 1;
        }
    }

    /// Charges GMAC bookkeeping time to a ledger category.
    pub fn charge(&mut self, cat: Category, dur: Nanos) {
        self.platform.spend(cat, dur);
    }

    /// Validates that `[offset, offset+len)` lies inside `obj`.
    ///
    /// # Errors
    /// [`GmacError::OutOfObjectBounds`] when the range spills past the end.
    pub fn check_bounds(obj: &SharedObject, offset: u64, len: u64) -> GmacResult<()> {
        if offset.checked_add(len).map(|end| end <= obj.size()).unwrap_or(false) {
            Ok(())
        } else {
            Err(GmacError::OutOfObjectBounds { base: obj.addr(), offset, len })
        }
    }

    /// Reads current bytes of an object range *without* changing any state:
    /// invalid blocks are read from the device, others from system memory.
    /// Used by the bulk-memory interposition for source operands.
    ///
    /// # Errors
    /// Propagates platform/MMU failures.
    pub fn peek_range(&mut self, obj: &SharedObject, offset: u64, len: u64) -> GmacResult<Vec<u8>> {
        Self::check_bounds(obj, offset, len)?;
        let mut out = vec![0u8; len as usize];
        for idx in obj.blocks_overlapping(offset, len) {
            let block = *obj.block(idx);
            let lo = block.offset.max(offset);
            let hi = (block.offset + block.len).min(offset + len);
            let dst = &mut out[(lo - offset) as usize..(hi - offset) as usize];
            if block.state == BlockState::Invalid {
                let src = obj.dev_addr().add(lo);
                self.platform.copy_d2h(obj.device(), src, dst, CopyMode::Sync)?;
            } else {
                self.vm.read_raw(obj.addr() + lo, dst)?;
            }
        }
        Ok(out)
    }

    /// Mirror of the unified address space check: true when the host mapping
    /// for `addr` exists.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.vm.protection_at(addr).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GmacConfig, LookupKind};
    use crate::object::ObjectId;
    use softmmu::Protection;
    use hetsim::DeviceId;

    fn setup(size: u64, block: u64) -> (Runtime, SharedObject) {
        let platform = Platform::desktop_g280();
        let mut rt = Runtime::new(platform, GmacConfig::default());
        let dev_addr = rt.platform.dev_alloc(DeviceId(0), size).unwrap();
        let addr = VAddr(dev_addr.0);
        let region = rt.vm.map_fixed(addr, size, Protection::ReadWrite).unwrap();
        let obj = SharedObject::new(
            ObjectId(1),
            addr,
            size,
            DeviceId(0),
            dev_addr,
            region,
            block,
            BlockState::ReadOnly,
        );
        (rt, obj)
    }

    #[test]
    fn flush_and_fetch_roundtrip() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.vm.write_raw(obj.addr(), &[42u8; 8192]).unwrap();
        rt.flush_range(&obj, 0, 8192, CopyMode::Sync).unwrap();
        // Clobber host, fetch back.
        rt.vm.write_raw(obj.addr(), &[0u8; 8192]).unwrap();
        rt.fetch_range(&obj, 0, 8192).unwrap();
        assert_eq!(rt.vm.gather(obj.addr(), 8192).unwrap(), vec![42u8; 8192]);
        assert_eq!(rt.counters().blocks_flushed, 1);
        assert_eq!(rt.counters().blocks_fetched, 1);
    }

    #[test]
    fn partial_range_transfers() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.vm.write_raw(obj.addr() + 4096, &[7u8; 4096]).unwrap();
        rt.flush_range(&obj, 4096, 4096, CopyMode::Sync).unwrap();
        let dev = rt.platform.device(DeviceId(0)).unwrap();
        let on_dev = dev.mem().slice(obj.dev_addr().add(4096), 4096).unwrap().to_vec();
        assert_eq!(on_dev, vec![7u8; 4096]);
        // First half untouched on device.
        let first = dev.mem().slice(obj.dev_addr(), 4096).unwrap().to_vec();
        assert_eq!(first, vec![0u8; 4096]);
    }

    #[test]
    fn protect_block_changes_page_permissions() {
        let (mut rt, obj) = setup(8192, 4096);
        rt.protect_block(&obj, 1, BlockState::Invalid).unwrap();
        assert_eq!(rt.vm.protection_at(obj.addr() + 4096), Some(Protection::None));
        assert_eq!(rt.vm.protection_at(obj.addr()), Some(Protection::ReadWrite));
        rt.protect_object(&obj, BlockState::ReadOnly).unwrap();
        assert_eq!(rt.vm.protection_at(obj.addr()), Some(Protection::ReadOnly));
    }

    #[test]
    fn charge_signal_accounting() {
        let (mut rt, _obj) = setup(4096, 4096);
        let before = rt.platform.ledger().get(Category::Signal);
        rt.charge_signal(10, true);
        rt.charge_signal(10, false);
        assert!(rt.platform.ledger().get(Category::Signal) > before);
        assert_eq!(rt.counters().faults_write, 1);
        assert_eq!(rt.counters().faults_read, 1);
        assert_eq!(rt.counters().faults(), 2);
    }

    #[test]
    fn linear_lookup_charges_more_for_many_blocks() {
        let platform = Platform::desktop_g280();
        let mut rt_tree = Runtime::new(platform, GmacConfig::default());
        let platform = Platform::desktop_g280();
        let mut rt_lin =
            Runtime::new(platform, GmacConfig::default().lookup(LookupKind::Linear));
        rt_tree.charge_signal(14, true); // ~16k blocks in a tree
        rt_lin.charge_signal(8192, true); // same population, half-scan
        assert!(
            rt_lin.platform.ledger().get(Category::Signal)
                > rt_tree.platform.ledger().get(Category::Signal)
        );
    }

    #[test]
    fn bounds_check() {
        let (_rt, obj) = setup(8192, 4096);
        assert!(Runtime::check_bounds(&obj, 0, 8192).is_ok());
        assert!(Runtime::check_bounds(&obj, 8191, 1).is_ok());
        assert!(matches!(
            Runtime::check_bounds(&obj, 8191, 2),
            Err(GmacError::OutOfObjectBounds { .. })
        ));
        assert!(Runtime::check_bounds(&obj, u64::MAX, 2).is_err());
    }

    #[test]
    fn peek_reads_through_to_device_for_invalid_blocks() {
        let (mut rt, mut obj) = setup(8192, 4096);
        // Host says 1s, device says 2s.
        rt.vm.write_raw(obj.addr(), &[1u8; 8192]).unwrap();
        rt.platform
            .device_mut(DeviceId(0))
            .unwrap()
            .mem_mut()
            .write(obj.dev_addr(), &[2u8; 8192])
            .unwrap();
        obj.block_mut(1).state = BlockState::Invalid;
        let bytes = rt.peek_range(&obj, 0, 8192).unwrap();
        assert!(bytes[..4096].iter().all(|&b| b == 1), "valid block read from host");
        assert!(bytes[4096..].iter().all(|&b| b == 2), "invalid block read from device");
        // Peek never mutates state.
        assert_eq!(obj.block(1).state, BlockState::Invalid);
    }

    #[test]
    fn join_h2d_waits_for_async_evictions() {
        let (mut rt, obj) = setup(8192, 4096);
        let end = rt.flush_range(&obj, 0, 4096, CopyMode::Async).unwrap();
        assert!(rt.platform.now() < end);
        rt.join_h2d(obj.device()).unwrap();
        assert!(rt.platform.now() >= end);
        assert_eq!(rt.counters().eager_evictions, 1);
    }
}
