//! Property tests for the platform substrate: the device allocator against
//! an interval model, and engine-timeline monotonicity.

use hetsim::{DevAddr, DeviceMemory, Engine, Nanos, TimePoint};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    /// Free the i-th live allocation (modulo live count).
    Free(usize),
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        (1u64..64 * 1024).prop_map(AllocOp::Alloc),
        (0usize..64).prop_map(AllocOp::Free),
    ]
}

proptest! {
    /// Allocations never overlap, stay in the window, and freeing everything
    /// coalesces back to one region covering the whole capacity.
    #[test]
    fn allocator_against_interval_model(ops in proptest::collection::vec(alloc_op(), 1..200)) {
        const CAP: u64 = 1 << 20;
        let mut mem = DeviceMemory::new(0x1000_0000, CAP);
        let mut live: BTreeMap<u64, u64> = BTreeMap::new(); // addr -> size

        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    match mem.alloc(size) {
                        Ok(addr) => {
                            let rounded = size.div_ceil(256) * 256;
                            // In-window and aligned.
                            prop_assert!(addr.0 >= 0x1000_0000);
                            prop_assert!(addr.0 + rounded <= 0x1000_0000 + CAP);
                            prop_assert_eq!(addr.0 % 256, 0);
                            // No overlap with any live allocation.
                            for (&a, &s) in &live {
                                prop_assert!(
                                    addr.0 + rounded <= a || a + s <= addr.0,
                                    "overlap: new [{:#x},+{}) vs live [{:#x},+{})",
                                    addr.0, rounded, a, s
                                );
                            }
                            live.insert(addr.0, rounded);
                        }
                        Err(_) => {
                            // OOM must be justified: requested more than the
                            // total free bytes, or free space is fragmented.
                            let used: u64 = live.values().sum();
                            let free = CAP - used;
                            let rounded = size.div_ceil(256) * 256;
                            prop_assert!(
                                rounded > free || !live.is_empty(),
                                "alloc of {} failed with {} free and no fragmentation",
                                rounded, free
                            );
                        }
                    }
                }
                AllocOp::Free(idx) => {
                    if live.is_empty() {
                        continue;
                    }
                    let &addr = live.keys().nth(idx % live.len()).unwrap();
                    live.remove(&addr);
                    mem.free(DevAddr(addr)).unwrap();
                }
            }
            let used: u64 = live.values().sum();
            prop_assert_eq!(mem.used_bytes(), used);
            prop_assert_eq!(mem.allocation_count(), live.len());
        }

        // Drain everything: memory must fully coalesce.
        for (&addr, _) in live.clone().iter() {
            mem.free(DevAddr(addr)).unwrap();
        }
        prop_assert_eq!(mem.free_bytes(), CAP);
        // A maximal allocation must now succeed (proves coalescing).
        prop_assert!(mem.alloc(CAP).is_ok());
    }

    /// Engine reservations are serial: intervals never overlap and
    /// busy_until never moves backwards.
    #[test]
    fn engine_timeline_is_serial(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        let mut engine = Engine::new("prop");
        let mut prev_end = TimePoint::ZERO;
        let mut total = Nanos::ZERO;
        for (submit, dur) in jobs {
            let r = engine.reserve(TimePoint::from_nanos(submit), Nanos::from_nanos(dur));
            // Starts no earlier than submission and no earlier than the
            // previous job's end.
            prop_assert!(r.start >= TimePoint::from_nanos(submit));
            prop_assert!(r.start >= prev_end);
            prop_assert_eq!(r.duration(), Nanos::from_nanos(dur));
            prop_assert_eq!(engine.busy_until(), r.end);
            prev_end = r.end;
            total += Nanos::from_nanos(dur);
            prop_assert_eq!(engine.total_busy(), total);
        }
    }

    /// Device memory read/write round-trips arbitrary payloads at arbitrary
    /// in-bounds offsets.
    #[test]
    fn devmem_rw_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        offset in 0u64..4096,
    ) {
        let mut mem = DeviceMemory::new(0x2000, 8192);
        let base = mem.alloc(8192).unwrap();
        let addr = base.add(offset.min(8192 - payload.len() as u64));
        mem.write(addr, &payload).unwrap();
        let mut out = vec![0u8; payload.len()];
        mem.read(addr, &mut out).unwrap();
        prop_assert_eq!(out, payload);
    }
}
