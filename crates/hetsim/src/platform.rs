//! The simulated heterogeneous platform: host CPU + accelerators + links +
//! disk + virtual clock + accounting, corresponding to the paper's reference
//! architecture (Figure 1: CPUs and accelerators with separate physical
//! memories joined by a PCIe-class interconnect).
//!
//! # Locking architecture
//!
//! The platform is internally sharded so that host threads driving
//! *different accelerators* never serialise on a platform-wide lock:
//!
//! * the virtual [`Clock`] is lock-free (atomic add / atomic max), so every
//!   charge still corresponds exactly to the clock movement it caused;
//! * each [`Device`] (memory, DMA engines, execution engine, streams) sits
//!   behind its **own** mutex — a kernel executing on `gpu0` holds only
//!   `gpu0`'s lock while `gpu1` copies data concurrently;
//! * the [`TimeLedger`], [`TransferLedger`] and disk/filesystem are leaf
//!   mutexes with tiny critical sections;
//! * the kernel registry is a read-mostly `RwLock`.
//!
//! **Lock order:** a device mutex may be held while touching the clock or a
//! ledger (leaf locks); leaf locks are never held while acquiring a device;
//! two device mutexes are never held at once. All methods take `&self`, so
//! the platform is `Send + Sync` and can be shared (e.g. in an `Arc`) by the
//! per-device shards of the GMAC runtime.
//!
//! For background transfer engines the H2D copy path is additionally split
//! into [`Platform::reserve_h2d`] (all virtual-time charging, called at
//! issue) and [`Platform::commit_h2d`] (the wall-clock byte landing, called
//! later from a worker thread). Both halves take only the device mutex and
//! leaf locks, so workers never need any caller-side lock.

use crate::bandwidth::{BytesPerSec, LinkModel};
use crate::device::{Device, DeviceId, GpuSpec, StreamId};
use crate::devmem::DevAddr;
use crate::disk::{Disk, SimFs};
use crate::engine::Reservation;
use crate::error::{SimError, SimResult};
use crate::kernel::{Args, Kernel, KernelArg, LaunchDims};
use crate::stats::{Category, Direction, TimeLedger, TransferLedger};
use crate::time::{Clock, Nanos, TimePoint};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Host CPU specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// CPU model name.
    pub name: &'static str,
    /// Sustained scalar/SSE throughput, FLOP/s (single thread).
    pub flops: f64,
    /// Sustained memory streaming bandwidth (initialisation/traversal).
    pub touch_bw: BytesPerSec,
    /// Cost of delivering one protection fault to user space (the paper's
    /// `SIGSEGV`-to-handler path).
    pub signal_cost: Nanos,
}

impl CpuSpec {
    /// AMD Dual-core Opteron 2222 at 3 GHz — the paper's host CPU (§5).
    pub fn opteron_2222() -> Self {
        CpuSpec {
            name: "AMD Opteron 2222",
            flops: 6e9,
            touch_bw: BytesPerSec::from_gbps(4.0),
            signal_cost: Nanos::from_micros(1),
        }
    }

    /// Time for the CPU to perform `flops` operations over `bytes` of memory
    /// (roofline).
    pub fn compute_time(&self, flops: f64, bytes: f64) -> Nanos {
        let c = flops.max(0.0) / self.flops;
        let m = bytes.max(0.0) / self.touch_bw.as_bps();
        Nanos::from_secs_f64(c.max(m))
    }

    /// [`Self::compute_time`] specialised to pure memory traffic. For
    /// non-negative `bytes` the roofline's compute leg is exactly `0.0` and
    /// `0.0f64.max(m) == m`, so this is bit-identical to
    /// `compute_time(0.0, bytes)` while skipping a division on the
    /// element-wise access hot path.
    pub fn touch_time(&self, bytes: f64) -> Nanos {
        Nanos::from_secs_f64(bytes.max(0.0) / self.touch_bw.as_bps())
    }
}

/// Whether a platform data transfer blocks the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// Host blocks until the transfer completes.
    Sync,
    /// Host continues; the caller receives the completion time.
    Async,
}

/// Default base address of device memory windows.
///
/// Mirrors the paper's observation (§4.2) that `cudaMalloc` returns ranges
/// outside the ELF program sections, which is what lets GMAC `mmap` system
/// memory at the *same* virtual addresses. All devices share this base, so a
/// multi-accelerator platform produces the overlapping ranges that force the
/// `adsmSafeAlloc` fallback.
pub const DEFAULT_DEVICE_BASE: u64 = 0x2_0000_0000;

/// Disk + simulated filesystem behind one mutex (the disk is a single
/// physical resource; contention on it is contention in the modelled system
/// too).
#[derive(Debug)]
struct IoSubsys {
    disk: Disk,
    fs: SimFs,
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Guard giving (mutable) access to one [`Device`]. Holding it keeps only
/// that device's mutex — other devices, the clock and the ledgers stay free.
#[derive(Debug)]
pub struct DeviceRef<'a>(MutexGuard<'a, Device>);

impl Deref for DeviceRef<'_> {
    type Target = Device;
    fn deref(&self) -> &Device {
        &self.0
    }
}

impl DerefMut for DeviceRef<'_> {
    fn deref_mut(&mut self) -> &mut Device {
        &mut self.0
    }
}

/// Guard giving access to the transfer ledger.
#[derive(Debug)]
pub struct TransfersRef<'a>(MutexGuard<'a, TransferLedger>);

impl Deref for TransfersRef<'_> {
    type Target = TransferLedger;
    fn deref(&self) -> &TransferLedger {
        &self.0
    }
}

impl DerefMut for TransfersRef<'_> {
    fn deref_mut(&mut self) -> &mut TransferLedger {
        &mut self.0
    }
}

/// Guard giving access to the simulated filesystem.
#[derive(Debug)]
pub struct FsRef<'a>(MutexGuard<'a, IoSubsys>);

impl Deref for FsRef<'_> {
    type Target = SimFs;
    fn deref(&self) -> &SimFs {
        &self.0.fs
    }
}

impl DerefMut for FsRef<'_> {
    fn deref_mut(&mut self) -> &mut SimFs {
        &mut self.0.fs
    }
}

/// The simulated platform.
pub struct Platform {
    clock: Clock,
    cpu: CpuSpec,
    devices: Vec<Mutex<Device>>,
    io: Mutex<IoSubsys>,
    ledger: crate::stats::AtomicTimeLedger,
    transfers: Mutex<TransferLedger>,
    kernels: RwLock<HashMap<String, Arc<dyn Kernel>>>,
    /// Armed fault-injection plan (`None` in production — one relaxed-path
    /// mutex probe per interceptable op). See [`crate::faults`].
    faults: Mutex<Option<crate::faults::FaultPlan>>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("now", &self.clock.now())
            .field("cpu", &self.cpu.name)
            .field("devices", &self.devices.len())
            .field(
                "kernels",
                &self
                    .kernels
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len(),
            )
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Starts building a custom platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// The paper's experimental machine (§5): dual Opteron 2222 host, one
    /// NVIDIA G280 with 1 GiB of device memory on PCIe 2.0 x16, SATA disk.
    pub fn desktop_g280() -> Self {
        Self::builder().build()
    }

    /// A low-cost system where the CPU and a weaker accelerator share one
    /// memory controller (paper §3.1: Intel GMA / AMD Fusion class). The
    /// same application code runs unchanged; "transfers" cross shared DRAM
    /// instead of PCIe — the data-centric model's architecture-independence
    /// benefit.
    pub fn fused_apu() -> Self {
        let spec = GpuSpec {
            name: "Integrated GPU",
            flops: 120e9,
            mem_bw: BytesPerSec::from_gbps(6.4),
            ..GpuSpec::g280()
        };
        Self::builder()
            .clear_devices()
            .add_device_with_links(
                spec,
                512 << 20,
                DEFAULT_DEVICE_BASE,
                LinkModel::integrated_shared_memory(),
                LinkModel::integrated_shared_memory(),
            )
            .build()
    }

    /// Like [`Self::desktop_g280`] but with `n` G280 devices whose memory
    /// windows *overlap* (same base address), as happens with multiple GPUs
    /// in the paper's §4.2 discussion.
    pub fn desktop_multi_gpu(n: usize) -> Self {
        let mut b = Self::builder();
        for _ in 1..n {
            b = b.add_device(GpuSpec::g280(), 1 << 30, DEFAULT_DEVICE_BASE);
        }
        b.build()
    }

    // ----- time ------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> TimePoint {
        self.clock.now()
    }

    /// Virtual time elapsed since simulation start.
    pub fn elapsed(&self) -> Nanos {
        self.now().since(TimePoint::ZERO)
    }

    /// Advances the clock by `dur`, charging it to `cat`.
    pub fn spend(&self, cat: Category, dur: Nanos) {
        self.clock.advance(dur);
        self.ledger.charge(cat, dur);
    }

    /// Blocks the host until `t`, charging the waited time to `cat`.
    ///
    /// With concurrent shards the clock may already have moved past `t`
    /// (another device's thread advanced it); exactly the movement *this*
    /// call caused is charged, so the ledger always partitions elapsed time.
    pub fn wait_for(&self, t: TimePoint, cat: Category) {
        let waited = self.clock.wait_until(t);
        if !waited.is_zero() {
            self.ledger.charge(cat, waited);
        }
    }

    /// Charges application CPU compute: a roofline over `flops` and `bytes`.
    pub fn cpu_compute(&self, flops: f64, bytes: f64) {
        let dur = self.cpu.compute_time(flops, bytes);
        self.spend(Category::Cpu, dur);
    }

    /// Charges the CPU for streaming over `bytes` of memory.
    pub fn cpu_touch(&self, bytes: u64) {
        let dur = self.cpu.touch_time(bytes as f64);
        self.spend(Category::Cpu, dur);
    }

    // ----- introspection ----------------------------------------------------

    /// Host CPU specification.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Number of accelerators.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn lock_device(&self, id: DeviceId) -> SimResult<MutexGuard<'_, Device>> {
        self.devices
            .get(id.0)
            .map(lock_ok)
            .ok_or(SimError::NoSuchDevice(id.0))
    }

    /// Accelerator by id (a guard holding that device's mutex).
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for out-of-range ids.
    pub fn device(&self, id: DeviceId) -> SimResult<DeviceRef<'_>> {
        Ok(DeviceRef(self.lock_device(id)?))
    }

    /// Accelerator by id, mutable (same guard as [`Self::device`]).
    ///
    /// # Errors
    /// [`SimError::NoSuchDevice`] for out-of-range ids.
    pub fn device_mut(&self, id: DeviceId) -> SimResult<DeviceRef<'_>> {
        Ok(DeviceRef(self.lock_device(id)?))
    }

    /// Execution-time ledger (Figure 10 categories).
    pub fn ledger(&self) -> TimeLedger {
        self.ledger.snapshot()
    }

    /// Transfer ledger (Figure 8 input).
    pub fn transfers(&self) -> TransfersRef<'_> {
        TransfersRef(lock_ok(&self.transfers))
    }

    /// Transfer ledger, mutable (the transfer planner attributes coalesced
    /// block counts to the jobs it issues).
    pub fn transfers_mut(&self) -> TransfersRef<'_> {
        TransfersRef(lock_ok(&self.transfers))
    }

    /// Simulated filesystem (for preparing workload inputs without charging
    /// simulated time).
    pub fn fs(&self) -> FsRef<'_> {
        FsRef(lock_ok(&self.io))
    }

    /// Simulated filesystem, mutable.
    pub fn fs_mut(&self) -> FsRef<'_> {
        FsRef(lock_ok(&self.io))
    }

    // ----- kernels ----------------------------------------------------------

    /// Registers a kernel for launching by name.
    pub fn register_kernel(&self, kernel: Arc<dyn Kernel>) {
        self.kernels
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(kernel.name().to_string(), kernel);
    }

    /// Looks up a registered kernel.
    ///
    /// # Errors
    /// [`SimError::UnknownKernel`] when not registered.
    pub fn kernel(&self, name: &str) -> SimResult<Arc<dyn Kernel>> {
        self.kernels
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::UnknownKernel(name.to_string()))
    }

    /// Launches a registered kernel on `stream` of `dev`. Returns the kernel
    /// completion time; the host only pays the launch cost.
    ///
    /// # Errors
    /// Fails for unknown devices/kernels/streams or kernel-side errors.
    pub fn launch(
        &self,
        dev: DeviceId,
        stream: StreamId,
        kernel_name: &str,
        dims: LaunchDims,
        args: &[KernelArg],
    ) -> SimResult<TimePoint> {
        let kernel = self.kernel(kernel_name)?;
        self.launch_direct(dev, stream, kernel.as_ref(), dims, args)
    }

    /// Launches a kernel object directly (no registry lookup).
    ///
    /// The kernel body executes under the target device's mutex only, so
    /// kernels on different accelerators run concurrently in wall-clock
    /// terms.
    ///
    /// # Errors
    /// Fails for unknown devices/streams or kernel-side errors.
    pub fn launch_direct(
        &self,
        dev: DeviceId,
        stream: StreamId,
        kernel: &dyn Kernel,
        dims: LaunchDims,
        args: &[KernelArg],
    ) -> SimResult<TimePoint> {
        let launch_cost = self.lock_device(dev)?.spec().launch_cost;
        self.spend(Category::CudaLaunch, launch_cost);
        let now = self.now();
        let mut device = self.lock_device(dev)?;
        let profile = kernel.execute(device.mem_mut(), dims, Args::new(args))?;
        let ktime = device.spec().kernel_time(profile);
        let after = device.stream_horizon(stream)?;
        let r = device.exec_engine_mut().reserve_after(now, after, ktime);
        device.set_stream_horizon(stream, r.end)?;
        Ok(r.end)
    }

    /// Blocks until all work on `stream` of `dev` has finished; waiting time
    /// is charged to the `Gpu` category.
    ///
    /// # Errors
    /// Fails for unknown devices or streams.
    pub fn sync_stream(&self, dev: DeviceId, stream: StreamId) -> SimResult<()> {
        let sync_cost = self.lock_device(dev)?.spec().sync_cost;
        self.spend(Category::Sync, sync_cost);
        let horizon = self.lock_device(dev)?.stream_horizon(stream)?;
        self.wait_for(horizon, Category::Gpu);
        Ok(())
    }

    /// Blocks until the device is fully quiescent (all streams, all DMA).
    ///
    /// # Errors
    /// Fails for unknown devices.
    pub fn sync_device(&self, dev: DeviceId) -> SimResult<()> {
        let sync_cost = self.lock_device(dev)?.spec().sync_cost;
        self.spend(Category::Sync, sync_cost);
        let horizon = self.lock_device(dev)?.quiescent_at();
        self.wait_for(horizon, Category::Gpu);
        Ok(())
    }

    // ----- fault injection ---------------------------------------------------

    /// Arms `plan`'s failpoints: subsequent [`Self::dev_alloc`],
    /// [`Self::reserve_h2d`] and [`Self::commit_h2d`] calls consult it,
    /// with per-op call counters starting at zero. Replaces any previously
    /// armed plan. See [`crate::faults`] for the determinism contract.
    pub fn arm_faults(&self, plan: crate::faults::FaultPlan) {
        *lock_ok(&self.faults) = Some(plan);
    }

    /// Disarms fault injection. Subsequent operations run normally.
    pub fn disarm_faults(&self) {
        *lock_ok(&self.faults) = None;
    }

    /// Failpoint probe, consulted at the top of each interceptable
    /// operation — before any time charge or state change, so an injected
    /// failure is a clean early error.
    fn check_fault(&self, op: crate::faults::FaultOp, dev: DeviceId) -> SimResult<()> {
        if let Some(plan) = lock_ok(&self.faults).as_mut() {
            if let Some(nth) = plan.should_fail(op) {
                return Err(SimError::FaultInjected {
                    op,
                    device: dev.0,
                    nth,
                });
            }
        }
        Ok(())
    }

    // ----- device memory ----------------------------------------------------

    /// Allocates device memory, charging the accelerator-API cost.
    ///
    /// # Errors
    /// Fails for unknown devices or when device memory is exhausted; an
    /// armed [`crate::FaultPlan`] may inject
    /// [`SimError::FaultInjected`] before any charge.
    pub fn dev_alloc(&self, dev: DeviceId, size: u64) -> SimResult<DevAddr> {
        self.check_fault(crate::faults::FaultOp::DevAlloc, dev)?;
        let mut device = self.lock_device(dev)?;
        let cost = device.spec().malloc_cost;
        self.spend(Category::CudaMalloc, cost);
        device.mem_mut().alloc(size)
    }

    /// Frees device memory, charging the accelerator-API cost.
    ///
    /// # Errors
    /// Fails for unknown devices or non-allocation addresses.
    pub fn dev_free(&self, dev: DeviceId, addr: DevAddr) -> SimResult<()> {
        let mut device = self.lock_device(dev)?;
        let cost = device.spec().free_cost;
        self.spend(Category::CudaFree, cost);
        device.mem_mut().free(addr)
    }

    // ----- transfers ---------------------------------------------------------

    /// Copies `src` into device memory at `dst`. Returns the transfer
    /// completion time. Synchronous copies block and charge `Copy`.
    ///
    /// # Errors
    /// Fails for unknown devices or out-of-bounds destination ranges.
    pub fn copy_h2d(
        &self,
        dev: DeviceId,
        dst: DevAddr,
        src: &[u8],
        mode: CopyMode,
    ) -> SimResult<TimePoint> {
        let now = self.now();
        let r: Reservation = {
            let mut device = self.lock_device(dev)?;
            let t = device.link_h2d().transfer_time(src.len() as u64);
            device.mem_mut().write(dst, src)?;
            device.h2d_engine_mut().reserve(now, t)
        };
        lock_ok(&self.transfers).record(Direction::HostToDevice, src.len() as u64);
        if mode == CopyMode::Sync {
            self.wait_for(r.end, Category::Copy);
        }
        Ok(r.end)
    }

    /// First half of [`Self::copy_h2d`], split out for background transfer
    /// engines: validates the destination range, reserves the H2D DMA
    /// timeline, records the job in the transfer ledger and — for
    /// [`CopyMode::Sync`] — charges the virtual wait, exactly as `copy_h2d`
    /// does. The *only* thing it does not do is land the bytes in device
    /// memory; the caller must follow up with [`Self::commit_h2d`] carrying
    /// the same byte count before anything reads the destination range.
    ///
    /// Splitting reservation from commit lets a worker thread perform the
    /// wall-clock memory write later without perturbing virtual time: all
    /// clock and ledger charges happen here, at issue, so a run using the
    /// split is byte-identical in virtual time to one using `copy_h2d`.
    ///
    /// # Errors
    /// Fails for unknown devices or out-of-bounds destination ranges.
    pub fn reserve_h2d(
        &self,
        dev: DeviceId,
        dst: DevAddr,
        len: u64,
        mode: CopyMode,
    ) -> SimResult<TimePoint> {
        self.check_fault(crate::faults::FaultOp::ReserveH2d, dev)?;
        let now = self.now();
        let r: Reservation = {
            let mut device = self.lock_device(dev)?;
            device.mem().slice(dst, len)?; // surface bounds errors at issue, not in the worker
            let t = device.link_h2d().transfer_time(len);
            device.h2d_engine_mut().reserve(now, t)
        };
        lock_ok(&self.transfers).record(Direction::HostToDevice, len);
        if mode == CopyMode::Sync {
            self.wait_for(r.end, Category::Copy);
        }
        Ok(r.end)
    }

    /// Second half of the [`Self::reserve_h2d`] split: lands `src` at `dst`
    /// in device memory with **no** virtual-time side effects (the
    /// reservation already paid for the transfer). Takes only the device
    /// mutex, so it is safe to call from a background worker thread that
    /// holds no caller-side locks.
    ///
    /// # Errors
    /// Fails for unknown devices or out-of-bounds destination ranges.
    pub fn commit_h2d(&self, dev: DeviceId, dst: DevAddr, src: &[u8]) -> SimResult<()> {
        self.check_fault(crate::faults::FaultOp::CommitH2d, dev)?;
        self.lock_device(dev)?.mem_mut().write(dst, src)
    }

    /// Copies device memory at `src` into `out`. Returns the transfer
    /// completion time. Synchronous copies block and charge `Copy`.
    ///
    /// # Errors
    /// Fails for unknown devices or out-of-bounds source ranges.
    pub fn copy_d2h(
        &self,
        dev: DeviceId,
        src: DevAddr,
        out: &mut [u8],
        mode: CopyMode,
    ) -> SimResult<TimePoint> {
        let now = self.now();
        let r = {
            let mut device = self.lock_device(dev)?;
            let t = device.link_d2h().transfer_time(out.len() as u64);
            device.mem().read(src, out)?;
            device.d2h_engine_mut().reserve(now, t)
        };
        lock_ok(&self.transfers).record(Direction::DeviceToHost, out.len() as u64);
        if mode == CopyMode::Sync {
            self.wait_for(r.end, Category::Copy);
        }
        Ok(r.end)
    }

    /// Blocks the host until the DMA engine of `dir` on `dev` has drained,
    /// charging the waited time to `Copy`. This is the explicit join point
    /// asynchronous transfer plans synchronise on.
    ///
    /// # Errors
    /// Fails for unknown devices.
    pub fn join_dma(&self, dev: DeviceId, dir: Direction) -> SimResult<()> {
        let horizon = self.lock_device(dev)?.dma_engine(dir).busy_until();
        self.wait_for(horizon, Category::Copy);
        Ok(())
    }

    /// Device-side memset (`cudaMemset` equivalent): fills `len` bytes at
    /// `addr` using the device's own memory bandwidth.
    ///
    /// # Errors
    /// Fails for unknown devices or out-of-bounds ranges.
    pub fn dev_memset(&self, dev: DeviceId, addr: DevAddr, value: u8, len: u64) -> SimResult<()> {
        let now = self.now();
        let r = {
            let mut device = self.lock_device(dev)?;
            device.mem_mut().fill(addr, value, len)?;
            let t = device.spec().kernel_overhead
                + Nanos::from_secs_f64(len as f64 / device.spec().mem_bw.as_bps());
            device.exec_engine_mut().reserve(now, t)
        };
        self.wait_for(r.end, Category::Copy);
        Ok(())
    }

    // ----- disk ---------------------------------------------------------------

    /// Reads from a simulated file, blocking for the modelled disk time
    /// (charged to `IoRead`). Returns bytes read.
    ///
    /// # Errors
    /// [`SimError::FileNotFound`] when the file does not exist.
    pub fn file_read(&self, name: &str, offset: u64, out: &mut [u8]) -> SimResult<usize> {
        let now = self.now();
        let (n, r) = {
            let mut io = lock_ok(&self.io);
            let n = io.fs.read_at(name, offset, out)?;
            let t = io.disk.read_time(n as u64);
            let r = io.disk.engine_mut().reserve(now, t);
            (n, r)
        };
        self.wait_for(r.end, Category::IoRead);
        Ok(n)
    }

    /// Writes to a simulated file, blocking for the modelled disk time
    /// (charged to `IoWrite`). Returns bytes written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn file_write(&self, name: &str, offset: u64, src: &[u8]) -> SimResult<usize> {
        let now = self.now();
        let (n, r) = {
            let mut io = lock_ok(&self.io);
            let n = io.fs.write_at(name, offset, src)?;
            let t = io.disk.write_time(n as u64);
            let r = io.disk.engine_mut().reserve(now, t);
            (n, r)
        };
        self.wait_for(r.end, Category::IoWrite);
        Ok(n)
    }

    /// Length of a simulated file.
    ///
    /// # Errors
    /// [`SimError::FileNotFound`] when the file does not exist.
    pub fn file_len(&self, name: &str) -> SimResult<u64> {
        lock_ok(&self.io).fs.len(name)
    }
}

/// Builds a [`Platform`].
#[derive(Debug)]
pub struct PlatformBuilder {
    cpu: CpuSpec,
    disk: Disk,
    devices: Vec<(GpuSpec, u64, u64, LinkModel, LinkModel)>,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlatformBuilder {
    /// Starts from the paper's machine: Opteron host, one G280 (1 GiB),
    /// PCIe 2.0 x16, SATA disk.
    pub fn new() -> Self {
        PlatformBuilder {
            cpu: CpuSpec::opteron_2222(),
            disk: Disk::sata_7200(),
            devices: vec![(
                GpuSpec::g280(),
                1 << 30,
                DEFAULT_DEVICE_BASE,
                LinkModel::pcie2_x16_h2d(),
                LinkModel::pcie2_x16_d2h(),
            )],
        }
    }

    /// Replaces the host CPU model.
    pub fn cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Replaces the disk model.
    pub fn disk(mut self, disk: Disk) -> Self {
        self.disk = disk;
        self
    }

    /// Adds an accelerator with `mem_size` bytes of memory based at `base`,
    /// attached via PCIe 2.0 x16.
    pub fn add_device(self, spec: GpuSpec, mem_size: u64, base: u64) -> Self {
        self.add_device_with_links(
            spec,
            mem_size,
            base,
            LinkModel::pcie2_x16_h2d(),
            LinkModel::pcie2_x16_d2h(),
        )
    }

    /// Adds an accelerator with explicit host↔device link models (e.g. the
    /// integrated shared-memory case).
    pub fn add_device_with_links(
        mut self,
        spec: GpuSpec,
        mem_size: u64,
        base: u64,
        link_h2d: LinkModel,
        link_d2h: LinkModel,
    ) -> Self {
        self.devices
            .push((spec, mem_size, base, link_h2d, link_d2h));
        self
    }

    /// Removes all accelerators (to build a fully custom device list).
    pub fn clear_devices(mut self) -> Self {
        self.devices.clear();
        self
    }

    /// Finalises the platform.
    ///
    /// # Panics
    /// Panics if no accelerator was configured.
    pub fn build(self) -> Platform {
        assert!(
            !self.devices.is_empty(),
            "platform needs at least one accelerator"
        );
        let devices = self
            .devices
            .into_iter()
            .enumerate()
            .map(|(i, (spec, size, base, h2d, d2h))| {
                Mutex::new(Device::new(DeviceId(i), spec, base, size, h2d, d2h))
            })
            .collect();
        Platform {
            clock: Clock::new(),
            cpu: self.cpu,
            devices,
            io: Mutex::new(IoSubsys {
                disk: self.disk,
                fs: SimFs::new(),
            }),
            ledger: crate::stats::AtomicTimeLedger::default(),
            transfers: Mutex::new(TransferLedger::new()),
            kernels: RwLock::new(HashMap::new()),
            faults: Mutex::new(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devmem::DeviceMemory;
    use crate::kernel::KernelProfile;

    const DEV: DeviceId = DeviceId(0);

    struct NullKernel;
    impl Kernel for NullKernel {
        fn name(&self) -> &str {
            "null"
        }
        fn execute(
            &self,
            _mem: &mut DeviceMemory,
            dims: LaunchDims,
            _args: Args<'_>,
        ) -> SimResult<KernelProfile> {
            // 10 flops per thread, no memory traffic.
            Ok(KernelProfile::new(dims.total_threads() as f64 * 10.0, 0.0))
        }
    }

    #[test]
    fn platform_is_send_and_sync() {
        // The GMAC runtime shares one Platform across per-device shards
        // behind an `Arc`; every method takes `&self` over interior locks,
        // so the whole platform must be `Send + Sync`.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Platform>();
    }

    #[test]
    fn desktop_platform_shape() {
        let p = Platform::desktop_g280();
        assert_eq!(p.device_count(), 1);
        assert_eq!(p.device(DEV).unwrap().mem().capacity(), 1 << 30);
        assert!(p.device(DeviceId(9)).is_err());
        assert_eq!(p.elapsed(), Nanos::ZERO);
    }

    #[test]
    fn multi_gpu_windows_overlap() {
        let p = Platform::desktop_multi_gpu(2);
        assert_eq!(p.device_count(), 2);
        assert_eq!(
            p.device(DeviceId(0)).unwrap().mem().base(),
            p.device(DeviceId(1)).unwrap().mem().base(),
            "multiple devices expose overlapping ranges (forces safe-alloc)"
        );
    }

    #[test]
    fn sync_copy_blocks_and_charges_copy() {
        let p = Platform::desktop_g280();
        let a = p.dev_alloc(DEV, 1 << 20).unwrap();
        let t0 = p.now();
        p.copy_h2d(DEV, a, &vec![7u8; 1 << 20], CopyMode::Sync)
            .unwrap();
        assert!(p.now() > t0);
        assert!(p.ledger().get(Category::Copy) > Nanos::ZERO);
        assert_eq!(p.transfers().h2d_bytes, 1 << 20);
        let mut out = vec![0u8; 1 << 20];
        p.copy_d2h(DEV, a, &mut out, CopyMode::Sync).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        assert_eq!(p.transfers().d2h_bytes, 1 << 20);
    }

    #[test]
    fn reserve_commit_split_matches_copy_h2d() {
        // Two identical platforms: one uses the monolithic copy, the other
        // the reserve/commit split a background worker would use. Virtual
        // time, ledgers and final device bytes must be indistinguishable.
        let mono = Platform::desktop_g280();
        let split = Platform::desktop_g280();
        let src = vec![9u8; 1 << 20];
        let a = mono.dev_alloc(DEV, 1 << 20).unwrap();
        let b = split.dev_alloc(DEV, 1 << 20).unwrap();
        let t1 = mono.copy_h2d(DEV, a, &src, CopyMode::Sync).unwrap();
        let t2 = split.reserve_h2d(DEV, b, 1 << 20, CopyMode::Sync).unwrap();
        split.commit_h2d(DEV, b, &src).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(mono.now(), split.now());
        for cat in Category::ALL {
            assert_eq!(mono.ledger().get(cat), split.ledger().get(cat), "{cat:?}");
        }
        assert_eq!(*mono.transfers(), *split.transfers());
        let mut out = vec![0u8; 1 << 20];
        split.device(DEV).unwrap().mem().read(b, &mut out).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn reserve_h2d_surfaces_bounds_errors_at_issue() {
        let p = Platform::desktop_g280();
        let (base, cap) = {
            let d = p.device(DEV).unwrap();
            (d.mem().base(), d.mem().capacity())
        };
        // A range running off the end of the memory window: the reservation
        // (not the later commit) reports the overrun, so a worker thread
        // never sees it.
        let tail = base.add(cap - 16);
        assert!(p.reserve_h2d(DEV, tail, 4096, CopyMode::Async).is_err());
        assert!(p.commit_h2d(DEV, tail, &[0u8; 4096]).is_err());
    }

    #[test]
    fn async_copy_does_not_block() {
        let p = Platform::desktop_g280();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        let before = p.now();
        let done = p.copy_h2d(DEV, a, &[1u8; 4096], CopyMode::Async).unwrap();
        assert_eq!(p.now(), before, "async copy returns immediately");
        assert!(done > before);
        // Waiting later charges the chosen category.
        p.wait_for(done, Category::Copy);
        assert_eq!(p.now(), done);
    }

    #[test]
    fn overlapping_async_copies_pipeline_on_the_engine() {
        let p = Platform::desktop_g280();
        let a = p.dev_alloc(DEV, 64 << 10).unwrap();
        let buf = vec![0u8; 32 << 10];
        let end1 = p.copy_h2d(DEV, a, &buf, CopyMode::Async).unwrap();
        let end2 = p
            .copy_h2d(DEV, a.add(32 << 10), &buf, CopyMode::Async)
            .unwrap();
        let single = p.device(DEV).unwrap().link_h2d().transfer_time(32 << 10);
        assert_eq!(
            end2.since(end1),
            single,
            "second transfer queues behind the first"
        );
    }

    #[test]
    fn kernel_launch_is_async_and_sync_waits() {
        let p = Platform::desktop_g280();
        p.register_kernel(Arc::new(NullKernel));
        let dims = LaunchDims::for_elements(1 << 20, 256);
        let end = p.launch(DEV, StreamId(0), "null", dims, &[]).unwrap();
        assert!(p.now() < end, "host returns before the kernel finishes");
        assert!(p.ledger().get(Category::CudaLaunch) > Nanos::ZERO);
        p.sync_stream(DEV, StreamId(0)).unwrap();
        assert!(p.now() >= end);
        assert!(p.ledger().get(Category::Gpu) > Nanos::ZERO);
    }

    #[test]
    fn stream_ordering_serialises_kernels() {
        let p = Platform::desktop_g280();
        p.register_kernel(Arc::new(NullKernel));
        let dims = LaunchDims::for_elements(1 << 20, 256);
        let end1 = p.launch(DEV, StreamId(0), "null", dims, &[]).unwrap();
        let end2 = p.launch(DEV, StreamId(0), "null", dims, &[]).unwrap();
        assert!(end2 > end1);
        // A second stream can overlap... but on the same exec engine it
        // still serialises (single execution engine per device).
        let s1 = p.device_mut(DEV).unwrap().create_stream();
        let end3 = p.launch(DEV, s1, "null", dims, &[]).unwrap();
        assert!(end3 > end2);
    }

    #[test]
    fn unknown_kernel_is_error() {
        let p = Platform::desktop_g280();
        assert!(matches!(
            p.launch(DEV, StreamId(0), "nope", LaunchDims::default(), &[]),
            Err(SimError::UnknownKernel(_))
        ));
    }

    #[test]
    fn dev_alloc_charges_api_cost() {
        let p = Platform::desktop_g280();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        assert!(p.ledger().get(Category::CudaMalloc) > Nanos::ZERO);
        p.dev_free(DEV, a).unwrap();
        assert!(p.ledger().get(Category::CudaFree) > Nanos::ZERO);
    }

    #[test]
    fn file_io_charges_io_categories() {
        let p = Platform::desktop_g280();
        p.fs_mut().create("in.dat", vec![5u8; 4096]);
        let mut buf = vec![0u8; 4096];
        let n = p.file_read("in.dat", 0, &mut buf).unwrap();
        assert_eq!(n, 4096);
        assert!(
            p.ledger().get(Category::IoRead) >= Nanos::from_micros(150),
            "overhead + transfer"
        );
        p.file_write("out.dat", 0, &buf).unwrap();
        assert!(p.ledger().get(Category::IoWrite) > Nanos::ZERO);
        assert_eq!(p.file_len("out.dat").unwrap(), 4096);
    }

    #[test]
    fn cpu_compute_charges_cpu_category() {
        let p = Platform::desktop_g280();
        p.cpu_compute(6e9, 0.0); // one second of flops
        assert!((p.ledger().get(Category::Cpu).as_secs_f64() - 1.0).abs() < 1e-6);
        p.cpu_touch(4_000_000_000); // one second of streaming at 4 GB/s
        assert!((p.ledger().get(Category::Cpu).as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dev_memset_fills_and_charges() {
        let p = Platform::desktop_g280();
        let a = p.dev_alloc(DEV, 4096).unwrap();
        p.dev_memset(DEV, a, 0x3C, 4096).unwrap();
        assert!(p
            .device(DEV)
            .unwrap()
            .mem()
            .slice(a, 4096)
            .unwrap()
            .iter()
            .all(|&b| b == 0x3C));
    }

    #[test]
    fn ledger_partitions_elapsed_time() {
        // Every charge the platform makes corresponds to clock movement, so
        // the ledger total equals elapsed virtual time.
        let p = Platform::desktop_g280();
        p.register_kernel(Arc::new(NullKernel));
        let a = p.dev_alloc(DEV, 1 << 16).unwrap();
        p.cpu_touch(1 << 16);
        p.copy_h2d(DEV, a, &vec![1u8; 1 << 16], CopyMode::Sync)
            .unwrap();
        p.launch(
            DEV,
            StreamId(0),
            "null",
            LaunchDims::for_elements(1 << 16, 256),
            &[],
        )
        .unwrap();
        p.sync_stream(DEV, StreamId(0)).unwrap();
        let mut out = vec![0u8; 1 << 16];
        p.copy_d2h(DEV, a, &mut out, CopyMode::Sync).unwrap();
        p.dev_free(DEV, a).unwrap();
        assert_eq!(p.ledger().total(), p.elapsed());
    }

    #[test]
    fn concurrent_device_traffic_keeps_the_ledger_partitioned() {
        // Two threads each hammer their own device; the lock-free clock
        // guarantees that the sum of all charges still equals total elapsed
        // virtual time (every charge is exactly the movement it caused).
        let p = Arc::new(Platform::desktop_multi_gpu(2));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let dev = DeviceId(i);
                    let a = p.dev_alloc(dev, 1 << 18).unwrap();
                    let buf = vec![i as u8; 1 << 18];
                    for _ in 0..8 {
                        p.copy_h2d(dev, a, &buf, CopyMode::Sync).unwrap();
                        let mut out = vec![0u8; 1 << 18];
                        p.copy_d2h(dev, a, &mut out, CopyMode::Sync).unwrap();
                        assert!(out.iter().all(|&b| b == i as u8));
                    }
                    p.dev_free(dev, a).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.ledger().total(), p.elapsed());
        assert_eq!(p.transfers().h2d_bytes, 2 * 8 * (1 << 18));
    }
}
