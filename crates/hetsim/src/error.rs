//! Error types for the platform simulator.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulated platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Device memory allocation failed: not enough contiguous free space.
    OutOfDeviceMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free (possibly fragmented).
        free: u64,
    },
    /// An address did not correspond to a live allocation.
    InvalidDeviceAddress(u64),
    /// A free targeted an address that is not an allocation start.
    NotAnAllocation(u64),
    /// Access touched bytes outside the referenced allocation.
    OutOfBounds {
        /// First byte accessed.
        addr: u64,
        /// Length of the access.
        len: u64,
    },
    /// Referenced device does not exist.
    NoSuchDevice(usize),
    /// Referenced stream does not exist.
    NoSuchStream(u32),
    /// Referenced kernel has not been registered.
    UnknownKernel(String),
    /// A simulated file was not found in the simulated filesystem.
    FileNotFound(String),
    /// Kernel argument list did not match the kernel's expectation.
    BadKernelArgs(String),
    /// An armed [`crate::FaultPlan`] failpoint fired (fault-injection
    /// testing): the named operation failed deterministically before any
    /// state change or time charge.
    FaultInjected {
        /// Which operation the failpoint intercepted.
        op: crate::faults::FaultOp,
        /// Device the operation targeted.
        device: usize,
        /// The plan-wide ordinal of the intercepted operation (0-based
        /// count of `op`-kind calls since the plan was armed).
        nth: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfDeviceMemory { requested, free } => {
                write!(
                    f,
                    "out of device memory: requested {requested} bytes, {free} free"
                )
            }
            SimError::InvalidDeviceAddress(a) => write!(f, "invalid device address {a:#x}"),
            SimError::NotAnAllocation(a) => {
                write!(f, "address {a:#x} is not the start of an allocation")
            }
            SimError::OutOfBounds { addr, len } => {
                write!(f, "access at {addr:#x} length {len} is out of bounds")
            }
            SimError::NoSuchDevice(id) => write!(f, "no such device: {id}"),
            SimError::NoSuchStream(id) => write!(f, "no such stream: {id}"),
            SimError::UnknownKernel(name) => write!(f, "unknown kernel: {name}"),
            SimError::FileNotFound(name) => write!(f, "simulated file not found: {name}"),
            SimError::BadKernelArgs(msg) => write!(f, "bad kernel arguments: {msg}"),
            SimError::FaultInjected { op, device, nth } => {
                write!(f, "injected fault: {op} #{nth} on device {device}")
            }
        }
    }
}

impl Error for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::OutOfDeviceMemory {
            requested: 10,
            free: 5,
        };
        assert_eq!(
            e.to_string(),
            "out of device memory: requested 10 bytes, 5 free"
        );
        assert_eq!(SimError::NoSuchDevice(3).to_string(), "no such device: 3");
        assert_eq!(
            SimError::InvalidDeviceAddress(0xdead).to_string(),
            "invalid device address 0xdead"
        );
        assert_eq!(
            SimError::FaultInjected {
                op: crate::faults::FaultOp::CommitH2d,
                device: 1,
                nth: 3,
            }
            .to_string(),
            "injected fault: commit-h2d #3 on device 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
