//! Simulated accelerator ("device") memory: a flat physical arena plus a
//! first-fit free-list allocator with coalescing.
//!
//! The paper's GMAC obtains device addresses from `cudaMalloc()`; this module
//! is the stand-in. Addresses live in a configurable window (the default
//! mimics the range CUDA returned on the paper's platform, outside typical
//! ELF sections — §4.2), which is what makes the unified-address `mmap` trick
//! work and, for multiple devices with the *same* base, what forces the
//! `adsmSafeAlloc` fallback.

use crate::error::{SimError, SimResult};
use std::collections::BTreeMap;

/// An address in a device's physical memory window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DevAddr(pub u64);

impl DevAddr {
    /// Byte offset of this address relative to another.
    pub fn offset_from(self, base: DevAddr) -> u64 {
        self.0 - base.0
    }

    /// Address advanced by `bytes`.
    // Named after pointer::add, which this models; an `Add` impl would read
    // as numeric addition at dozens of call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> DevAddr {
        DevAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for DevAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Allocation granularity of the device allocator (matches CUDA's 256-byte
/// alignment on the G280 generation).
pub const DEV_ALLOC_ALIGN: u64 = 256;

/// Device physical memory: arena + allocator + live-allocation registry.
#[derive(Debug)]
pub struct DeviceMemory {
    base: u64,
    data: Vec<u8>,
    /// Free regions: offset -> length, non-adjacent, non-overlapping.
    free: BTreeMap<u64, u64>,
    /// Live allocations: offset -> length.
    live: BTreeMap<u64, u64>,
}

impl DeviceMemory {
    /// Creates a device memory of `size` bytes whose addresses start at
    /// `base`.
    ///
    /// # Panics
    /// Panics if `size` is zero or not aligned to [`DEV_ALLOC_ALIGN`].
    pub fn new(base: u64, size: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(DEV_ALLOC_ALIGN),
            "bad device memory size"
        );
        let mut free = BTreeMap::new();
        free.insert(0, size);
        DeviceMemory {
            base,
            data: vec![0u8; size as usize],
            free,
            live: BTreeMap::new(),
        }
    }

    /// Base address of the memory window.
    pub fn base(&self) -> DevAddr {
        DevAddr(self.base)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total bytes currently free (may be fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Total bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.capacity() - self.free_bytes()
    }

    /// Size of the largest contiguous free region. This is the quantity an
    /// allocation actually needs (first-fit succeeds iff some region is
    /// large enough); eviction policies compare it against the requested
    /// size to decide when enough victims have been released.
    pub fn largest_free_block(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Number of disjoint free regions (1 when fully coalesced, 0 when
    /// full).
    pub fn free_region_count(&self) -> usize {
        self.free.len()
    }

    /// External fragmentation in `[0, 1]`: the fraction of free bytes *not*
    /// usable by a single worst-case allocation
    /// (`1 - largest_free_block / free_bytes`; 0 when nothing is free).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / free as f64
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `size` bytes (rounded up to [`DEV_ALLOC_ALIGN`]) using
    /// first-fit.
    ///
    /// # Errors
    /// Returns [`SimError::OutOfDeviceMemory`] when no free region is large
    /// enough.
    pub fn alloc(&mut self, size: u64) -> SimResult<DevAddr> {
        let size = round_up(size.max(1), DEV_ALLOC_ALIGN);
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&off, &len)| (off, len));
        let (off, len) = slot.ok_or(SimError::OutOfDeviceMemory {
            requested: size,
            free: self.free_bytes(),
        })?;
        self.free.remove(&off);
        if len > size {
            self.free.insert(off + size, len - size);
        }
        self.live.insert(off, size);
        Ok(DevAddr(self.base + off))
    }

    /// Frees an allocation previously returned by [`Self::alloc`].
    ///
    /// # Errors
    /// Returns [`SimError::NotAnAllocation`] if `addr` is not a live
    /// allocation start.
    pub fn free(&mut self, addr: DevAddr) -> SimResult<()> {
        let off = self.offset_of(addr)?;
        let len = self
            .live
            .remove(&off)
            .ok_or(SimError::NotAnAllocation(addr.0))?;
        self.insert_free(off, len);
        Ok(())
    }

    /// Size of the live allocation starting at `addr`.
    pub fn allocation_size(&self, addr: DevAddr) -> SimResult<u64> {
        let off = self.offset_of(addr)?;
        self.live
            .get(&off)
            .copied()
            .ok_or(SimError::NotAnAllocation(addr.0))
    }

    /// Reads `out.len()` bytes starting at `addr`.
    ///
    /// # Errors
    /// Fails if the range is outside the memory window.
    pub fn read(&self, addr: DevAddr, out: &mut [u8]) -> SimResult<()> {
        let range = self.byte_range(addr, out.len() as u64)?;
        out.copy_from_slice(&self.data[range]);
        Ok(())
    }

    /// Writes `src` starting at `addr`.
    ///
    /// # Errors
    /// Fails if the range is outside the memory window.
    pub fn write(&mut self, addr: DevAddr, src: &[u8]) -> SimResult<()> {
        let range = self.byte_range(addr, src.len() as u64)?;
        self.data[range].copy_from_slice(src);
        Ok(())
    }

    /// Fills `len` bytes starting at `addr` with `value` (device memset).
    pub fn fill(&mut self, addr: DevAddr, value: u8, len: u64) -> SimResult<()> {
        let range = self.byte_range(addr, len)?;
        self.data[range].fill(value);
        Ok(())
    }

    /// Borrow of the raw bytes of a range (kernel-side access).
    pub fn slice(&self, addr: DevAddr, len: u64) -> SimResult<&[u8]> {
        let range = self.byte_range(addr, len)?;
        Ok(&self.data[range])
    }

    /// Mutable borrow of the raw bytes of a range (kernel-side access).
    pub fn slice_mut(&mut self, addr: DevAddr, len: u64) -> SimResult<&mut [u8]> {
        let range = self.byte_range(addr, len)?;
        Ok(&mut self.data[range])
    }

    /// Two disjoint mutable ranges at once (e.g. a kernel with an input and an
    /// output buffer).
    ///
    /// # Errors
    /// Fails if the ranges overlap or fall outside the window.
    pub fn slice_pair_mut(
        &mut self,
        a: (DevAddr, u64),
        b: (DevAddr, u64),
    ) -> SimResult<(&mut [u8], &mut [u8])> {
        let ra = self.byte_range(a.0, a.1)?;
        let rb = self.byte_range(b.0, b.1)?;
        if ra.start < rb.end && rb.start < ra.end {
            return Err(SimError::OutOfBounds {
                addr: b.0 .0,
                len: b.1,
            });
        }
        if ra.start < rb.start {
            let (lo, hi) = self.data.split_at_mut(rb.start);
            Ok((&mut lo[ra], &mut hi[..rb.len()]))
        } else {
            let (lo, hi) = self.data.split_at_mut(ra.start);
            let blen = rb.len();
            Ok((&mut hi[..ra.len()], &mut lo[rb.start..rb.start + blen]))
        }
    }

    fn offset_of(&self, addr: DevAddr) -> SimResult<u64> {
        addr.0
            .checked_sub(self.base)
            .filter(|&off| off < self.capacity())
            .ok_or(SimError::InvalidDeviceAddress(addr.0))
    }

    fn byte_range(&self, addr: DevAddr, len: u64) -> SimResult<std::ops::Range<usize>> {
        let off = self.offset_of(addr)?;
        let end = off
            .checked_add(len)
            .ok_or(SimError::OutOfBounds { addr: addr.0, len })?;
        if end > self.capacity() {
            return Err(SimError::OutOfBounds { addr: addr.0, len });
        }
        Ok(off as usize..end as usize)
    }

    /// Inserts a free region, coalescing with neighbours.
    fn insert_free(&mut self, off: u64, len: u64) {
        let mut start = off;
        let mut end = off + len;
        // Coalesce with predecessor.
        if let Some((&p_off, &p_len)) = self.free.range(..off).next_back() {
            if p_off + p_len == start {
                self.free.remove(&p_off);
                start = p_off;
            }
        }
        // Coalesce with successor.
        if let Some((&n_off, &n_len)) = self.free.range(off..).next() {
            if end == n_off {
                self.free.remove(&n_off);
                end = n_off + n_len;
            }
        }
        self.free.insert(start, end - start);
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(0x10_0000, 64 * 1024)
    }

    #[test]
    fn alloc_returns_aligned_addresses_in_window() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a.0 % DEV_ALLOC_ALIGN, 0);
        assert_eq!(b.0 % DEV_ALLOC_ALIGN, 0);
        assert!(a.0 >= 0x10_0000);
        assert_eq!(b.0 - a.0, 256, "100 bytes rounds to one 256-byte slot");
        assert_eq!(m.used_bytes(), 512);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = mem();
        let err = m.alloc(1 << 20).unwrap_err();
        match err {
            SimError::OutOfDeviceMemory { requested, free } => {
                assert_eq!(requested, 1 << 20);
                assert_eq!(free, 64 * 1024);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut m = mem();
        let a = m.alloc(1024).unwrap();
        let b = m.alloc(1024).unwrap();
        let c = m.alloc(1024).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        // Freeing b must merge all three back into one region plus the tail.
        m.free(b).unwrap();
        assert_eq!(m.free_bytes(), 64 * 1024);
        assert_eq!(m.free.len(), 1, "all free space coalesced into one region");
        assert_eq!(m.allocation_count(), 0);
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut m = mem();
        let a = m.alloc(4096).unwrap();
        let _b = m.alloc(4096).unwrap();
        m.free(a).unwrap();
        let c = m.alloc(2048).unwrap();
        assert_eq!(c, a, "first-fit places new allocation in the first hole");
    }

    #[test]
    fn double_free_is_an_error() {
        let mut m = mem();
        let a = m.alloc(128).unwrap();
        m.free(a).unwrap();
        assert!(matches!(m.free(a), Err(SimError::NotAnAllocation(_))));
    }

    #[test]
    fn free_of_interior_address_is_an_error() {
        let mut m = mem();
        let a = m.alloc(1024).unwrap();
        assert!(matches!(
            m.free(a.add(256)),
            Err(SimError::NotAnAllocation(_))
        ));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        let a = m.alloc(16).unwrap();
        m.write(a, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read(a, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn fill_sets_bytes() {
        let mut m = mem();
        let a = m.alloc(32).unwrap();
        m.fill(a, 0xAB, 32).unwrap();
        assert!(m.slice(a, 32).unwrap().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut m = mem();
        let a = m.alloc(16).unwrap();
        let end = DevAddr(m.base().0 + m.capacity());
        assert!(m.read(end, &mut [0u8; 1]).is_err());
        assert!(m.write(DevAddr(a.0 + m.capacity()), &[0]).is_err());
        assert!(matches!(
            m.slice(DevAddr(m.base().0), m.capacity() + 1),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn foreign_address_rejected() {
        let m = mem();
        assert!(matches!(
            m.slice(DevAddr(0), 1),
            Err(SimError::InvalidDeviceAddress(0))
        ));
    }

    #[test]
    fn slice_pair_mut_disjoint_ok_overlap_err() {
        let mut m = mem();
        let a = m.alloc(1024).unwrap();
        let b = m.alloc(1024).unwrap();
        {
            let (sa, sb) = m.slice_pair_mut((a, 1024), (b, 1024)).unwrap();
            sa.fill(1);
            sb.fill(2);
        }
        assert!(m.slice(a, 1024).unwrap().iter().all(|&x| x == 1));
        assert!(m.slice(b, 1024).unwrap().iter().all(|&x| x == 2));
        // Reversed order also works.
        assert!(m.slice_pair_mut((b, 1024), (a, 1024)).is_ok());
        // Overlap rejected.
        assert!(m.slice_pair_mut((a, 512), (a.add(256), 512)).is_err());
    }

    #[test]
    fn largest_free_block_and_fragmentation_stay_exact_under_churn() {
        // Alloc/free churn designed to fragment and then re-coalesce; the
        // accessors must agree with a from-scratch recomputation after every
        // step (coalescing keeps them exact, not merely approximate).
        let mut m = mem();
        let check = |m: &DeviceMemory| {
            let regions: Vec<u64> = m.free.values().copied().collect();
            assert_eq!(
                m.largest_free_block(),
                regions.iter().copied().max().unwrap_or(0)
            );
            assert_eq!(m.free_region_count(), regions.len());
            assert_eq!(m.free_bytes(), regions.iter().sum::<u64>());
            let expect = if m.free_bytes() == 0 {
                0.0
            } else {
                1.0 - m.largest_free_block() as f64 / m.free_bytes() as f64
            };
            assert!((m.fragmentation() - expect).abs() < 1e-12);
        };
        check(&m);
        // 12 blocks leave a 16 KiB tail, so holes stay smaller than the
        // largest region throughout the churn below.
        let blocks: Vec<DevAddr> = (0..12).map(|_| m.alloc(4096).unwrap()).collect();
        check(&m);
        // Free every other block: maximal fragmentation of the freed space.
        for (i, &a) in blocks.iter().enumerate() {
            if i % 2 == 0 {
                m.free(a).unwrap();
                check(&m);
            }
        }
        assert_eq!(m.largest_free_block(), 64 * 1024 - 12 * 4096);
        assert!(m.fragmentation() > 0.0, "holes are smaller than the tail");
        // Refill some holes with smaller allocations, splitting regions.
        let small: Vec<DevAddr> = (0..4).map(|_| m.alloc(1024).unwrap()).collect();
        check(&m);
        for a in small {
            m.free(a).unwrap();
            check(&m);
        }
        // Free the rest: everything must coalesce back into one region.
        for (i, &a) in blocks.iter().enumerate() {
            if i % 2 == 1 {
                m.free(a).unwrap();
                check(&m);
            }
        }
        assert_eq!(m.largest_free_block(), 64 * 1024);
        assert_eq!(m.free_region_count(), 1);
        assert_eq!(m.fragmentation(), 0.0);
    }

    #[test]
    fn full_memory_reports_zero_largest_block() {
        let mut m = mem();
        let a = m.alloc(64 * 1024).unwrap();
        assert_eq!(m.largest_free_block(), 0);
        assert_eq!(m.free_region_count(), 0);
        assert_eq!(m.fragmentation(), 0.0, "nothing free, nothing fragmented");
        m.free(a).unwrap();
        assert_eq!(m.largest_free_block(), 64 * 1024);
    }

    #[test]
    fn allocation_size_is_rounded() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        assert_eq!(m.allocation_size(a).unwrap(), 256);
    }
}
