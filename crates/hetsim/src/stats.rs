//! Execution-time and data-transfer accounting.
//!
//! [`TimeLedger`] reproduces the thirteen categories of the paper's Figure 10
//! break-down; [`TransferLedger`] feeds Figure 8 (bytes moved per direction).
//!
//! The ledger accounts *CPU-perceived* time: every charge corresponds to an
//! interval during which the host thread was either computing or blocked, so
//! the category totals partition total elapsed virtual time (an invariant the
//! integration tests assert).

use crate::time::Nanos;
use std::fmt;

/// Execution-time categories, matching the paper's Figure 10 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Category {
    /// GMAC-driven data transfer the CPU blocked on.
    Copy,
    /// GMAC `adsmAlloc` bookkeeping (shared-object setup, page mapping).
    Malloc,
    /// GMAC `adsmFree` bookkeeping.
    Free,
    /// GMAC `adsmCall` bookkeeping (protocol release actions).
    Launch,
    /// GMAC `adsmSync` waiting and acquire actions.
    Sync,
    /// Page-fault ("signal") handling: delivery plus block lookup.
    Signal,
    /// Accelerator-API allocation cost (`cudaMalloc`).
    CudaMalloc,
    /// Accelerator-API free cost (`cudaFree`).
    CudaFree,
    /// Accelerator-API launch cost (`cudaLaunch`).
    CudaLaunch,
    /// Time the CPU spent waiting for kernel execution on the accelerator.
    Gpu,
    /// Simulated disk reads.
    IoRead,
    /// Simulated disk writes.
    IoWrite,
    /// Application CPU compute.
    Cpu,
}

impl Category {
    /// All categories, in Figure 10 legend order.
    pub const ALL: [Category; 13] = [
        Category::Copy,
        Category::Malloc,
        Category::Free,
        Category::Launch,
        Category::Sync,
        Category::Signal,
        Category::CudaMalloc,
        Category::CudaFree,
        Category::CudaLaunch,
        Category::Gpu,
        Category::IoRead,
        Category::IoWrite,
        Category::Cpu,
    ];

    /// Label used in figure output (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Category::Copy => "Copy",
            Category::Malloc => "Malloc",
            Category::Free => "Free",
            Category::Launch => "Launch",
            Category::Sync => "Sync",
            Category::Signal => "Signal",
            Category::CudaMalloc => "cudaMalloc",
            Category::CudaFree => "cudaFree",
            Category::CudaLaunch => "cudaLaunch",
            Category::Gpu => "GPU",
            Category::IoRead => "IORead",
            Category::IoWrite => "IOWrite",
            Category::Cpu => "CPU",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates time per [`Category`].
#[derive(Debug, Clone, Default)]
pub struct TimeLedger {
    per: [Nanos; 13],
}

/// Lock-free companion of [`TimeLedger`]: per-category atomic counters, so
/// the platform's hot `spend` path (every `cpu_touch` of an element-wise
/// access loop charges here) is a single relaxed `fetch_add` instead of a
/// mutex round trip. Snapshots materialize an ordinary [`TimeLedger`].
#[derive(Debug, Default)]
pub(crate) struct AtomicTimeLedger {
    per: [std::sync::atomic::AtomicU64; 13],
}

impl AtomicTimeLedger {
    /// Adds `dur` to `cat` (relaxed: counters carry no synchronization).
    pub(crate) fn charge(&self, cat: Category, dur: Nanos) {
        self.per[cat as usize].fetch_add(dur.as_nanos(), std::sync::atomic::Ordering::Relaxed);
    }

    /// Materializes the current totals.
    pub(crate) fn snapshot(&self) -> TimeLedger {
        let mut ledger = TimeLedger::new();
        for (i, cell) in self.per.iter().enumerate() {
            ledger.per[i] = Nanos::from_nanos(cell.load(std::sync::atomic::Ordering::Relaxed));
        }
        ledger
    }
}

impl TimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dur` to `cat`.
    pub fn charge(&mut self, cat: Category, dur: Nanos) {
        self.per[cat as usize] += dur;
    }

    /// Time accumulated in `cat`.
    pub fn get(&self, cat: Category) -> Nanos {
        self.per[cat as usize]
    }

    /// Sum over all categories.
    pub fn total(&self) -> Nanos {
        self.per.iter().copied().sum()
    }

    /// Fraction of total time spent in `cat` (0 when the ledger is empty).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.get(cat).as_nanos() as f64 / total as f64
        }
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.per = Default::default();
    }

    /// Iterator over `(category, time)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, Nanos)> + '_ {
        Category::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TimeLedger) {
        for (i, v) in other.per.iter().enumerate() {
            self.per[i] += *v;
        }
    }
}

/// Direction of a host/accelerator transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host (system) memory to accelerator memory.
    HostToDevice,
    /// Accelerator memory to host (system) memory.
    DeviceToHost,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::HostToDevice => f.write_str("H2D"),
            Direction::DeviceToHost => f.write_str("D2H"),
        }
    }
}

/// Counts bytes, DMA jobs and coalesced blocks per direction (Figure 8
/// input, extended with the transfer-planner's aggregation metrics).
///
/// A *job* is one DMA engine reservation (`copy_h2d`/`copy_d2h`); a *block*
/// is one protocol-granularity range the runtime asked to move. When the
/// transfer planner coalesces adjacent dirty blocks, several blocks ride in
/// one job, and `blocks / jobs` (the coalescing ratio) exceeds 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferLedger {
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// Number of host-to-device DMA jobs.
    pub h2d_count: u64,
    /// Number of device-to-host DMA jobs.
    pub d2h_count: u64,
    /// Protocol blocks carried by host-to-device jobs.
    pub h2d_blocks: u64,
    /// Protocol blocks carried by device-to-host jobs.
    pub d2h_blocks: u64,
    /// Host-to-device jobs issued by the transfer planner (the subset of
    /// `h2d_count` that carries block attribution).
    pub h2d_planned: u64,
    /// Device-to-host jobs issued by the transfer planner.
    pub d2h_planned: u64,
}

impl TransferLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer (one DMA job).
    pub fn record(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::HostToDevice => {
                self.h2d_bytes += bytes;
                self.h2d_count += 1;
            }
            Direction::DeviceToHost => {
                self.d2h_bytes += bytes;
                self.d2h_count += 1;
            }
        }
    }

    /// Attributes `blocks` protocol blocks to one planner-issued job in
    /// `dir` (called once per job by the transfer planner's executor; plain
    /// `record` callers — peeks, accelerator-API baselines — leave block
    /// accounting untouched and do not enter the coalescing ratio).
    pub fn note_blocks(&mut self, dir: Direction, blocks: u64) {
        match dir {
            Direction::HostToDevice => {
                self.h2d_blocks += blocks;
                self.h2d_planned += 1;
            }
            Direction::DeviceToHost => {
                self.d2h_blocks += blocks;
                self.d2h_planned += 1;
            }
        }
    }

    /// Number of DMA jobs issued in `dir`.
    pub fn jobs(&self, dir: Direction) -> u64 {
        match dir {
            Direction::HostToDevice => self.h2d_count,
            Direction::DeviceToHost => self.d2h_count,
        }
    }

    /// Total DMA jobs in both directions.
    pub fn total_jobs(&self) -> u64 {
        self.h2d_count + self.d2h_count
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Protocol blocks per *planner-issued* DMA job in `dir` (1.0 when no
    /// coalescing happened; 0 when the planner issued no jobs). Jobs
    /// recorded outside the planner — peeks, accelerator-API baselines —
    /// are excluded so they cannot deflate the ratio.
    pub fn coalescing_ratio(&self, dir: Direction) -> f64 {
        let (blocks, jobs) = match dir {
            Direction::HostToDevice => (self.h2d_blocks, self.h2d_planned),
            Direction::DeviceToHost => (self.d2h_blocks, self.d2h_planned),
        };
        if jobs == 0 {
            0.0
        } else {
            blocks as f64 / jobs as f64
        }
    }

    /// Mean bytes carried per DMA job in `dir` (0 when no jobs ran).
    pub fn bytes_per_job(&self, dir: Direction) -> f64 {
        let (bytes, jobs) = match dir {
            Direction::HostToDevice => (self.h2d_bytes, self.h2d_count),
            Direction::DeviceToHost => (self.d2h_bytes, self.d2h_count),
        };
        if jobs == 0 {
            0.0
        } else {
            bytes as f64 / jobs as f64
        }
    }

    /// Clears the ledger.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_charges_accumulate() {
        let mut l = TimeLedger::new();
        l.charge(Category::Cpu, Nanos::from_micros(10));
        l.charge(Category::Cpu, Nanos::from_micros(5));
        l.charge(Category::Gpu, Nanos::from_micros(15));
        assert_eq!(l.get(Category::Cpu), Nanos::from_micros(15));
        assert_eq!(l.total(), Nanos::from_micros(30));
        assert!((l.fraction(Category::Gpu) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        let l = TimeLedger::new();
        assert_eq!(l.fraction(Category::Signal), 0.0);
        assert_eq!(l.total(), Nanos::ZERO);
    }

    #[test]
    fn iter_covers_all_categories_in_order() {
        let l = TimeLedger::new();
        let cats: Vec<_> = l.iter().map(|(c, _)| c).collect();
        assert_eq!(cats.len(), 13);
        assert_eq!(cats[0], Category::Copy);
        assert_eq!(cats[12], Category::Cpu);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TimeLedger::new();
        let mut b = TimeLedger::new();
        a.charge(Category::Signal, Nanos::from_nanos(7));
        b.charge(Category::Signal, Nanos::from_nanos(5));
        b.charge(Category::IoRead, Nanos::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.get(Category::Signal), Nanos::from_nanos(12));
        assert_eq!(a.get(Category::IoRead), Nanos::from_nanos(3));
    }

    #[test]
    fn transfer_ledger_directions_are_separate() {
        let mut t = TransferLedger::new();
        t.record(Direction::HostToDevice, 100);
        t.record(Direction::HostToDevice, 50);
        t.record(Direction::DeviceToHost, 25);
        assert_eq!(t.h2d_bytes, 150);
        assert_eq!(t.h2d_count, 2);
        assert_eq!(t.d2h_bytes, 25);
        assert_eq!(t.d2h_count, 1);
        assert_eq!(t.total_bytes(), 175);
        assert_eq!(t.total_jobs(), 3);
        t.reset();
        assert_eq!(t, TransferLedger::default());
    }

    #[test]
    fn coalescing_ratio_tracks_blocks_per_job() {
        let mut t = TransferLedger::new();
        assert_eq!(t.coalescing_ratio(Direction::HostToDevice), 0.0);
        assert_eq!(t.bytes_per_job(Direction::HostToDevice), 0.0);
        // One job carrying four coalesced blocks.
        t.record(Direction::HostToDevice, 4096 * 4);
        t.note_blocks(Direction::HostToDevice, 4);
        // One single-block job.
        t.record(Direction::HostToDevice, 4096);
        t.note_blocks(Direction::HostToDevice, 1);
        assert_eq!(t.jobs(Direction::HostToDevice), 2);
        assert!((t.coalescing_ratio(Direction::HostToDevice) - 2.5).abs() < 1e-12);
        assert!((t.bytes_per_job(Direction::HostToDevice) - (4096.0 * 5.0 / 2.0)).abs() < 1e-9);
        // The other direction is unaffected.
        assert_eq!(t.d2h_blocks, 0);
        assert_eq!(t.coalescing_ratio(Direction::DeviceToHost), 0.0);
    }

    #[test]
    fn non_planner_jobs_do_not_deflate_coalescing_ratio() {
        let mut t = TransferLedger::new();
        // One planner job carrying four coalesced blocks.
        t.record(Direction::DeviceToHost, 4096 * 4);
        t.note_blocks(Direction::DeviceToHost, 4);
        // A peek-style direct copy: counted as a job, not planner-attributed.
        t.record(Direction::DeviceToHost, 512);
        assert_eq!(t.jobs(Direction::DeviceToHost), 2);
        assert!((t.coalescing_ratio(Direction::DeviceToHost) - 4.0).abs() < 1e-12);
        // Peek-only traffic reports 0, never a value below 1.
        let mut p = TransferLedger::new();
        p.record(Direction::DeviceToHost, 512);
        assert_eq!(p.coalescing_ratio(Direction::DeviceToHost), 0.0);
    }

    #[test]
    fn labels_match_figure10_legend() {
        assert_eq!(Category::CudaMalloc.label(), "cudaMalloc");
        assert_eq!(Category::Gpu.label(), "GPU");
        assert_eq!(Category::IoRead.to_string(), "IORead");
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }
}
