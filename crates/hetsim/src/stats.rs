//! Execution-time and data-transfer accounting.
//!
//! [`TimeLedger`] reproduces the thirteen categories of the paper's Figure 10
//! break-down; [`TransferLedger`] feeds Figure 8 (bytes moved per direction).
//!
//! The ledger accounts *CPU-perceived* time: every charge corresponds to an
//! interval during which the host thread was either computing or blocked, so
//! the category totals partition total elapsed virtual time (an invariant the
//! integration tests assert).

use crate::time::Nanos;
use std::fmt;

/// Execution-time categories, matching the paper's Figure 10 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Category {
    /// GMAC-driven data transfer the CPU blocked on.
    Copy,
    /// GMAC `adsmAlloc` bookkeeping (shared-object setup, page mapping).
    Malloc,
    /// GMAC `adsmFree` bookkeeping.
    Free,
    /// GMAC `adsmCall` bookkeeping (protocol release actions).
    Launch,
    /// GMAC `adsmSync` waiting and acquire actions.
    Sync,
    /// Page-fault ("signal") handling: delivery plus block lookup.
    Signal,
    /// Accelerator-API allocation cost (`cudaMalloc`).
    CudaMalloc,
    /// Accelerator-API free cost (`cudaFree`).
    CudaFree,
    /// Accelerator-API launch cost (`cudaLaunch`).
    CudaLaunch,
    /// Time the CPU spent waiting for kernel execution on the accelerator.
    Gpu,
    /// Simulated disk reads.
    IoRead,
    /// Simulated disk writes.
    IoWrite,
    /// Application CPU compute.
    Cpu,
}

impl Category {
    /// All categories, in Figure 10 legend order.
    pub const ALL: [Category; 13] = [
        Category::Copy,
        Category::Malloc,
        Category::Free,
        Category::Launch,
        Category::Sync,
        Category::Signal,
        Category::CudaMalloc,
        Category::CudaFree,
        Category::CudaLaunch,
        Category::Gpu,
        Category::IoRead,
        Category::IoWrite,
        Category::Cpu,
    ];

    /// Label used in figure output (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Category::Copy => "Copy",
            Category::Malloc => "Malloc",
            Category::Free => "Free",
            Category::Launch => "Launch",
            Category::Sync => "Sync",
            Category::Signal => "Signal",
            Category::CudaMalloc => "cudaMalloc",
            Category::CudaFree => "cudaFree",
            Category::CudaLaunch => "cudaLaunch",
            Category::Gpu => "GPU",
            Category::IoRead => "IORead",
            Category::IoWrite => "IOWrite",
            Category::Cpu => "CPU",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates time per [`Category`].
#[derive(Debug, Clone, Default)]
pub struct TimeLedger {
    per: [Nanos; 13],
}

impl TimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dur` to `cat`.
    pub fn charge(&mut self, cat: Category, dur: Nanos) {
        self.per[cat as usize] += dur;
    }

    /// Time accumulated in `cat`.
    pub fn get(&self, cat: Category) -> Nanos {
        self.per[cat as usize]
    }

    /// Sum over all categories.
    pub fn total(&self) -> Nanos {
        self.per.iter().copied().sum()
    }

    /// Fraction of total time spent in `cat` (0 when the ledger is empty).
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.get(cat).as_nanos() as f64 / total as f64
        }
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.per = Default::default();
    }

    /// Iterator over `(category, time)` pairs in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (Category, Nanos)> + '_ {
        Category::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TimeLedger) {
        for (i, v) in other.per.iter().enumerate() {
            self.per[i] += *v;
        }
    }
}

/// Direction of a host/accelerator transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host (system) memory to accelerator memory.
    HostToDevice,
    /// Accelerator memory to host (system) memory.
    DeviceToHost,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::HostToDevice => f.write_str("H2D"),
            Direction::DeviceToHost => f.write_str("D2H"),
        }
    }
}

/// Counts bytes and transfers per direction (Figure 8 input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferLedger {
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// Number of host-to-device transfers.
    pub h2d_count: u64,
    /// Number of device-to-host transfers.
    pub d2h_count: u64,
}

impl TransferLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transfer.
    pub fn record(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::HostToDevice => {
                self.h2d_bytes += bytes;
                self.h2d_count += 1;
            }
            Direction::DeviceToHost => {
                self.d2h_bytes += bytes;
                self.d2h_count += 1;
            }
        }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Clears the ledger.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_charges_accumulate() {
        let mut l = TimeLedger::new();
        l.charge(Category::Cpu, Nanos::from_micros(10));
        l.charge(Category::Cpu, Nanos::from_micros(5));
        l.charge(Category::Gpu, Nanos::from_micros(15));
        assert_eq!(l.get(Category::Cpu), Nanos::from_micros(15));
        assert_eq!(l.total(), Nanos::from_micros(30));
        assert!((l.fraction(Category::Gpu) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        let l = TimeLedger::new();
        assert_eq!(l.fraction(Category::Signal), 0.0);
        assert_eq!(l.total(), Nanos::ZERO);
    }

    #[test]
    fn iter_covers_all_categories_in_order() {
        let l = TimeLedger::new();
        let cats: Vec<_> = l.iter().map(|(c, _)| c).collect();
        assert_eq!(cats.len(), 13);
        assert_eq!(cats[0], Category::Copy);
        assert_eq!(cats[12], Category::Cpu);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TimeLedger::new();
        let mut b = TimeLedger::new();
        a.charge(Category::Signal, Nanos::from_nanos(7));
        b.charge(Category::Signal, Nanos::from_nanos(5));
        b.charge(Category::IoRead, Nanos::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.get(Category::Signal), Nanos::from_nanos(12));
        assert_eq!(a.get(Category::IoRead), Nanos::from_nanos(3));
    }

    #[test]
    fn transfer_ledger_directions_are_separate() {
        let mut t = TransferLedger::new();
        t.record(Direction::HostToDevice, 100);
        t.record(Direction::HostToDevice, 50);
        t.record(Direction::DeviceToHost, 25);
        assert_eq!(t.h2d_bytes, 150);
        assert_eq!(t.h2d_count, 2);
        assert_eq!(t.d2h_bytes, 25);
        assert_eq!(t.d2h_count, 1);
        assert_eq!(t.total_bytes(), 175);
        t.reset();
        assert_eq!(t, TransferLedger::default());
    }

    #[test]
    fn labels_match_figure10_legend() {
        assert_eq!(Category::CudaMalloc.label(), "cudaMalloc");
        assert_eq!(Category::Gpu.label(), "GPU");
        assert_eq!(Category::IoRead.to_string(), "IORead");
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }
}
