//! Virtual time: durations ([`Nanos`]), instants ([`TimePoint`]) and the
//! simulation [`Clock`].
//!
//! All experiment timing in this workspace is *virtual*: the paper measured
//! wall-clock time with `gettimeofday()` on real hardware; we instead advance
//! a deterministic clock by modelled costs, which makes every figure
//! reproducible bit-for-bit (see `DESIGN.md` §2).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond resolution.
///
/// ```
/// use hetsim::time::Nanos;
/// let t = Nanos::from_micros(3) + Nanos::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero-length duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            Nanos((s * 1e9).round() as u64)
        } else {
            Nanos::ZERO
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// True for the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    /// Auto-scales to the most readable unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant on the virtual timeline (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(u64);

impl TimePoint {
    /// Simulation start.
    pub const ZERO: TimePoint = TimePoint(0);

    /// Creates an instant from raw nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        TimePoint(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: TimePoint) -> Nanos {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Nanos(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, rhs: TimePoint) -> TimePoint {
        TimePoint(self.0.max(rhs.0))
    }
}

impl Add<Nanos> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: Nanos) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<Nanos> for TimePoint {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", Nanos(self.0))
    }
}

/// The simulation clock: tracks "now" from the perspective of the host CPU,
/// which in ADSM drives every coherence action.
///
/// The clock is lock-free and shareable between host threads: `advance` is an
/// atomic add and `wait_until` an atomic max, so **every charge corresponds
/// exactly to the clock movement it caused** even when several threads (one
/// per accelerator shard) advance virtual time concurrently. Under a single
/// thread the behaviour is bit-identical to the old `&mut self` clock.
#[derive(Debug, Default)]
pub struct Clock {
    ns: std::sync::atomic::AtomicU64,
}

impl Clone for Clock {
    fn clone(&self) -> Self {
        Clock {
            ns: std::sync::atomic::AtomicU64::new(
                self.ns.load(std::sync::atomic::Ordering::SeqCst),
            ),
        }
    }
}

impl Clock {
    /// A clock at simulation start.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual instant.
    pub fn now(&self) -> TimePoint {
        TimePoint::from_nanos(self.ns.load(std::sync::atomic::Ordering::SeqCst))
    }

    /// Advances the clock by `dur` and returns the new instant.
    pub fn advance(&self, dur: Nanos) -> TimePoint {
        let prev = self
            .ns
            .fetch_add(dur.as_nanos(), std::sync::atomic::Ordering::SeqCst);
        TimePoint::from_nanos(prev + dur.as_nanos())
    }

    /// Moves the clock forward to `t` if `t` is in the future; returns the
    /// amount of time actually waited (zero if `t` already passed).
    ///
    /// The atomic-max implementation returns exactly the clock movement this
    /// call caused: if another thread advanced the clock past `t` first, the
    /// wait is free.
    pub fn wait_until(&self, t: TimePoint) -> Nanos {
        let prev = self
            .ns
            .fetch_max(t.as_nanos(), std::sync::atomic::Ordering::SeqCst);
        if t.as_nanos() > prev {
            Nanos::from_nanos(t.as_nanos() - prev)
        } else {
            Nanos::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos::from_millis(1_500));
    }

    #[test]
    fn nanos_from_secs_f64_saturates() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_nanos(10);
        let b = Nanos::from_nanos(3);
        assert_eq!(a + b, Nanos::from_nanos(13));
        assert_eq!(a - b, Nanos::from_nanos(7));
        assert_eq!(a * 2, Nanos::from_nanos(20));
        assert_eq!(a / 2, Nanos::from_nanos(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn nanos_sum() {
        let total: Nanos = (1..=4).map(Nanos::from_nanos).sum();
        assert_eq!(total, Nanos::from_nanos(10));
    }

    #[test]
    fn nanos_display_scales() {
        assert_eq!(Nanos::from_nanos(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(5).to_string(), "5.000us");
        assert_eq!(Nanos::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Nanos::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn timepoint_ordering_and_since() {
        let t0 = TimePoint::from_nanos(100);
        let t1 = t0 + Nanos::from_nanos(50);
        assert!(t1 > t0);
        assert_eq!(t1.since(t0), Nanos::from_nanos(50));
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn clock_advance_and_wait() {
        let c = Clock::new();
        assert_eq!(c.now(), TimePoint::ZERO);
        c.advance(Nanos::from_micros(10));
        assert_eq!(c.now().as_nanos(), 10_000);

        // Waiting for the past is free.
        let waited = c.wait_until(TimePoint::from_nanos(5_000));
        assert_eq!(waited, Nanos::ZERO);
        assert_eq!(c.now().as_nanos(), 10_000);

        // Waiting for the future advances the clock.
        let waited = c.wait_until(TimePoint::from_nanos(25_000));
        assert_eq!(waited, Nanos::from_micros(15));
        assert_eq!(c.now().as_nanos(), 25_000);
    }
}
