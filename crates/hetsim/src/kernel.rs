//! Accelerator kernels: launch geometry, argument passing, execution and the
//! roofline cost model.
//!
//! Kernels *really execute* (plain Rust against the simulated device memory),
//! so every workload's results can be checked end-to-end; their *timing* is
//! modelled from the work they report ([`KernelProfile`]) and the device's
//! throughput ([`crate::device::GpuSpec`]). This mirrors the paper's split:
//! the data-parallel phase runs on the accelerator at accelerator speeds
//! while the coherence protocol only observes launch/return boundaries.

use crate::devmem::{DevAddr, DeviceMemory};
use crate::error::{SimError, SimResult};

/// CUDA-style launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDims {
    /// Grid dimensions (blocks).
    pub grid: (u32, u32, u32),
    /// Block dimensions (threads).
    pub block: (u32, u32, u32),
}

impl LaunchDims {
    /// One-dimensional launch: `blocks × threads`.
    pub fn linear(blocks: u32, threads: u32) -> Self {
        LaunchDims {
            grid: (blocks, 1, 1),
            block: (threads, 1, 1),
        }
    }

    /// For `n` elements with `threads` per block (grid rounded up).
    pub fn for_elements(n: u64, threads: u32) -> Self {
        let blocks = n.div_ceil(threads as u64).max(1) as u32;
        Self::linear(blocks, threads)
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> u64 {
        let g = self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64;
        let b = self.block.0 as u64 * self.block.1 as u64 * self.block.2 as u64;
        g * b
    }
}

impl Default for LaunchDims {
    fn default() -> Self {
        LaunchDims::linear(1, 1)
    }
}

/// A kernel argument (device pointer or scalar), as passed through the
/// launch API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// A pointer into device memory.
    Ptr(DevAddr),
    /// An unsigned scalar.
    U64(u64),
    /// A float scalar.
    F64(f64),
}

impl KernelArg {
    /// Extracts a device pointer.
    ///
    /// # Errors
    /// [`SimError::BadKernelArgs`] when the argument is not a pointer.
    pub fn as_ptr(&self) -> SimResult<DevAddr> {
        match self {
            KernelArg::Ptr(p) => Ok(*p),
            other => Err(SimError::BadKernelArgs(format!(
                "expected pointer, got {other:?}"
            ))),
        }
    }

    /// Extracts an unsigned scalar.
    ///
    /// # Errors
    /// [`SimError::BadKernelArgs`] when the argument is not a `U64`.
    pub fn as_u64(&self) -> SimResult<u64> {
        match self {
            KernelArg::U64(v) => Ok(*v),
            other => Err(SimError::BadKernelArgs(format!(
                "expected u64, got {other:?}"
            ))),
        }
    }

    /// Extracts a float scalar.
    ///
    /// # Errors
    /// [`SimError::BadKernelArgs`] when the argument is not an `F64`.
    pub fn as_f64(&self) -> SimResult<f64> {
        match self {
            KernelArg::F64(v) => Ok(*v),
            other => Err(SimError::BadKernelArgs(format!(
                "expected f64, got {other:?}"
            ))),
        }
    }
}

/// Typed accessor over a kernel's argument list.
#[derive(Debug, Clone, Copy)]
pub struct Args<'a>(&'a [KernelArg]);

impl<'a> Args<'a> {
    /// Wraps an argument slice.
    pub fn new(args: &'a [KernelArg]) -> Self {
        Args(args)
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Pointer argument at `i`.
    ///
    /// # Errors
    /// Fails when `i` is out of range or the argument has the wrong type.
    pub fn ptr(&self, i: usize) -> SimResult<DevAddr> {
        self.get(i)?.as_ptr()
    }

    /// `u64` argument at `i`.
    ///
    /// # Errors
    /// Fails when `i` is out of range or the argument has the wrong type.
    pub fn u64(&self, i: usize) -> SimResult<u64> {
        self.get(i)?.as_u64()
    }

    /// `f64` argument at `i`.
    ///
    /// # Errors
    /// Fails when `i` is out of range or the argument has the wrong type.
    pub fn f64(&self, i: usize) -> SimResult<f64> {
        self.get(i)?.as_f64()
    }

    fn get(&self, i: usize) -> SimResult<&KernelArg> {
        self.0
            .get(i)
            .ok_or_else(|| SimError::BadKernelArgs(format!("missing argument {i}")))
    }
}

/// Work performed by one kernel launch, used by the roofline timing model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelProfile {
    /// Floating-point (or equivalent) operations executed.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl KernelProfile {
    /// Creates a profile.
    pub fn new(flops: f64, bytes: f64) -> Self {
        KernelProfile { flops, bytes }
    }
}

/// A device kernel: executes against device memory and reports its work.
///
/// Implementations must be deterministic: the simulation relies on kernels
/// producing identical results for identical memory contents.
pub trait Kernel: Send + Sync {
    /// Kernel name (unique within a registry).
    fn name(&self) -> &str;

    /// Runs the kernel and returns the work it performed.
    ///
    /// # Errors
    /// Implementations fail on malformed arguments or out-of-bounds device
    /// accesses.
    fn execute(
        &self,
        mem: &mut DeviceMemory,
        dims: LaunchDims,
        args: Args<'_>,
    ) -> SimResult<KernelProfile>;
}

/// Helper: reads a `f32` slice out of device memory.
///
/// # Errors
/// Fails when the range is out of bounds.
pub fn read_f32_slice(mem: &DeviceMemory, addr: DevAddr, n: u64) -> SimResult<Vec<f32>> {
    let bytes = mem.slice(addr, n * 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Helper: writes a `f32` slice into device memory.
///
/// # Errors
/// Fails when the range is out of bounds.
pub fn write_f32_slice(mem: &mut DeviceMemory, addr: DevAddr, data: &[f32]) -> SimResult<()> {
    let out = mem.slice_mut(addr, data.len() as u64 * 4)?;
    for (chunk, v) in out.chunks_exact_mut(4).zip(data) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_dims_thread_math() {
        let d = LaunchDims::linear(4, 256);
        assert_eq!(d.total_threads(), 1024);
        let d = LaunchDims::for_elements(1000, 256);
        assert_eq!(d.grid.0, 4);
        assert_eq!(d.total_threads(), 1024);
        let d = LaunchDims::for_elements(0, 256);
        assert_eq!(d.grid.0, 1, "degenerate launches still have one block");
    }

    #[test]
    fn args_typed_access() {
        let raw = [
            KernelArg::Ptr(DevAddr(0x100)),
            KernelArg::U64(7),
            KernelArg::F64(2.5),
        ];
        let args = Args::new(&raw);
        assert_eq!(args.len(), 3);
        assert!(!args.is_empty());
        assert_eq!(args.ptr(0).unwrap(), DevAddr(0x100));
        assert_eq!(args.u64(1).unwrap(), 7);
        assert_eq!(args.f64(2).unwrap(), 2.5);
    }

    #[test]
    fn args_type_mismatch_is_error() {
        let raw = [KernelArg::U64(7)];
        let args = Args::new(&raw);
        assert!(matches!(args.ptr(0), Err(SimError::BadKernelArgs(_))));
        assert!(matches!(args.f64(0), Err(SimError::BadKernelArgs(_))));
        assert!(matches!(args.u64(3), Err(SimError::BadKernelArgs(_))));
    }

    #[test]
    fn f32_slice_roundtrip() {
        let mut mem = DeviceMemory::new(0x1000, 4096);
        let a = mem.alloc(64).unwrap();
        write_f32_slice(&mut mem, a, &[1.0, -2.5, 3.25]).unwrap();
        assert_eq!(read_f32_slice(&mem, a, 3).unwrap(), vec![1.0, -2.5, 3.25]);
    }
}
