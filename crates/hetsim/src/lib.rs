//! # hetsim — simulated heterogeneous platform
//!
//! A deterministic, virtual-time simulation of the reference architecture in
//! the ASPLOS'10 GMAC paper (Figure 1): a general-purpose host CPU and one or
//! more accelerators with *separate physical memories*, joined by a
//! PCIe-class interconnect, plus a disk.
//!
//! The substrate exists so the ADSM runtime (`gmac` crate) and the baseline
//! CUDA-style programming model (`cudart` crate) have real hardware-shaped
//! behaviour to manage:
//!
//! * **device memory** with a real allocator ([`devmem`]),
//! * **DMA engines** whose transfers cost `latency + size/bandwidth` and can
//!   run asynchronously, overlapping host compute ([`bandwidth`], [`engine`]),
//! * **kernels** that really execute (plain Rust over device memory) while
//!   their duration follows a roofline model ([`kernel`], [`device`]),
//! * **accounting** matching the paper's Figure 8 and Figure 10 ([`stats`]),
//! * a **virtual clock** that makes every experiment reproducible ([`time`]).
//!
//! ```
//! use hetsim::{Platform, CopyMode, DeviceId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Platform::desktop_g280();
//! let buf = p.dev_alloc(DeviceId(0), 4096)?;
//! p.copy_h2d(DeviceId(0), buf, &[0u8; 4096], CopyMode::Sync)?;
//! assert!(p.elapsed().as_nanos() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod device;
pub mod devmem;
pub mod disk;
pub mod engine;
pub mod error;
pub mod faults;
pub mod kernel;
pub mod platform;
pub mod stats;
pub mod time;

pub use bandwidth::{BytesPerSec, LinkModel};
pub use device::{Device, DeviceId, GpuSpec, StreamId};
pub use devmem::{DevAddr, DeviceMemory};
pub use disk::{Disk, SimFs};
pub use engine::Engine;
pub use error::{SimError, SimResult};
pub use faults::{FaultOp, FaultPlan};
pub use kernel::{Args, Kernel, KernelArg, KernelProfile, LaunchDims};
pub use platform::{
    CopyMode, CpuSpec, DeviceRef, FsRef, Platform, PlatformBuilder, TransfersRef,
    DEFAULT_DEVICE_BASE,
};
pub use stats::{Category, Direction, TimeLedger, TransferLedger};
pub use time::{Clock, Nanos, TimePoint};
