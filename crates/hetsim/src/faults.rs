//! Deterministic fault-injection failpoints for the simulated platform.
//!
//! A [`FaultPlan`] armed on a [`crate::Platform`] makes selected operations
//! — device allocation, H2D reservation, H2D commit — fail on demand, so
//! higher layers can prove their error paths leave the system usable (no
//! poisoned locks, no leaked reservations, subsequent operations succeed).
//!
//! Determinism is the whole point: a failpoint fires for the *n*-th call of
//! its kind ([`FaultPlan::fail_nth`]) or for a seeded pseudo-random subset
//! ([`FaultPlan::fail_seeded`]), both keyed purely on the per-op call
//! ordinal since arming. Re-running the same program with the same plan
//! fails the same operations — a failing fuzz case replays exactly.
//!
//! Failpoints are consulted *before* the operation charges time or mutates
//! state: an injected failure is observationally a clean early error, never
//! a half-applied one.

use std::fmt;

/// Which platform operation a failpoint intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultOp {
    /// Device memory allocation ([`crate::Platform::dev_alloc`]).
    DevAlloc,
    /// H2D transfer reservation — the issue half of a split transfer
    /// ([`crate::Platform::reserve_h2d`]).
    ReserveH2d,
    /// H2D transfer commit — the landing half
    /// ([`crate::Platform::commit_h2d`]).
    CommitH2d,
}

impl FaultOp {
    /// All interceptable operations.
    pub const ALL: [FaultOp; 3] = [FaultOp::DevAlloc, FaultOp::ReserveH2d, FaultOp::CommitH2d];

    fn index(self) -> usize {
        match self {
            FaultOp::DevAlloc => 0,
            FaultOp::ReserveH2d => 1,
            FaultOp::CommitH2d => 2,
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultOp::DevAlloc => "dev-alloc",
            FaultOp::ReserveH2d => "reserve-h2d",
            FaultOp::CommitH2d => "commit-h2d",
        })
    }
}

/// One failure rule: fire on a fixed ordinal, or on a seeded random subset.
#[derive(Debug, Clone, Copy)]
enum Rule {
    /// Fail exactly the `nth` call (0-based) of this op kind.
    Nth(u64),
    /// Fail each call independently with probability `num/65536`, decided
    /// by `splitmix64(seed ^ ordinal)` — deterministic per (seed, ordinal).
    Seeded { seed: u64, num: u32 },
}

/// Fixed-point output spread of splitmix64, the standard 64-bit mixer —
/// good enough avalanche for an independent per-ordinal coin flip.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic set of failure rules, one list per [`FaultOp`], plus the
/// per-op call counters that key them. Arm it with
/// [`crate::Platform::arm_faults`]; disarm with
/// [`crate::Platform::disarm_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: [Vec<Rule>; 3],
    /// Calls seen per op kind since arming (the rule key).
    counts: [u64; 3],
}

impl FaultPlan {
    /// An empty plan (no failpoints; useful as a builder seed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fails exactly the `nth` call (0-based) of `op` after arming.
    pub fn fail_nth(mut self, op: FaultOp, nth: u64) -> Self {
        self.rules[op.index()].push(Rule::Nth(nth));
        self
    }

    /// Fails each `op` call independently with probability
    /// `per_64k / 65536`, keyed on `seed` and the call ordinal — the same
    /// (seed, program) always fails the same calls.
    pub fn fail_seeded(mut self, op: FaultOp, seed: u64, per_64k: u32) -> Self {
        self.rules[op.index()].push(Rule::Seeded {
            seed,
            num: per_64k.min(65536),
        });
        self
    }

    /// Consumes one call of kind `op`: returns `Some(ordinal)` if a rule
    /// fires for it (the caller turns it into
    /// [`crate::SimError::FaultInjected`]), advancing the per-op counter
    /// either way.
    pub(crate) fn should_fail(&mut self, op: FaultOp) -> Option<u64> {
        let idx = op.index();
        let ordinal = self.counts[idx];
        self.counts[idx] += 1;
        let hit = self.rules[idx].iter().any(|rule| match *rule {
            Rule::Nth(n) => n == ordinal,
            Rule::Seeded { seed, num } => (splitmix64(seed ^ ordinal) & 0xFFFF) < u64::from(num),
        });
        hit.then_some(ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_rule_fires_exactly_once() {
        let mut plan = FaultPlan::new().fail_nth(FaultOp::CommitH2d, 2);
        assert_eq!(plan.should_fail(FaultOp::CommitH2d), None);
        assert_eq!(plan.should_fail(FaultOp::CommitH2d), None);
        assert_eq!(plan.should_fail(FaultOp::CommitH2d), Some(2));
        assert_eq!(plan.should_fail(FaultOp::CommitH2d), None);
    }

    #[test]
    fn ops_count_independently() {
        let mut plan = FaultPlan::new()
            .fail_nth(FaultOp::DevAlloc, 0)
            .fail_nth(FaultOp::ReserveH2d, 1);
        assert_eq!(plan.should_fail(FaultOp::ReserveH2d), None);
        assert_eq!(plan.should_fail(FaultOp::DevAlloc), Some(0));
        assert_eq!(plan.should_fail(FaultOp::ReserveH2d), Some(1));
    }

    #[test]
    fn seeded_rule_is_deterministic() {
        let run = |seed| {
            let mut plan = FaultPlan::new().fail_seeded(FaultOp::DevAlloc, seed, 16384);
            (0..64)
                .map(|_| plan.should_fail(FaultOp::DevAlloc).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same failures");
        assert_ne!(run(7), run(8), "different seed, different failures");
        let hits = run(7).iter().filter(|&&h| h).count();
        assert!(hits > 0 && hits < 64, "~25% rate actually mixes: {hits}/64");
    }

    #[test]
    fn full_rate_fails_everything() {
        let mut plan = FaultPlan::new().fail_seeded(FaultOp::ReserveH2d, 1, 65536);
        for i in 0..16 {
            assert_eq!(plan.should_fail(FaultOp::ReserveH2d), Some(i));
        }
    }

    #[test]
    fn empty_plan_never_fails() {
        let mut plan = FaultPlan::new();
        for op in FaultOp::ALL {
            assert_eq!(plan.should_fail(op), None);
        }
    }
}
