//! Interconnect and memory-link bandwidth models.
//!
//! A [`LinkModel`] charges `latency + bytes / peak_bandwidth` per transfer, so
//! the *attained* bandwidth rises with transfer size and saturates at the
//! peak — exactly the behaviour the paper exploits in §5.2 (Figure 11): small
//! rolling-update blocks waste bandwidth, large blocks amortise the setup
//! latency.
//!
//! The preset links mirror the paper's Figure 2 comparison lines
//! (PCIe, QPI, HyperTransport, NVIDIA GTX295 on-board memory).

use crate::time::Nanos;
use std::fmt;

/// Bytes-per-second as a strongly-typed quantity.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BytesPerSec(f64);

impl BytesPerSec {
    /// Creates a rate from raw bytes/second.
    ///
    /// # Panics
    /// Panics if `bps` is not finite and positive.
    pub fn new(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "bandwidth must be positive");
        BytesPerSec(bps)
    }

    /// Creates a rate from gigabytes/second (decimal GB).
    pub fn from_gbps(gbps: f64) -> Self {
        Self::new(gbps * 1e9)
    }

    /// Creates a rate from megabytes/second (decimal MB).
    pub fn from_mbps(mbps: f64) -> Self {
        Self::new(mbps * 1e6)
    }

    /// Raw bytes/second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// This rate in decimal gigabytes/second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GB/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MB/s", self.0 / 1e6)
        } else {
            write!(f, "{:.0} B/s", self.0)
        }
    }
}

/// A point-to-point link with fixed per-transfer latency and peak bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    name: &'static str,
    latency: Nanos,
    peak: BytesPerSec,
}

impl LinkModel {
    /// Creates a link model.
    pub fn new(name: &'static str, latency: Nanos, peak: BytesPerSec) -> Self {
        LinkModel {
            name,
            latency,
            peak,
        }
    }

    /// Human-readable link name (used in figure output).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Per-transfer setup latency (DMA descriptor, doorbell, completion IRQ).
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Peak (asymptotic) bandwidth.
    pub fn peak(&self) -> BytesPerSec {
        self.peak
    }

    /// Time to move `bytes` across this link in a single transfer.
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        let wire = Nanos::from_secs_f64(bytes as f64 / self.peak.0);
        self.latency + wire
    }

    /// Bandwidth actually attained by a single transfer of `bytes`
    /// (rises with size, saturates at [`Self::peak`]).
    pub fn attained_bandwidth(&self, bytes: u64) -> BytesPerSec {
        let t = self.transfer_time(bytes).as_secs_f64();
        if t <= 0.0 {
            self.peak
        } else {
            BytesPerSec::new((bytes as f64 / t).max(f64::MIN_POSITIVE))
        }
    }

    // ----- Presets ---------------------------------------------------------
    // Calibrated against the paper's experimental platform (§5: PCIe 2.0 16x,
    // NVIDIA G280) and the Figure 2 comparison lines.

    /// PCIe 2.0 x16, host-to-device direction (pinned-memory DMA).
    pub fn pcie2_x16_h2d() -> Self {
        Self::new(
            "PCIe 2.0 x16 H2D",
            Nanos::from_micros(12),
            BytesPerSec::from_gbps(5.6),
        )
    }

    /// PCIe 2.0 x16, device-to-host direction.
    pub fn pcie2_x16_d2h() -> Self {
        Self::new(
            "PCIe 2.0 x16 D2H",
            Nanos::from_micros(12),
            BytesPerSec::from_gbps(5.0),
        )
    }

    /// Generic PCIe line used in the Figure 2 comparison.
    pub fn pcie() -> Self {
        Self::new("PCIe", Nanos::from_micros(12), BytesPerSec::from_gbps(8.0))
    }

    /// Intel QuickPath Interconnect (Figure 2 line).
    pub fn qpi() -> Self {
        Self::new("QPI", Nanos::from_micros(1), BytesPerSec::from_gbps(12.8))
    }

    /// AMD HyperTransport (Figure 2 line).
    pub fn hypertransport() -> Self {
        Self::new(
            "HyperTransport",
            Nanos::from_micros(1),
            BytesPerSec::from_gbps(20.8),
        )
    }

    /// NVIDIA GTX295 on-board GDDR3 memory (Figure 2 line).
    pub fn gtx295_memory() -> Self {
        Self::new(
            "NVIDIA GTX295 Memory",
            Nanos::from_nanos(400),
            BytesPerSec::from_gbps(223.8),
        )
    }

    /// CPU and accelerator sharing one memory controller (the paper's
    /// low-cost integrated case, §3.1: Intel GMA / AMD Fusion class):
    /// "transfers" are cache-to-cache moves through shared DRAM.
    pub fn integrated_shared_memory() -> Self {
        Self::new(
            "Integrated shared memory",
            Nanos::from_nanos(300),
            BytesPerSec::from_gbps(6.4),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(BytesPerSec::from_gbps(1.0).as_bps(), 1e9);
        assert_eq!(BytesPerSec::from_mbps(1.0).as_bps(), 1e6);
        assert!((BytesPerSec::from_gbps(5.6).as_gbps() - 5.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rate_rejects_zero() {
        BytesPerSec::new(0.0);
    }

    #[test]
    fn rate_display() {
        assert_eq!(BytesPerSec::from_gbps(5.6).to_string(), "5.60 GB/s");
        assert_eq!(BytesPerSec::from_mbps(150.0).to_string(), "150.00 MB/s");
    }

    #[test]
    fn transfer_time_is_latency_plus_wire() {
        let link = LinkModel::new("t", Nanos::from_micros(10), BytesPerSec::from_gbps(1.0));
        // 1000 bytes at 1 GB/s = 1 us wire time.
        assert_eq!(link.transfer_time(1000), Nanos::from_micros(11));
        // Zero-byte transfer still pays latency.
        assert_eq!(link.transfer_time(0), Nanos::from_micros(10));
    }

    #[test]
    fn attained_bandwidth_monotone_and_saturating() {
        let link = LinkModel::pcie2_x16_h2d();
        let sizes = [4_096u64, 65_536, 1 << 20, 32 << 20, 1 << 30];
        let mut prev = 0.0;
        for &s in &sizes {
            let bw = link.attained_bandwidth(s).as_bps();
            assert!(bw > prev, "attained bandwidth must rise with size");
            assert!(bw <= link.peak().as_bps() * 1.0001, "must not exceed peak");
            prev = bw;
        }
        // Very large transfers approach the peak.
        let big = link.attained_bandwidth(4 << 30).as_bps();
        assert!(big > link.peak().as_bps() * 0.99);
    }

    #[test]
    fn small_blocks_waste_bandwidth() {
        // The premise behind Figure 11: a 4 KiB transfer attains a small
        // fraction of peak bandwidth on PCIe.
        let link = LinkModel::pcie2_x16_h2d();
        let small = link.attained_bandwidth(4 << 10).as_bps();
        assert!(small < link.peak().as_bps() * 0.1);
    }

    #[test]
    fn figure2_line_ordering() {
        // The paper's Figure 2 orders the lines PCIe < QPI < HyperTransport <
        // GTX295 memory.
        let pcie = LinkModel::pcie().peak().as_bps();
        let qpi = LinkModel::qpi().peak().as_bps();
        let ht = LinkModel::hypertransport().peak().as_bps();
        let gtx = LinkModel::gtx295_memory().peak().as_bps();
        assert!(pcie < qpi && qpi < ht && ht < gtx);
    }
}
