//! Resource timelines: each hardware engine (DMA channel, GPU execution unit,
//! disk head) is modelled as a serial resource with a *busy-until* horizon.
//!
//! Work submitted at time `t` starts at `max(t, busy_until)` and occupies the
//! engine for its duration. The submitting CPU may either block until the
//! work finishes (synchronous) or continue immediately (asynchronous) — this
//! is what lets rolling-update's eager evictions overlap CPU compute with DMA
//! (paper §3.3, §5.2).

use crate::time::{Nanos, TimePoint};

/// A serial hardware resource with a busy-until timeline.
#[derive(Debug, Clone)]
pub struct Engine {
    name: &'static str,
    busy_until: TimePoint,
    total_busy: Nanos,
    jobs: u64,
}

/// The interval an engine reserved for one piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the engine begins the work.
    pub start: TimePoint,
    /// When the engine finishes the work.
    pub end: TimePoint,
}

impl Reservation {
    /// Length of the reserved interval.
    pub fn duration(&self) -> Nanos {
        self.end.since(self.start)
    }
}

impl Engine {
    /// Creates an idle engine.
    pub fn new(name: &'static str) -> Self {
        Engine {
            name,
            busy_until: TimePoint::ZERO,
            total_busy: Nanos::ZERO,
            jobs: 0,
        }
    }

    /// Engine name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Earliest instant at which new work could start.
    pub fn busy_until(&self) -> TimePoint {
        self.busy_until
    }

    /// Total time this engine has spent busy.
    pub fn total_busy(&self) -> Nanos {
        self.total_busy
    }

    /// Number of jobs executed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// True if the engine has no outstanding work at instant `now`.
    pub fn idle_at(&self, now: TimePoint) -> bool {
        self.busy_until <= now
    }

    /// Reserves the engine for `dur`, starting no earlier than `now`.
    pub fn reserve(&mut self, now: TimePoint, dur: Nanos) -> Reservation {
        let start = now.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.total_busy += dur;
        self.jobs += 1;
        Reservation { start, end }
    }

    /// Reserves the engine for `dur`, starting no earlier than both `now` and
    /// `after` (used for stream-ordered work that must wait on a predecessor).
    pub fn reserve_after(&mut self, now: TimePoint, after: TimePoint, dur: Nanos) -> Reservation {
        self.reserve(now.max(after), dur)
    }

    /// Resets the timeline (used when reusing a platform across experiment
    /// repetitions).
    pub fn reset(&mut self) {
        self.busy_until = TimePoint::ZERO;
        self.total_busy = Nanos::ZERO;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> TimePoint {
        TimePoint::from_nanos(ns)
    }

    #[test]
    fn idle_engine_starts_immediately() {
        let mut e = Engine::new("dma");
        let r = e.reserve(t(100), Nanos::from_nanos(50));
        assert_eq!(r.start, t(100));
        assert_eq!(r.end, t(150));
        assert_eq!(r.duration(), Nanos::from_nanos(50));
        assert_eq!(e.busy_until(), t(150));
    }

    #[test]
    fn busy_engine_queues_work() {
        let mut e = Engine::new("dma");
        e.reserve(t(0), Nanos::from_nanos(100));
        // Submitted at t=10 while busy until t=100: starts at 100.
        let r = e.reserve(t(10), Nanos::from_nanos(30));
        assert_eq!(r.start, t(100));
        assert_eq!(r.end, t(130));
    }

    #[test]
    fn engine_becomes_idle_after_work_drains() {
        let mut e = Engine::new("gpu");
        e.reserve(t(0), Nanos::from_nanos(100));
        assert!(!e.idle_at(t(50)));
        assert!(e.idle_at(t(100)));
        assert!(e.idle_at(t(200)));
    }

    #[test]
    fn reserve_after_honours_dependency() {
        let mut e = Engine::new("gpu");
        // Engine idle, but the work depends on an event at t=500.
        let r = e.reserve_after(t(10), t(500), Nanos::from_nanos(20));
        assert_eq!(r.start, t(500));
        assert_eq!(r.end, t(520));
    }

    #[test]
    fn accounting_accumulates() {
        let mut e = Engine::new("dma");
        e.reserve(t(0), Nanos::from_nanos(10));
        e.reserve(t(0), Nanos::from_nanos(15));
        assert_eq!(e.total_busy(), Nanos::from_nanos(25));
        assert_eq!(e.jobs(), 2);
        e.reset();
        assert_eq!(e.total_busy(), Nanos::ZERO);
        assert_eq!(e.jobs(), 0);
        assert_eq!(e.busy_until(), TimePoint::ZERO);
    }

    #[test]
    fn back_to_back_work_is_contiguous() {
        let mut e = Engine::new("dma");
        let r1 = e.reserve(t(0), Nanos::from_nanos(40));
        let r2 = e.reserve(t(0), Nanos::from_nanos(40));
        assert_eq!(r1.end, r2.start, "no idle gap between queued jobs");
    }
}
