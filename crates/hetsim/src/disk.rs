//! Simulated disk and filesystem.
//!
//! Several Parboil workloads (mri-fhd, mri-q, sad, tpacf) read their inputs
//! from disk and the 3D-stencil experiment periodically writes its volume
//! out; the paper's Figure 10 shows IORead/IOWrite as major components. The
//! simulated disk charges `seek + bytes/bandwidth` per operation against a
//! serial disk engine, and [`SimFs`] stores file contents so the data path is
//! real (workloads read back exactly the bytes that were written).

use crate::engine::Engine;
use crate::error::{SimError, SimResult};
use crate::time::Nanos;
use std::collections::BTreeMap;

use crate::bandwidth::BytesPerSec;

/// Disk performance model: serial engine with seek latency and asymmetric
/// read/write bandwidth.
#[derive(Debug)]
pub struct Disk {
    engine: Engine,
    seek: Nanos,
    read_bw: BytesPerSec,
    write_bw: BytesPerSec,
}

impl Disk {
    /// Creates a disk model.
    pub fn new(seek: Nanos, read_bw: BytesPerSec, write_bw: BytesPerSec) -> Self {
        Disk {
            engine: Engine::new("disk"),
            seek,
            read_bw,
            write_bw,
        }
    }

    /// A 7200-rpm SATA disk of the paper's era (~150 MB/s read, ~110 MB/s
    /// write). The per-request cost models the syscall + filesystem +
    /// controller overhead of a *sequential* request (the access pattern of
    /// every workload here), not a full platter seek.
    pub fn sata_7200() -> Self {
        Disk::new(
            Nanos::from_micros(150),
            BytesPerSec::from_mbps(150.0),
            BytesPerSec::from_mbps(110.0),
        )
    }

    /// Time to read `bytes` in one request.
    pub fn read_time(&self, bytes: u64) -> Nanos {
        self.seek + Nanos::from_secs_f64(bytes as f64 / self.read_bw.as_bps())
    }

    /// Time to write `bytes` in one request.
    pub fn write_time(&self, bytes: u64) -> Nanos {
        self.seek + Nanos::from_secs_f64(bytes as f64 / self.write_bw.as_bps())
    }

    /// Serial engine backing the disk (for reservation by the platform).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Resets the disk timeline.
    pub fn reset(&mut self) {
        self.engine.reset();
    }
}

/// In-memory simulated filesystem: file name → contents.
#[derive(Debug, Default)]
pub struct SimFs {
    files: BTreeMap<String, Vec<u8>>,
}

impl SimFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or replaces) a file with the given contents.
    pub fn create(&mut self, name: &str, data: Vec<u8>) {
        self.files.insert(name.to_string(), data);
    }

    /// File length in bytes.
    ///
    /// # Errors
    /// [`SimError::FileNotFound`] if the file does not exist.
    pub fn len(&self, name: &str) -> SimResult<u64> {
        self.files
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| SimError::FileNotFound(name.to_string()))
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Reads up to `out.len()` bytes from `name` at `offset`; returns bytes
    /// read (0 at EOF).
    ///
    /// # Errors
    /// [`SimError::FileNotFound`] if the file does not exist.
    pub fn read_at(&self, name: &str, offset: u64, out: &mut [u8]) -> SimResult<usize> {
        let data = self
            .files
            .get(name)
            .ok_or_else(|| SimError::FileNotFound(name.to_string()))?;
        let off = (offset as usize).min(data.len());
        let n = out.len().min(data.len() - off);
        out[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    /// Writes `src` into `name` at `offset`, growing the file as needed.
    /// Creates the file if missing. Returns bytes written.
    pub fn write_at(&mut self, name: &str, offset: u64, src: &[u8]) -> SimResult<usize> {
        let data = self.files.entry(name.to_string()).or_default();
        let end = offset as usize + src.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(src);
        Ok(src.len())
    }

    /// Removes a file, returning its contents if it existed.
    pub fn remove(&mut self, name: &str) -> Option<Vec<u8>> {
        self.files.remove(name)
    }

    /// Names of all files (sorted).
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut fs = SimFs::new();
        fs.create("input.dat", vec![1, 2, 3, 4, 5]);
        let mut buf = [0u8; 3];
        assert_eq!(fs.read_at("input.dat", 1, &mut buf).unwrap(), 3);
        assert_eq!(buf, [2, 3, 4]);
    }

    #[test]
    fn read_past_eof_is_short() {
        let mut fs = SimFs::new();
        fs.create("f", vec![9; 4]);
        let mut buf = [0u8; 8];
        assert_eq!(fs.read_at("f", 2, &mut buf).unwrap(), 2);
        assert_eq!(fs.read_at("f", 4, &mut buf).unwrap(), 0);
        assert_eq!(fs.read_at("f", 100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn missing_file_is_error() {
        let fs = SimFs::new();
        assert!(matches!(
            fs.read_at("nope", 0, &mut [0u8; 1]),
            Err(SimError::FileNotFound(_))
        ));
        assert!(matches!(fs.len("nope"), Err(SimError::FileNotFound(_))));
    }

    #[test]
    fn write_grows_file() {
        let mut fs = SimFs::new();
        fs.write_at("out", 4, &[7, 8]).unwrap();
        assert_eq!(fs.len("out").unwrap(), 6);
        let mut buf = [0u8; 6];
        fs.read_at("out", 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0, 7, 8]);
    }

    #[test]
    fn disk_times_scale_with_size() {
        let d = Disk::sata_7200();
        let small = d.read_time(4 << 10);
        let large = d.read_time(4 << 20);
        assert!(large > small);
        // Writes are slower than reads for equal size.
        assert!(d.write_time(1 << 20) > d.read_time(1 << 20));
        // Request overhead dominates tiny requests.
        assert!(d.read_time(1) >= Nanos::from_micros(150));
    }

    #[test]
    fn remove_and_listing() {
        let mut fs = SimFs::new();
        fs.create("a", vec![1]);
        fs.create("b", vec![2]);
        let names: Vec<_> = fs.file_names().collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(fs.remove("a"), Some(vec![1]));
        assert_eq!(fs.remove("a"), None);
    }
}
